"""E4 — Theorem 4.2: the combined system Å* for functional + attribute dependencies.

Reproduced shape:

* syntactic derivability under Å* coincides with semantic implication on mixed
  FD/AD sets (soundness + completeness);
* the PASCAL work-around of Section 4.2 is valid: ``X --func--> A`` and
  ``A --attr--> Y`` derive ``X --attr--> Y`` (combined transitivity), which the pure
  system Å cannot do;
* (A3) reflexivity and (A4) left augmentation, axioms of Å, become *derivable* in Å*;
* every rule of Å* is non-redundant.
"""

import itertools
import random

import pytest

from reporting import print_report
from repro.core.axioms import AXIOM_SYSTEM_AD, AXIOM_SYSTEM_COMBINED, chain_derives, derive
from repro.core.closure import implies
from repro.core.dependencies import ad, fd
from repro.core.implication import semantically_implies

UNIVERSE = ["A", "B", "C", "D"]


def random_mixed_set(rng, count=4):
    deps = []
    for _ in range(count):
        lhs = rng.sample(UNIVERSE, rng.randint(1, 2))
        rhs = rng.sample(UNIVERSE, rng.randint(1, 2))
        constructor = fd if rng.random() < 0.5 else ad
        deps.append(constructor(lhs, rhs))
    return deps


def candidate_ads():
    for lhs_size in (1, 2):
        for lhs in itertools.combinations(UNIVERSE, lhs_size):
            for rhs in itertools.combinations(UNIVERSE, 1):
                yield ad(lhs, rhs)


def test_report_soundness_completeness_combined():
    rng = random.Random(4)
    checked = agreements = 0
    for _ in range(25):
        deps = random_mixed_set(rng)
        for candidate in candidate_ads():
            checked += 1
            agreements += int(implies(deps, candidate) == semantically_implies(deps, candidate))
    print_report("E4: Å* syntactic vs semantic implication on mixed FD/AD sets",
                 [{"candidates checked": checked, "agreements": agreements}])
    assert checked == agreements


def test_report_pascal_workaround():
    deps = [fd(["sex", "marital_status"], "tag"), ad("tag", "maiden_name")]
    target = ad(["sex", "marital_status"], "maiden_name")
    rows = [{
        "replacement constraints": "sex,marital_status --func--> tag; tag --attr--> maiden_name",
        "target derivable in Å*": implies(deps, target),
        "target derivable in Å": implies(deps, target, combined=False),
        "proof uses AF2": any("combined transitivity" in rule
                              for rule in derive(deps, target).rules_used()),
    }]
    print_report("E4: validity of the artificial-determinant work-around (Section 4.2)", rows)
    assert rows[0]["target derivable in Å*"]
    assert not rows[0]["target derivable in Å"]
    assert rows[0]["proof uses AF2"]


def test_report_a3_a4_become_derivable():
    rows = [
        {
            "rule of Å": "A3 reflexivity",
            "witness": "∅ ⊢ AB --attr--> A",
            "derivable from Å* without it": chain_derives(
                [], ad(["A", "B"], "A"), system=AXIOM_SYSTEM_COMBINED, universe=["A", "B"]
            ),
        },
        {
            "rule of Å": "A4 left augmentation",
            "witness": "A --attr--> B ⊢ AC --attr--> B",
            "derivable from Å* without it": chain_derives(
                [ad("A", "B")], ad(["A", "C"], "B"), system=AXIOM_SYSTEM_COMBINED,
                universe=["A", "B", "C"]
            ),
        },
    ]
    print_report("E4: (A3)/(A4) are derivable in the combined system", rows)
    assert all(row["derivable from Å* without it"] for row in rows)


def test_report_non_redundancy_combined():
    witnesses = {
        "AF1 subsumption": ([fd("A", "B")], ad("A", "B")),
        "AF2 combined transitivity": ([fd("A", "B"), ad("B", "C")], ad("A", "C")),
        "A1 projectivity": ([ad("A", ["B", "C"])], ad("A", "B")),
        "A2 additivity": ([ad("A", "B"), ad("A", "C")], ad("A", ["B", "C"])),
        "F1 reflexivity": ([], ad(["A", "B"], "A")),
        "F2 augmentation": ([fd("A", "B"), ad(["A", "B"], "C")], ad("A", "C")),
        # F3 is needed for deriving *functional* dependencies; AD targets can often be
        # reached by chaining AF2 instead, so the witness is an FD.
        "F3 transitivity": ([fd("A", "B"), fd("B", "C")], fd("A", "C")),
    }
    rows = []
    for rule, (deps, target) in witnesses.items():
        full = chain_derives(deps, target, system=AXIOM_SYSTEM_COMBINED,
                             universe=["A", "B", "C", "D"])
        reduced = chain_derives(deps, target, system=AXIOM_SYSTEM_COMBINED.without(rule),
                                universe=["A", "B", "C", "D"])
        rows.append({"dropped rule": rule, "derivable with full Å*": full,
                     "derivable without": reduced})
    print_report("E4: non-redundancy of Å* (witness per rule)", rows)
    assert all(row["derivable with full Å*"] for row in rows)
    assert not any(row["derivable without"] for row in rows)


@pytest.mark.benchmark(group="e4-implication")
def test_bench_combined_closure_implication(benchmark):
    rng = random.Random(13)
    deps = random_mixed_set(rng, count=6)
    candidates = list(candidate_ads())

    def run():
        return sum(implies(deps, candidate) for candidate in candidates)

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="e4-implication")
def test_bench_combined_semantic_implication(benchmark):
    rng = random.Random(13)
    deps = random_mixed_set(rng, count=6)
    candidates = list(candidate_ads())

    def run():
        return sum(semantically_implies(deps, candidate) for candidate in candidates)

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="e4-implication")
def test_bench_combined_proof_traces(benchmark):
    rng = random.Random(13)
    deps = random_mixed_set(rng, count=6)
    candidates = [c for c in candidate_ads() if implies(deps, c)]

    def run():
        return sum(1 for candidate in candidates if derive(deps, candidate) is not None)

    assert benchmark(run) == len(candidates)
