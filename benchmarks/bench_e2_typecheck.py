"""E2 — Section 3.1: AD-based type checking vs. scheme-only and NULL-table baselines.

Paper claim: a flexible scheme alone cannot reject the tuple
``<jobtype:'salesman', typing-speed:..., foreign-languages:...>`` because the
attribute combination is structurally valid; the jobtype AD rejects it.  The NULL
baseline (single flat table with a variant tag) rejects nothing at all — the burden
of keeping tags and NULL patterns consistent falls on the user.

Measured here:

* rejection counts on a workload with 15% invalid tuples under the three regimes,
* insertion throughput with full AD checking vs. scheme-only vs. the flat baseline
  (the price of the stronger guarantee).
"""

import pytest

from reporting import print_report
from repro.baselines import NullPaddedTable
from repro.engine import Table
from repro.errors import ReproError
from repro.model.tuples import FlexTuple
from repro.workloads.employees import employee_definition, employee_dependency, employee_scheme


def _count_rejections(table_factory, tuples):
    table = table_factory()
    accepted = rejected = 0
    for values in tuples:
        try:
            table.insert(values)
            accepted += 1
        except ReproError:
            rejected += 1
    return accepted, rejected


def _full_table():
    return Table(employee_definition())


def _scheme_only_table():
    definition = employee_definition()
    definition.dependencies = []
    return Table(definition)


def _flat_baseline():
    return NullPaddedTable(employee_scheme().attributes, employee_dependency())


def test_report_rejection_behaviour(mixed_employee_tuples_1k):
    dependency = employee_dependency()
    invalid = sum(
        1 for values in mixed_employee_tuples_1k
        if not dependency.check_tuple(FlexTuple(values))
    )
    rows = []
    for name, factory in (("flexible scheme + AD", _full_table),
                          ("flexible scheme only", _scheme_only_table),
                          ("flat table with NULLs", _flat_baseline)):
        accepted, rejected = _count_rejections(factory, mixed_employee_tuples_1k)
        rows.append({"regime": name, "accepted": accepted, "rejected": rejected,
                     "actually invalid": invalid})
    print_report("E2: rejection of dependency-violating tuples (15% invalid)", rows)
    # shape: only the AD-checked table rejects exactly the invalid tuples
    assert rows[0]["rejected"] == invalid
    assert rows[1]["rejected"] == 0
    assert rows[2]["rejected"] == 0


def test_report_flat_baseline_hides_inconsistencies(mixed_employee_tuples_1k):
    flat = _flat_baseline()
    flat.insert_many(mixed_employee_tuples_1k)
    inconsistent = len(flat.inconsistent_rows())
    print_report("E2: silent inconsistencies in the flat baseline",
                 [{"rows": len(flat), "inconsistent rows": inconsistent}])
    assert inconsistent > 0


@pytest.mark.benchmark(group="e2-ingest")
def test_bench_insert_with_ad_checking(benchmark, employee_tuples_1k):
    def ingest():
        table = _full_table()
        table.insert_many(employee_tuples_1k)
        return len(table)

    assert benchmark(ingest) == len(employee_tuples_1k)


@pytest.mark.benchmark(group="e2-ingest")
def test_bench_insert_scheme_only(benchmark, employee_tuples_1k):
    def ingest():
        table = _scheme_only_table()
        table.insert_many(employee_tuples_1k)
        return len(table)

    assert benchmark(ingest) == len(employee_tuples_1k)


@pytest.mark.benchmark(group="e2-ingest")
def test_bench_insert_unchecked(benchmark, employee_tuples_1k):
    def ingest():
        table = Table(employee_definition(), enforce=False)
        table.insert_many(employee_tuples_1k)
        return len(table)

    assert benchmark(ingest) == len(employee_tuples_1k)


@pytest.mark.benchmark(group="e2-ingest")
def test_bench_insert_flat_baseline(benchmark, employee_tuples_1k):
    def ingest():
        flat = _flat_baseline()
        flat.insert_many(employee_tuples_1k)
        return len(flat)

    assert benchmark(ingest) == len(employee_tuples_1k)


@pytest.mark.benchmark(group="e2-single-check")
def test_bench_single_tuple_check(benchmark):
    dependency = employee_dependency()
    tup = FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="secretary",
                    typing_speed=90, foreign_languages="fr")
    assert benchmark(dependency.check_tuple, tup)
