"""E9 — Section 5: the Ahad & Basu multirelation model is a special case of ADs.

Reproduced shape:

* the multirelation with its image attribute stores the employee workload and
  restores the complete heterogeneous instance by following the image attribute;
* translating the multirelation into an explicit AD (artificial single-attribute
  determinant = the image attribute) yields a dependency that accepts exactly the
  tuples the multirelation can represent — i.e. the flexible relation with that AD
  subsumes the multirelation model;
* the engine with the translated AD rejects the same ill-shaped entities the
  multirelation rejects (plus the ones the multirelation silently mis-stores).
"""

import pytest

from reporting import print_report
from repro.baselines import ImageAttribute, Multirelation
from repro.engine import Database, Table
from repro.errors import ReproError
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.workloads.employees import (
    EMPLOYEE_VARIANT_ATTRIBUTES,
    employee_definition,
    generate_employees,
)

SIZE = 1000


def build_multirelation():
    return Multirelation(
        ["emp_id", "name", "salary", "jobtype"],
        ["emp_id"],
        ImageAttribute("image", ["secretaries", "engineers", "salesmen"]),
        {
            "secretaries": ["emp_id", "typing_speed", "foreign_languages"],
            "engineers": ["emp_id", "products", "programming_languages"],
            "salesmen": ["emp_id", "products", "sales_commission"],
        },
    )


def _employee_tuples(count=SIZE):
    return [FlexTuple(values) for values in generate_employees(count, seed=501)]


def test_report_restoration_equivalence():
    tuples = _employee_tuples(400)
    multirelation = build_multirelation()
    multirelation.insert_many(tuples)
    dependency = multirelation.to_explicit_ad()

    # engine table governed by the translated AD over the tagged schema
    scheme = FlexibleScheme(
        6, 6,
        ["emp_id", "name", "salary", "jobtype", "image",
         FlexibleScheme(0, len(EMPLOYEE_VARIANT_ATTRIBUTES), list(EMPLOYEE_VARIANT_ATTRIBUTES))],
    )
    database = Database()
    table = database.create_table("employees_tagged", scheme, key=["emp_id"],
                                  dependencies=[dependency])
    for master_row in multirelation.master_rows:
        original = next(t for t in tuples if t["emp_id"] == master_row["emp_id"])
        table.insert(original.extend(image=master_row["image"]))

    rows = [{
        "entities": len(tuples),
        "multirelation restores instance": multirelation.restore() == set(tuples),
        "flexible table accepts all tagged tuples": len(table) == len(tuples),
        "translated AD variants": len(dependency.variants),
    }]
    print_report("E9: multirelation vs flexible relation with the translated AD", rows)
    assert rows[0]["multirelation restores instance"]
    assert rows[0]["flexible table accepts all tagged tuples"]
    assert rows[0]["translated AD variants"] == 3


def test_report_rejection_equivalence():
    multirelation = build_multirelation()
    dependency = multirelation.to_explicit_ad()
    # an entity whose variant attributes match no depending relation
    bad = FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="salesman", typing_speed=10)
    multirelation_rejects = False
    try:
        multirelation.insert(bad)
    except ReproError:
        multirelation_rejects = True
    ad_rejects = not any(
        dependency.check_tuple(bad.extend(image=name))
        for name in ("secretaries", "engineers", "salesmen")
    ) and not dependency.check_tuple(bad.extend(image="none"))
    rows = [{
        "ill-shaped entity": repr(bad),
        "multirelation rejects": multirelation_rejects,
        "translated AD rejects (any image value)": ad_rejects,
    }]
    print_report("E9: rejection behaviour on ill-shaped entities", rows)
    assert multirelation_rejects and ad_rejects


@pytest.mark.benchmark(group="e9-multirelation")
def test_bench_multirelation_load(benchmark):
    tuples = _employee_tuples()

    def run():
        multirelation = build_multirelation()
        multirelation.insert_many(tuples)
        return len(multirelation)

    assert benchmark(run) == len(tuples)


@pytest.mark.benchmark(group="e9-multirelation")
def test_bench_multirelation_restore(benchmark):
    tuples = _employee_tuples()
    multirelation = build_multirelation()
    multirelation.insert_many(tuples)

    def run():
        return len(multirelation.restore())

    assert benchmark(run) == len(tuples)


@pytest.mark.benchmark(group="e9-multirelation")
def test_bench_flexible_table_load_with_translated_ad(benchmark):
    tuples = _employee_tuples()
    multirelation = build_multirelation()
    multirelation.insert_many(tuples)
    dependency = multirelation.to_explicit_ad()
    image_by_id = {row["emp_id"]: row["image"] for row in multirelation.master_rows}
    scheme = FlexibleScheme(
        6, 6,
        ["emp_id", "name", "salary", "jobtype", "image",
         FlexibleScheme(0, len(EMPLOYEE_VARIANT_ATTRIBUTES), list(EMPLOYEE_VARIANT_ATTRIBUTES))],
    )
    tagged = [t.extend(image=image_by_id[t["emp_id"]]) for t in tuples]

    def run():
        database = Database()
        table = database.create_table("tagged", scheme, key=["emp_id"], dependencies=[dependency])
        table.insert_many(tagged)
        return len(table)

    assert benchmark(run) == len(tuples)


@pytest.mark.benchmark(group="e9-multirelation")
def test_bench_native_employee_table_load(benchmark):
    """Reference point: the paper's own modelling (jobtype EAD, no artificial attribute)."""
    values = generate_employees(SIZE, seed=501)

    def run():
        table = Table(employee_definition())
        table.insert_many(values)
        return len(table)

    assert benchmark(run) == len(values)
