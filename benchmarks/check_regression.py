"""Bench-regression gate: compare BENCH_*.json speedup ratios against baselines.

The E12 and E14 benchmarks emit machine-readable reports whose ``speedup``
column is a wall-clock *ratio* (batch vs row, whole-plan batch vs mixed) — a
machine-independent number that is stable across CI runners, unlike absolute
seconds.  This script reads the freshly produced reports and the committed
baselines (``benchmarks/results/`` at the tested commit) and fails when any
tracked ratio drops more than ``--tolerance`` (default 20%) below its
baseline::

    cp -r benchmarks/results /tmp/bench-baselines       # before running benches
    PYTHONPATH=src python -m pytest benchmarks/bench_e12_vectorized.py \
        benchmarks/bench_e14_full_batch.py -q -s -k report
    python benchmarks/check_regression.py \
        --baseline /tmp/bench-baselines --current benchmarks/results

Exit status 1 on regression, 0 otherwise.  Reports missing on either side are
an error for the tracked names (a silently skipped gate is no gate); extra
reports are ignored.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

#: the reports whose speedup ratios are gated, and the gated metric column.
#: e15's ratio is uninstrumented/instrumented wall-clock (≈1.0x): a future PR
#: that makes the observability layer expensive drags it below its baseline.
#: e16's ratio is stale-run/corrected-run join pairs (≥5x): a PR that breaks
#: the cardinality-feedback loop collapses it toward 1.0x.
#: e17's ratio is the group-commit fsync amortization (commits per fsync,
#: ≈``group_commit_max``): a PR that fsyncs more often than the commit
#: protocol requires drags it toward 1.0x.
#: e18's ratio is hash aggregation vs the naive sort-group reference (≥5x):
#: a PR that slows the batch aggregation path drags it toward the gate.
#: e19's ratio is the peak-memory reduction of the spilling hash aggregate
#: under a quarter budget (≥2x): a PR that weakens spilling — coarser budget
#: checks, bigger held partitions — drags it toward 1.0x.
TRACKED_REPORTS = ("e12_vectorized_exec", "e14_full_batch", "e15_observability",
                   "e16_feedback", "e17_durability", "e18_aggregation",
                   "e19_governor")

DEFAULT_TOLERANCE = 0.2

_SPEEDUP = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*x\s*$")


def report_speedup(path):
    """The report's headline speedup: the maximum ``speedup`` ratio of its rows
    (the baseline row reports 1.0x, the measured engine the ratio under test)."""
    with open(path) as handle:
        payload = json.load(handle)
    ratios = []
    for row in payload.get("rows", []):
        match = _SPEEDUP.match(str(row.get("speedup", "")))
        if match:
            ratios.append(float(match.group(1)))
    if not ratios:
        raise ValueError("no speedup column found in {}".format(path))
    return max(ratios)


def check(baseline_dir, current_dir, names=TRACKED_REPORTS,
          tolerance=DEFAULT_TOLERANCE, out=sys.stdout):
    """Compare each tracked report; returns the list of failure messages."""
    failures = []
    for name in names:
        filename = "BENCH_{}.json".format(name)
        baseline_path = os.path.join(baseline_dir, filename)
        current_path = os.path.join(current_dir, filename)
        for path, side in ((baseline_path, "baseline"), (current_path, "current")):
            if not os.path.exists(path):
                failures.append("{}: missing {} report {}".format(name, side, path))
        if failures and failures[-1].startswith(name):
            continue
        baseline = report_speedup(baseline_path)
        current = report_speedup(current_path)
        floor = baseline * (1.0 - tolerance)
        verdict = "OK" if current >= floor else "REGRESSION"
        out.write("{:<24} baseline {:>5.1f}x  current {:>5.1f}x  floor {:>5.1f}x  {}\n"
                  .format(name, baseline, current, floor, verdict))
        if current < floor:
            failures.append(
                "{}: speedup {:.2f}x fell more than {:.0f}% below the baseline "
                "{:.2f}x".format(name, current, tolerance * 100, baseline))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory holding the committed BENCH_*.json baselines")
    parser.add_argument("--current", required=True,
                        help="directory holding the freshly produced BENCH_*.json files")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.2 = 20%%)")
    parser.add_argument("names", nargs="*", default=list(TRACKED_REPORTS),
                        help="report names to gate (default: {})".format(
                            ", ".join(TRACKED_REPORTS)))
    args = parser.parse_args(argv)
    failures = check(args.baseline, args.current, names=args.names or TRACKED_REPORTS,
                     tolerance=args.tolerance)
    for failure in failures:
        print("FAIL: {}".format(failure), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
