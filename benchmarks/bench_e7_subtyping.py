"""E7 — Section 3.2 / Example 3: ADs yield a stronger notion of record subtyping.

Reproduced shape:

* the jobtype EAD induces exactly the employee/secretary/salesman/software-engineer
  type family of Example 3 (domain of ``jobtype`` restricted, variant attributes
  added, both changes causally connected);
* the traditional record-subtyping rule accepts every projection of the supertype as
  a common supertype of the three subtypes — including ``<salary: float>`` without
  ``jobtype`` — whereas the AD-based rule rejects exactly the candidates that lose
  the determining attribute (the "lost connection" cases);
* over generated hierarchies the count of unsound (connection-losing) supertypes
  accepted by the traditional rule grows with the number of non-determining
  attributes, while the AD-based rule accepts none of them.
"""

import pytest

from reporting import print_report
from repro.baselines.record_subtyping import SubtypeLattice, accepted_supertypes
from repro.core.subtyping import candidate_supertypes, derive_subtype_family
from repro.types import is_record_subtype
from repro.workloads.employees import employee_dependency, employee_domains, employee_scheme
from repro.workloads.generators import random_explicit_ad


def employee_family():
    return derive_subtype_family(employee_scheme().attributes, employee_dependency(),
                                 employee_domains(), supertype_name="employee_type")


def test_report_example3_family():
    family = employee_family()
    rows = []
    for name in family.subtype_names():
        subtype = family.subtype(name)
        rows.append({
            "subtype": name,
            "attributes": len(subtype.attributes),
            "jobtype domain": ", ".join(str(v) for v in subtype.domain_of("jobtype").values()),
            "record-subtype of employee_type": is_record_subtype(subtype, family.supertype),
        })
    print_report("E7: the subtype family of Example 3", rows)
    assert len(rows) == 3
    assert all(row["record-subtype of employee_type"] for row in rows)


def test_report_lost_connection_counts():
    family = employee_family()
    candidates = candidate_supertypes(family)
    subtypes = [family.subtype(name) for name in family.subtype_names()]
    traditional = accepted_supertypes(candidates, subtypes)
    classified = [family.classify_candidate(candidate) for candidate in candidates]
    rows = [{
        "candidate supertypes (projections)": len(candidates),
        "accepted by record-subtyping rule": len(traditional),
        "accepted by AD-based rule": classified.count("valid"),
        "lost-connection (accepted only traditionally)": classified.count("lost-connection"),
    }]
    print_report("E7: traditional vs AD-based acceptance of candidate supertypes", rows)
    # shape: the traditional rule accepts everything, the AD rule only the half
    # retaining the determining attribute; the difference is exactly the
    # lost-connection set, which contains the paper's <salary: float> example.
    assert rows[0]["accepted by record-subtyping rule"] == len(candidates)
    assert rows[0]["accepted by AD-based rule"] + rows[0]["lost-connection (accepted only traditionally)"] \
        == len(candidates)
    assert rows[0]["lost-connection (accepted only traditionally)"] > 0


def test_report_scaling_with_hierarchy_width():
    rows = []
    for extra_attributes in (1, 2, 3, 4):
        attributes = ["kind"] + ["base_{}".format(i) for i in range(extra_attributes)]
        dependency = random_explicit_ad(determinant="kind", variant_count=3,
                                        attributes_per_variant=2, seed=extra_attributes)
        family = derive_subtype_family(attributes + sorted(a.name for a in dependency.rhs),
                                       dependency)
        candidates = candidate_supertypes(family)
        lost = sum(1 for c in candidates if family.classify_candidate(c) == "lost-connection")
        valid = sum(1 for c in candidates if family.classify_candidate(c) == "valid")
        rows.append({
            "non-determining attributes": extra_attributes,
            "candidates": len(candidates),
            "AD-valid": valid,
            "lost-connection": lost,
        })
    print_report("E7: lost-connection supertypes grow with hierarchy width", rows)
    lost_counts = [row["lost-connection"] for row in rows]
    assert lost_counts == sorted(lost_counts) and lost_counts[-1] > lost_counts[0]


@pytest.mark.benchmark(group="e7-subtyping")
def test_bench_family_derivation(benchmark):
    def run():
        return derive_subtype_family(employee_scheme().attributes, employee_dependency(),
                                     employee_domains())

    family = benchmark(run)
    assert len(family.subtypes) == 3


@pytest.mark.benchmark(group="e7-subtyping")
def test_bench_traditional_rule_classification(benchmark):
    family = employee_family()
    candidates = candidate_supertypes(family)
    subtypes = [family.subtype(name) for name in family.subtype_names()]

    def run():
        return len(accepted_supertypes(candidates, subtypes))

    assert benchmark(run) == len(candidates)


@pytest.mark.benchmark(group="e7-subtyping")
def test_bench_ad_rule_classification(benchmark):
    family = employee_family()
    candidates = candidate_supertypes(family)

    def run():
        return sum(1 for candidate in candidates if family.ad_rule_accepts(candidate))

    assert benchmark(run) < len(candidates)


@pytest.mark.benchmark(group="e7-subtyping")
def test_bench_subtype_lattice_construction(benchmark):
    family = employee_family()
    types = [family.supertype] + [family.subtype(name) for name in family.subtype_names()] \
        + candidate_supertypes(family)

    def run():
        return len(SubtypeLattice(types).edges())

    assert benchmark(run) > 0
