"""E19 — the resource governor: spill-to-disk under a memory budget, bounded aborts.

20k ``orders`` rows (the skewed analytic workload) drive the governance
claims of the resource-governor ISSUE:

* **spill completes under budget** — the ``order_id``-grouped hash aggregate
  whose in-memory state is several times the budget must *complete* with a
  budget of a quarter of its unspilled footprint, return the identical tuple
  set, and report ``peak_bytes`` under **half** the unspilled peak (the
  ``speedup`` ratio is peak-memory reduction, gated ≥2x by
  ``check_regression.py`` under report name ``e19_governor``);
* **bounded abort latency** — a governed query with a microscopic deadline
  must unwind through ``QueryTimeout`` in well under a second: cooperative
  cancellation checks fire at every operator batch boundary, so a runaway
  query cannot hold its slot longer than one boundary interval;
* **observability** — spill activity and termination reasons land in
  ``Database.metrics()`` and the Prometheus export
  (``repro_spill_segments_total``), so the governor is monitorable with the
  same machinery as everything else.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import Aggregate, RelationRef
from repro.errors import QueryTimeout
from repro.exec import PhysicalExecutor, PhysicalPlanner
from repro.workloads.analytics import analytics_database

#: rows in the benchmark workload — enough that the per-order aggregate's
#: hash state dwarfs any reasonable budget
ORDER_COUNT = 20_000

#: the acceptance gate: spilled peak_bytes at most half the unspilled peak
PEAK_FACTOR = 2.0

#: the abort-latency gate, generous for CI runners; interactively the unwind
#: is single-digit milliseconds
ABORT_SECONDS = 1.0

#: the budget as a fraction of the unspilled footprint: a quarter means the
#: workload is >2x the budget even after halving, per the ISSUE wording
BUDGET_DIVISOR = 4

GROUP_BY = ("order_id",)
SPECS = (("sum", "amount"), "count", ("avg", "amount"),
         ("min", "amount"), ("max", "amount"))

TIMING_RUNS = 3


@pytest.fixture(scope="module")
def orders_database():
    return analytics_database(ORDER_COUNT, seed=19)


def _query():
    return Aggregate(RelationRef("orders"), group_by=GROUP_BY, specs=SPECS)


def _best_of(callable_, runs=TIMING_RUNS):
    result, best = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _peak(result):
    return max(entry["peak_bytes"] for entry in result.operator_report())


def test_report_spilling_aggregate_completes_under_budget(orders_database):
    """The tentpole gate: a quarter-budget run completes with half the peak."""
    database = orders_database
    query = _query()
    # the row engine holds row-form group states — the same representation
    # the spiller partitions to disk, so its unspilled peak is the honest
    # reference footprint
    executor = PhysicalExecutor(database, planner=PhysicalPlanner(
        source=database, vectorize=False))

    from repro.governor import QueryGovernor

    baseline, unspilled_seconds = _best_of(lambda: executor.execute(query))
    peak0 = _peak(baseline)
    budget = peak0 // BUDGET_DIVISOR

    def spilled_run():
        governor = QueryGovernor(memory_budget=budget,
                                 registry=database.metrics_registry)
        try:
            return executor.execute(query, governor=governor), governor.spilled
        finally:
            governor.finish()

    (spilled, did_spill), spilled_seconds = _best_of(spilled_run)
    peak1 = _peak(spilled)
    reduction = peak0 / max(1, peak1)

    rows = [
        {"plan": "in-memory hash aggregate (no budget)",
         "groups": len(baseline), "peak_bytes": peak0,
         "seconds": round(unspilled_seconds, 4), "speedup": "1.00x"},
        {"plan": "governed: budget={}B (peak/{}), partitioned spill".format(
            budget, BUDGET_DIVISOR),
         "groups": len(spilled), "peak_bytes": peak1,
         "seconds": round(spilled_seconds, 4),
         "speedup": "{:.2f}x".format(reduction)},
    ]
    print_report(
        "E19: γ_order_id[sum, count, avg, min, max] on {}k skewed orders — "
        "spill-to-disk under a quarter memory budget".format(
            ORDER_COUNT // 1000),
        rows, json_name="e19_governor",
        database=database, operators=spilled.operator_report(),
    )

    assert did_spill, "a quarter budget over this workload must force a spill"
    assert set(spilled.tuples) == set(baseline.tuples)
    assert spilled.stats.as_dict() == baseline.stats.as_dict()
    # the ISSUE acceptance criterion: bounded peak under spilling
    assert peak1 * PEAK_FACTOR <= peak0, (
        "spilled peak {} bytes not {}x below the unspilled {}".format(
            peak1, PEAK_FACTOR, peak0))
    # spill activity is observable through metrics and the Prometheus export
    snapshot = database.metrics()["metrics"]
    assert snapshot["spill.segments"] > 0
    assert snapshot["spill.records"] > 0
    text = database.prometheus_metrics()
    assert "repro_spill_segments_total" in text


def test_report_governed_abort_latency_is_bounded(orders_database):
    """A microscopic deadline kills the query within one boundary interval."""
    database = orders_database
    timeouts_before = database.metrics_registry.counter("queries.timeout").value

    start = time.perf_counter()
    with pytest.raises(QueryTimeout):
        database.execute(_query(), timeout=0.000001)
    elapsed = time.perf_counter() - start

    rows = [
        {"scenario": "deadline=1µs on the {}k-row aggregate".format(
            ORDER_COUNT // 1000),
         "outcome": "QueryTimeout",
         "abort_seconds": round(elapsed, 4),
         "bound_seconds": ABORT_SECONDS},
    ]
    print_report(
        "E19: governed abort latency — cooperative cancellation at batch "
        "boundaries", rows, json_name="e19_abort", database=database,
    )

    assert elapsed < ABORT_SECONDS, (
        "governed abort took {:.3f}s, above the {}s bound".format(
            elapsed, ABORT_SECONDS))
    counters = database.metrics()["metrics"]
    assert counters["queries.timeout"] == timeouts_before + 1
    # the termination reason reaches the slow-query log
    entry = database.slow_query_log.entries()[-1]
    assert entry.note == "terminated: timeout"
