"""E1 — Example 1: DNF unfolding and scheme compactness.

Paper claim: the flexible scheme of Example 1 is a *compact* notation whose
unfolding ``dnf(FS)`` yields exactly the 14 listed attribute combinations; in
general the compact scheme grows linearly with the number of components while the
unfolded set of attribute combinations grows multiplicatively.

Measured here:

* correctness of the 14-combination unfolding,
* scheme size (number of attributes) vs. DNF size for a sweep of generated schemes,
* timing of DNF materialization vs. the lazy ``admits`` membership test
  (the ablation called out in DESIGN.md §6).
"""

import pytest

from reporting import print_report
from repro.model.scheme import FlexibleScheme
from repro.workloads.generators import random_flexible_scheme

EXAMPLE1 = FlexibleScheme(
    4, 4, ["A", "B", FlexibleScheme(1, 1, ["C", "D"]), FlexibleScheme(1, 3, ["E", "F", "G"])]
)

EXPECTED_EXAMPLE1 = {
    frozenset("ABCE"), frozenset("ABDE"), frozenset("ABCF"), frozenset("ABDF"),
    frozenset("ABCG"), frozenset("ABDG"), frozenset("ABCEF"), frozenset("ABDEF"),
    frozenset("ABCEG"), frozenset("ABDEG"), frozenset("ABCFG"), frozenset("ABDFG"),
    frozenset("ABCEFG"), frozenset("ABDEFG"),
}


def test_example1_dnf_matches_the_paper():
    unfolded = {frozenset(a.name for a in combo) for combo in EXAMPLE1.dnf()}
    assert unfolded == EXPECTED_EXAMPLE1


def test_report_scheme_compactness():
    """Scheme size grows additively, the DNF multiplicatively."""
    rows = []
    for groups in range(1, 5):
        scheme = random_flexible_scheme(base_attributes=3, variant_groups=groups,
                                        attributes_per_group=3, seed=1)
        rows.append({
            "variant groups": groups,
            "scheme attributes": len(scheme.attributes),
            "dnf combinations": scheme.count_variants(),
        })
    print_report("E1: compact scheme vs. unfolded DNF", rows)
    assert rows[-1]["dnf combinations"] > rows[-1]["scheme attributes"]
    sizes = [row["dnf combinations"] for row in rows]
    assert sizes == sorted(sizes)


def bench_scheme(groups):
    return random_flexible_scheme(base_attributes=3, variant_groups=groups,
                                  attributes_per_group=3, seed=1)


@pytest.mark.benchmark(group="e1-dnf")
def test_bench_example1_dnf(benchmark):
    result = benchmark(EXAMPLE1.dnf)
    assert len(result) == 14


@pytest.mark.benchmark(group="e1-dnf")
def test_bench_dnf_materialization_large(benchmark):
    scheme = bench_scheme(4)
    result = benchmark(scheme.dnf)
    assert len(result) == scheme.count_variants()


@pytest.mark.benchmark(group="e1-membership")
def test_bench_lazy_membership(benchmark):
    scheme = bench_scheme(4)
    combos = [list(c.names) for c in scheme.dnf()]

    def check_all():
        return all(scheme.admits(combo) for combo in combos)

    assert benchmark(check_all)


@pytest.mark.benchmark(group="e1-membership")
def test_bench_membership_via_materialized_dnf(benchmark):
    scheme = bench_scheme(4)
    combos = [list(c.names) for c in scheme.dnf()]

    def check_all():
        dnf = scheme.dnf()
        return all(any(set(combo) == set(c.names) for c in dnf) for combo in combos)

    assert benchmark(check_all)
