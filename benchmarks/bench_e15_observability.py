"""E15 — the observability layer must be (nearly) free.

PR 6 threads wall-clock timing through every physical operator, folds every
query into the ``Database.metrics()`` registry and leaves an (inert) tracer on
the hot path.  This benchmark is the cost control: it runs the E12-class
scan→filter→hash-join workload (100k events ⋈ 10k sessions) and the E14-class
restoration plan (outer union → 4-way multiway join → join → rename →
extensions on 30k variant employees) twice each —

* **uninstrumented**: the cached physical plan executed with ``timing=False``
  (no per-operator clocks, no metrics fold-in, exactly the pre-PR 6 path);
* **instrumented**: the full ``Database.execute`` pipeline — per-batch
  operator timers, the disabled tracer's span checks, plan-cache lookup and
  the per-query metrics/Q-error/slow-log accounting;

and gates the wall-clock overhead at **≤5%** (the ISSUE acceptance
criterion).  Both measurements are best-of-``TIMING_RUNS``, so the gated
number is a ratio of two noise-damped minima.  The ``speedup`` column
(uninstrumented/instrumented, ≈1.0x) feeds ``check_regression.py``: a future
PR that makes instrumentation expensive shows up as the ratio falling below
its committed baseline.
"""

import gc
import time

import pytest

from bench_e12_vectorized import scan_filter_join_query
from bench_e14_full_batch import FRAGMENT_STEPS, restoration_query
from reporting import print_report
from repro.engine import Database
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_scheme, generate_employees
from repro.workloads.events import events_scheme, generate_events, sessions_scheme

EVENTS = 100_000
SESSIONS = 10_000
EMPLOYEES = 30_000

#: the ISSUE acceptance gate: instrumentation may cost at most 5% wall-clock
OVERHEAD_GATE = 0.05
#: measurement rounds; the two variants run back-to-back *inside* each round
#: (interleaved, GC fenced), so drift across rounds — warm-up, allocator state,
#: runner thermal noise — hits both variants equally and cancels out of the
#: gated ratio of the two minima
TIMING_RUNS = 7


@pytest.fixture(scope="module")
def e12_database():
    """The E12 workload: 100k variant events + 10k sessions, analyzed."""
    database = Database(enforce_constraints=False)
    events = database.create_table("events", events_scheme(), key=["event_id"])
    events.insert_many(generate_events(EVENTS, rare_every=100))
    sessions = database.create_table("sessions", sessions_scheme(), key=["event_id"])
    sessions.insert_many({"event_id": event_id, "user": "u{}".format(event_id % 9)}
                         for event_id in range(1, SESSIONS + 1))
    database.analyze()
    return database


@pytest.fixture(scope="module")
def e14_database():
    """The E14 workload: 30k variant employees + fragments + reviews, analyzed."""
    database = Database(enforce_constraints=False)
    employees = database.create_table("employees", employee_scheme(),
                                      key=["emp_id"], indexes=[["jobtype"]])
    employees.insert_many(generate_employees(EMPLOYEES, seed=7))
    for name, attribute, step in FRAGMENT_STEPS:
        table = database.create_table(
            name, FlexibleScheme.relational(["emp_id", attribute]),
            key=["emp_id"])
        table.insert_many({"emp_id": i, attribute: "{}-{}".format(attribute, i % 17)}
                          for i in range(1, EMPLOYEES + 1, step))
    reviews = database.create_table(
        "reviews", FlexibleScheme.relational(["emp_id", "score"]),
        key=["emp_id"])
    reviews.insert_many({"emp_id": i, "score": i % 5}
                        for i in range(1, EMPLOYEES + 1))
    database.analyze()
    return database


def _timed(callable_):
    """One GC-fenced wall-clock measurement of ``callable_``."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = callable_()
        return result, time.perf_counter() - start
    finally:
        if enabled:
            gc.enable()


def _interleaved_best_of(bare_callable, full_callable, runs=TIMING_RUNS):
    """Best-of for both variants, alternating within every round."""
    bare = full = None
    bare_best = full_best = None
    for _ in range(runs):
        bare, seconds = _timed(bare_callable)
        bare_best = seconds if bare_best is None else min(bare_best, seconds)
        full, seconds = _timed(full_callable)
        full_best = seconds if full_best is None else min(full_best, seconds)
    return (bare, bare_best), (full, full_best)


def _measure(database, query, label):
    """One workload's (report row, overhead fraction)."""
    plan = database.plan(query, optimize=False)
    # Warm both paths (plan cache, hash sets, allocator) before timing.
    plan.execute(database, timing=False)
    database.execute(query, optimize=False)

    (bare, bare_seconds), (full, full_seconds) = _interleaved_best_of(
        lambda: plan.execute(database, timing=False),
        lambda: database.execute(query, optimize=False))

    assert full.tuples == bare.tuples
    # timing=False really disables the per-operator clocks ...
    assert all(op.wall_seconds == 0.0 for op in bare.context.operator_stats)
    # ... and the instrumented run really collected them.
    assert sum(op.wall_seconds for op in full.context.operator_stats) > 0.0

    overhead = full_seconds / bare_seconds - 1.0
    row = {
        "workload": label, "tuples": len(full),
        "uninstrumented_s": round(bare_seconds, 4),
        "instrumented_s": round(full_seconds, 4),
        "overhead": "{:+.1%}".format(overhead),
        "speedup": "{:.2f}x".format(bare_seconds / full_seconds),
    }
    return row, overhead


def test_report_observability_overhead_within_gate(e12_database, e14_database):
    """The acceptance gate: ≤5% instrumentation overhead on E12/E14 plans."""
    rows, overheads = [], []
    for database, query, label in (
            (e12_database, scan_filter_join_query(),
             "E12 scan+filter+hash-join (100k ⋈ 10k)"),
            (e14_database, restoration_query(),
             "E14 restoration (outer-union + 4-way multiway, 30k)")):
        row, overhead = _measure(database, query, label)
        rows.append(row)
        overheads.append((label, overhead))

    print_report(
        "E15: observability overhead — timers + metrics + inert tracer vs bare",
        rows, json_name="e15_observability",
        database=e12_database,
    )
    for label, overhead in overheads:
        assert overhead <= OVERHEAD_GATE, (
            "instrumentation overhead {:+.1%} on {} exceeds the {:.0%} gate"
            .format(overhead, label, OVERHEAD_GATE))


def test_report_metrics_snapshot_shape(e12_database):
    """The embedded metrics snapshot carries the headline instruments."""
    database = e12_database
    database.execute(scan_filter_join_query(), optimize=False)
    snapshot = database.metrics()
    metrics = snapshot["metrics"]
    assert metrics["queries.executed"] >= 1
    assert metrics["rows.scanned"] > 0
    assert "query.seconds" in metrics and metrics["query.seconds"]["count"] >= 1
    assert any(name.startswith("qerror.") for name in metrics)
    assert snapshot["plan_cache"]["hit_rate"] is not None
    assert snapshot["slow_queries"]["threshold"] == 1.0
