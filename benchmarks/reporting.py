"""Reporting helpers shared by the experiment benchmarks.

Besides the human-readable aligned tables, benchmarks can emit machine-readable
JSON so the performance trajectory is tracked across PRs: pass ``json_name`` to
:func:`print_report` (or call :func:`emit_json` directly) and a ``BENCH_<name>.json``
file is written.  The output directory defaults to ``benchmarks/results/`` next to
this file and can be overridden with the ``BENCH_OUTPUT_DIR`` environment variable.
"""

import json
import os

#: environment variable overriding where BENCH_*.json files are written
OUTPUT_DIR_ENV = "BENCH_OUTPUT_DIR"


def output_dir():
    """The directory BENCH_*.json files are written to (created on demand)."""
    directory = os.environ.get(OUTPUT_DIR_ENV)
    if not directory:
        directory = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(directory, exist_ok=True)
    return directory


def emit_json(name, payload):
    """Write ``payload`` to ``BENCH_<name>.json``; returns the file path."""
    path = os.path.join(output_dir(), "BENCH_{}.json".format(name))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def print_report(title, rows, json_name=None, database=None, operators=None,
                 reset=False):
    """Print a small aligned table (visible with ``pytest -s`` and in captured output).

    With ``json_name`` the same rows are also emitted as ``BENCH_<json_name>.json``.
    ``database`` (a :class:`repro.Database`) embeds its ``metrics()`` snapshot
    in the JSON payload; ``operators`` (a ``result.operator_report()`` list)
    embeds the per-operator timing breakdown — so the perf trajectory records
    where the time went, not just the totals.  ``reset=True`` additionally
    calls ``database.reset_metrics()`` after the snapshot is embedded, so a
    benchmark reporting several phases against one database gets a clean
    metric window per phase instead of cumulative totals.
    """
    print()
    print("== {} ==".format(title))
    if json_name is not None:
        payload = {"title": title, "rows": rows}
        if database is not None:
            payload["metrics"] = database.metrics()
        if operators is not None:
            payload["operators"] = operators
        path = emit_json(json_name, payload)
        print("  (json: {})".format(path))
    if reset and database is not None:
        database.reset_metrics()
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers}
    print("  " + " | ".join(str(h).ljust(widths[h]) for h in headers))
    print("  " + "-+-".join("-" * widths[h] for h in headers))
    for row in rows:
        print("  " + " | ".join(str(row[h]).ljust(widths[h]) for h in headers))
