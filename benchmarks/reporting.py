"""Reporting helper shared by the experiment benchmarks."""


def print_report(title, rows):
    """Print a small aligned table (visible with ``pytest -s`` and in captured output)."""
    print()
    print("== {} ==".format(title))
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers}
    print("  " + " | ".join(str(h).ljust(widths[h]) for h in headers))
    print("  " + "-+-".join("-" * widths[h] for h in headers))
    for row in rows:
        print("  " + " | ".join(str(row[h]).ljust(widths[h]) for h in headers))
