"""E8 — Section 3.1.1: translating a specialization — flexible relation vs the four
classical methods.

Reproduced shape:

* the two single-relation methods (variant-tag column, boolean flag columns) store
  the same data with a large number of NULL cells and rely on the user to keep the
  artificial columns consistent — the flexible relation stores no NULLs and needs no
  artificial attribute;
* horizontal and vertical decomposition along the AD are lossless and are restored
  by an outer union / multiway join respectively;
* storage (cell counts) comparison across the five representations.
"""

import pytest

from reporting import print_report
from repro.baselines import BooleanFlagTable, NullPaddedTable
from repro.engine import Table
from repro.er import horizontal_decomposition, null_count, vertical_decomposition
from repro.workloads.employees import (
    employee_definition,
    employee_dependency,
    employee_scheme,
    generate_employees,
)

SIZE = 1000


def _loaded_table(count=SIZE):
    table = Table(employee_definition())
    table.insert_many(generate_employees(count, seed=401))
    return table


def test_report_storage_comparison():
    table = _loaded_table()
    dependency = employee_dependency()
    attributes = employee_scheme().attributes

    flexible_cells = sum(len(t) for t in table.tuples)

    flat = NullPaddedTable(attributes, dependency)
    flat.insert_many(table.tuples)
    flags = BooleanFlagTable(attributes, dependency)
    flags.insert_many(table.tuples)
    horizontal = horizontal_decomposition(table, dependency)
    vertical = vertical_decomposition(table, dependency, key=["emp_id"])

    rows = [
        {"representation": "flexible relation + AD", "stored cells": flexible_cells,
         "NULL cells": 0, "artificial attributes": 0},
        {"representation": "single table, variant tag", "stored cells": flat.stored_cells(),
         "NULL cells": flat.null_cells(), "artificial attributes": 1},
        {"representation": "single table, boolean flags", "stored cells": flags.stored_cells(),
         "NULL cells": flags.null_cells(), "artificial attributes": 3},
        {"representation": "horizontal fragments", "stored cells": horizontal.total_cells(),
         "NULL cells": 0, "artificial attributes": 0},
        {"representation": "vertical master + dependents", "stored cells": vertical.total_cells(),
         "NULL cells": 0, "artificial attributes": 0},
    ]
    print_report("E8: storage footprint of the five representations ({} tuples)".format(SIZE), rows)
    assert rows[0]["stored cells"] < rows[1]["stored cells"]
    assert rows[0]["stored cells"] < rows[2]["stored cells"]
    assert rows[1]["NULL cells"] == null_count(table, attributes)
    assert rows[0]["stored cells"] == rows[3]["stored cells"]


def test_report_losslessness_and_consistency():
    table = _loaded_table(400)
    dependency = employee_dependency()
    horizontal = horizontal_decomposition(table, dependency)
    vertical = vertical_decomposition(table, dependency, key=["emp_id"])
    flat = NullPaddedTable(employee_scheme().attributes, dependency)
    flat.insert_many(table.tuples)
    rows = [{
        "horizontal lossless (outer union)": horizontal.is_lossless(table),
        "vertical lossless (multiway join)": vertical.is_lossless(table),
        "flat round-trip equals instance": flat.to_tuples() == table.tuples,
        "flat inconsistencies detectable only by inspection": len(flat.inconsistent_rows()) == 0,
    }]
    print_report("E8: restoration of the decompositions", rows)
    assert all(rows[0].values())


@pytest.mark.benchmark(group="e8-decomposition")
def test_bench_horizontal_decomposition(benchmark):
    table = _loaded_table()
    dependency = employee_dependency()

    def run():
        return horizontal_decomposition(table, dependency).total_tuples()

    assert benchmark(run) == len(table)


@pytest.mark.benchmark(group="e8-decomposition")
def test_bench_vertical_decomposition(benchmark):
    table = _loaded_table()
    dependency = employee_dependency()

    def run():
        return vertical_decomposition(table, dependency, key=["emp_id"]).total_tuples()

    assert benchmark(run) >= len(table)


@pytest.mark.benchmark(group="e8-restoration")
def test_bench_outer_union_restoration(benchmark):
    table = _loaded_table()
    decomposition = horizontal_decomposition(table, employee_dependency())

    def run():
        return len(decomposition.restore())

    assert benchmark(run) == len(table)


@pytest.mark.benchmark(group="e8-restoration")
def test_bench_multiway_join_restoration(benchmark):
    table = _loaded_table()
    decomposition = vertical_decomposition(table, employee_dependency(), key=["emp_id"])

    def run():
        return len(decomposition.restore())

    assert benchmark(run) == len(table)


@pytest.mark.benchmark(group="e8-baseline")
def test_bench_flat_table_load(benchmark):
    table = _loaded_table()
    attributes = employee_scheme().attributes
    dependency = employee_dependency()

    def run():
        flat = NullPaddedTable(attributes, dependency)
        flat.insert_many(table.tuples)
        return flat.null_cells()

    assert benchmark(run) > 0
