"""E17 — durability under fire: WAL overhead, group commit, crash recovery.

Every autocommitted mutation against a ``Database(durable_path=...)`` is an
fsynced commit point in the write-ahead log, so single-commit durability pays
one ``fsync`` per DML statement.  Group commit (``group_commit_window`` +
``group_commit_max``) batches those commit points: the fsync happens once per
window, and every commit in the window rides on it.

Wall-clock is the wrong gate here — CI scratch space is typically tmpfs, where
``fsync`` is nearly free and the measured overhead collapses into noise.  The
machine-independent number is the **fsync amortization ratio**
``commits / fsyncs``: 1.0x under fsync-per-commit, ≥``group_commit_max``-ish
under group commit.  That ratio is deterministic (it counts syscalls, not
seconds) and is what the ``speedup`` column records for
``check_regression.py``.

Gate (the ISSUE acceptance criterion): group commit must amortize the durable
overhead by **≥2×** — i.e. retire at least twice as many commits per fsync as
the single-commit configuration — while the durable database's contents stay
byte-identical to the in-memory run and a post-crash reopen replays the WAL
back to exactly that state.
"""

import shutil
import time

import pytest

from reporting import print_report
from repro.engine import Database
from repro.storage import canonical_state
from repro.workloads.employees import employee_definition, generate_employees

#: the ISSUE acceptance factor: group commit retires ≥ this many times more
#: commits per fsync than the fsync-per-commit configuration
ACCEPTANCE_FACTOR = 2

#: DML statements per run — each autocommitted insert is one WAL commit point
COMMITS = 300

#: group-commit configuration under test: a wide window so the fsync cadence
#: is driven purely by ``group_commit_max`` (deterministic in CI)
GROUP_COMMIT_MAX = 10
GROUP_COMMIT_WINDOW = 60.0


def _create_employees(database):
    definition = employee_definition()
    return database.create_table(
        "employees", definition.scheme, domains=definition.domains,
        key=definition.key, dependencies=definition.dependencies,
    )


def _run_workload(database, tuples):
    """Insert each tuple as its own autocommitted statement; returns seconds."""
    table = _create_employees(database)
    start = time.perf_counter()
    for tup in tuples:
        table.insert(tup)
    return time.perf_counter() - start


def test_report_group_commit_amortizes_fsyncs(tmp_path):
    """WAL overhead: in-memory vs fsync-per-commit vs group commit."""
    tuples = generate_employees(COMMITS, seed=131)

    memory = Database()
    memory_seconds = _run_workload(memory, tuples)

    single = Database(durable_path=str(tmp_path / "single"))
    single_seconds = _run_workload(single, tuples)
    single_stats = single.metrics()["durability"]

    grouped = Database(durable_path=str(tmp_path / "grouped"),
                       group_commit_window=GROUP_COMMIT_WINDOW,
                       group_commit_max=GROUP_COMMIT_MAX)
    grouped_seconds = _run_workload(grouped, tuples)
    grouped.durability.wal.flush()  # drain the last (partial) window
    grouped_stats = grouped.metrics()["durability"]

    single_ratio = single_stats["commits"] / max(1, single_stats["fsyncs"])
    grouped_ratio = grouped_stats["commits"] / max(1, grouped_stats["fsyncs"])

    rows = [
        {"configuration": "in-memory", "seconds": "{:.4f}".format(memory_seconds),
         "commits": 0, "fsyncs": 0, "speedup": ""},
        {"configuration": "durable, fsync per commit",
         "seconds": "{:.4f}".format(single_seconds),
         "commits": single_stats["commits"], "fsyncs": single_stats["fsyncs"],
         "speedup": "{:.2f}x".format(single_ratio)},
        {"configuration": "durable, group commit (max {})".format(GROUP_COMMIT_MAX),
         "seconds": "{:.4f}".format(grouped_seconds),
         "commits": grouped_stats["commits"], "fsyncs": grouped_stats["fsyncs"],
         "speedup": "{:.2f}x".format(grouped_ratio)},
    ]
    print_report(
        "E17: durable WAL — group commit amortizes the fsync-per-commit overhead",
        rows, json_name="e17_durability", database=grouped,
    )

    # Durability must not change what the database contains.
    assert canonical_state(single) == canonical_state(memory)
    assert canonical_state(grouped) == canonical_state(memory)
    # Every statement was a commit point in both durable configurations.
    assert single_stats["commits"] == COMMITS
    assert grouped_stats["commits"] == COMMITS
    # The gate: group commit amortizes ≥2× over fsync-per-commit, which by
    # construction retires one commit per fsync (plus one DDL sync for the
    # CREATE TABLE, so its ratio sits just under 1.0x).
    assert single_stats["fsyncs"] == COMMITS + 1
    assert grouped_ratio >= ACCEPTANCE_FACTOR * single_ratio
    single.close()
    grouped.close()


def test_report_crash_recovery_replays_the_wal(tmp_path):
    """Recovery: kill the process image, reopen, replay committed work."""
    tuples = generate_employees(COMMITS, seed=137)
    directory = tmp_path / "crashed"

    original = Database(durable_path=str(directory))
    _run_workload(original, tuples)
    expected = canonical_state(original)
    wal_bytes = original.metrics()["durability"]["wal_bytes"]
    # Simulated crash: drop the object without close() — no checkpoint, no
    # clean shutdown; the WAL is all that survives.
    del original

    start = time.perf_counter()
    recovered = Database(durable_path=str(directory))
    recovery_seconds = time.perf_counter() - start
    report = recovered.metrics()["durability"]["last_recovery"]
    megabytes = wal_bytes / (1024.0 * 1024.0)

    rows = [{
        "wal_bytes": wal_bytes,
        "records": report["records_read"],
        "replayed_txns": report["transactions_applied"],
        "recovery_seconds": "{:.4f}".format(recovery_seconds),
        "throughput_mb_s": "{:.1f}".format(megabytes / max(recovery_seconds, 1e-9)),
    }]
    print_report("E17: crash recovery — WAL replay restores the committed state",
                 rows, json_name="e17_recovery", database=recovered)

    assert canonical_state(recovered) == expected
    assert report["operations_applied"] == COMMITS
    assert report["torn_offset"] is None
    recovered.close()
    shutil.rmtree(str(directory))
