"""E5 — Example 4 / Section 3.1.2: AD-driven query optimization.

Reproduced shape:

* the type guard on ``typing-speed`` after the selection
  ``salary > 5000 AND jobtype = 'secretary'`` is recognized as redundant and removed;
* a guard that contradicts the selected variant collapses the query to the empty
  result without scanning;
* selections over a horizontally decomposed relation (outer union of fragments)
  skip the fragments excluded by the selection (qualified-relation reasoning);
* the rewritten queries return exactly the same tuples at measurably lower cost
  (work counters and wall-clock).
"""

import pytest

from reporting import print_report
from repro.algebra import (
    Evaluator,
    Extension,
    OuterUnion,
    RelationRef,
    Selection,
    TypeGuardNode,
)
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.er import horizontal_decomposition
from repro.optimizer import Planner, measured_cost
from repro.workloads.employees import employee_definition, employee_dependency, generate_employees


def example4_query():
    return TypeGuardNode(
        Selection(
            RelationRef("employees"),
            Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary"),
        ),
        ["typing_speed"],
    )


def excluded_variant_query():
    return TypeGuardNode(
        Selection(
            RelationRef("employees"),
            Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary"),
        ),
        ["sales_commission"],
    )


def _fragment_database(count=1000):
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(count, seed=301))
    decomposition = horizontal_decomposition(employees, employee_dependency())
    for name, tuples in decomposition.fragments.items():
        table = database.create_table("frag_{}".format(name.replace(" ", "_")),
                                      definition.scheme, domains=definition.domains)
        table.insert_many(tuples)
    return database


def fragment_query():
    secretaries = Extension(RelationRef("frag_secretary"), "fragment", "secretary")
    engineers = Extension(RelationRef("frag_software_engineer"), "fragment", "software engineer")
    salesmen = Extension(RelationRef("frag_salesman"), "fragment", "salesman")
    union = OuterUnion(OuterUnion(secretaries, engineers), salesmen)
    return Selection(union, Comparison("fragment", "=", "secretary") & Comparison("salary", ">", 5000.0))


def test_report_example4_guard_elimination(employee_database_1k):
    database = employee_database_1k
    query = example4_query()
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    rows = [{
        "query": "σ(salary>5000 ∧ jobtype='secretary') + guard(typing_speed)",
        "rewrites": len(report),
        "tuples (unoptimized)": len(plain),
        "tuples (optimized)": len(optimized),
        "work unoptimized": plain.stats.total_work,
        "work optimized": optimized.stats.total_work,
    }]
    print_report("E5: redundant type-guard elimination (Example 4)", rows)
    assert report.changed
    assert plain.tuples == optimized.tuples
    assert optimized.stats.total_work < plain.stats.total_work


def test_report_excluded_variant_guard(employee_database_1k):
    database = employee_database_1k
    query = excluded_variant_query()
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    rows = [{
        "query": "σ(jobtype='secretary') + guard(sales_commission)",
        "rewrites": len(report),
        "tuples (both)": len(plain),
        "work unoptimized": plain.stats.total_work,
        "work optimized": optimized.stats.total_work,
    }]
    print_report("E5: guard on an excluded variant collapses to the empty result", rows)
    assert report.changed
    assert len(plain) == 0 and len(optimized) == 0
    assert optimized.stats.total_work <= plain.stats.total_work


def test_report_fragment_pruning():
    database = _fragment_database(1000)
    query = fragment_query()
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    rows = [{
        "query": "σ(fragment='secretary' ∧ salary>5000) over outer union of 3 fragments",
        "rewrites": len(report),
        "tuples equal": plain.tuples == optimized.tuples,
        "work unoptimized": plain.stats.total_work,
        "work optimized": optimized.stats.total_work,
        "speedup (work)": round(plain.stats.total_work / max(1, optimized.stats.total_work), 2),
    }]
    print_report("E5: excluded-fragment pruning over a horizontal decomposition", rows)
    assert report.changed
    assert plain.tuples == optimized.tuples
    assert optimized.stats.total_work < plain.stats.total_work


def test_report_rewrite_rule_ablation(employee_database_1k):
    """Ablation from DESIGN.md §6: which rewrite rule contributes what."""
    from repro.optimizer.rewrite_rules import (
        eliminate_contradictory_selections,
        eliminate_redundant_guards,
        prune_union_branches,
    )

    database = _fragment_database(500)
    workload = {
        "Example 4 guard": (employee_database_1k, example4_query()),
        "excluded-variant guard": (employee_database_1k, excluded_variant_query()),
        "fragment union": (database, fragment_query()),
    }
    rule_sets = {
        "no rewrites": [],
        "guards only": [eliminate_redundant_guards],
        "contradictions only": [eliminate_contradictory_selections],
        "branch pruning only": [prune_union_branches],
        "all rules": None,  # planner default
    }
    rows = []
    for rules_label, rules in rule_sets.items():
        row = {"rule set": rules_label}
        for query_label, (db, query) in workload.items():
            planner = Planner(catalog=db) if rules is None else Planner(catalog=db, rules=rules)
            rewritten, _ = planner.optimize(query)
            row[query_label] = Evaluator(db).evaluate(rewritten).stats.total_work
        rows.append(row)
    print_report("E5 ablation: evaluator work per query under each rule subset", rows)
    baseline = rows[0]
    full = rows[-1]
    assert all(full[label] <= baseline[label] for label in workload)
    assert any(full[label] < baseline[label] for label in workload)


@pytest.mark.benchmark(group="e5-example4")
def test_bench_example4_unoptimized(benchmark, employee_database_1k):
    query = example4_query()

    def run():
        return len(employee_database_1k.execute(query, optimize=False))

    benchmark(run)


@pytest.mark.benchmark(group="e5-example4")
def test_bench_example4_optimized(benchmark, employee_database_1k):
    query = example4_query()
    planner = Planner(catalog=employee_database_1k)
    rewritten, _ = planner.optimize(query)
    evaluator = Evaluator(employee_database_1k)

    def run():
        return len(evaluator.evaluate(rewritten))

    benchmark(run)


@pytest.mark.benchmark(group="e5-example4")
def test_bench_planning_overhead(benchmark, employee_database_1k):
    query = example4_query()
    planner = Planner(catalog=employee_database_1k)

    def run():
        rewritten, _ = planner.optimize(query)
        return rewritten

    benchmark(run)


@pytest.mark.benchmark(group="e5-fragments")
def test_bench_fragment_query_unoptimized(benchmark):
    database = _fragment_database(500)
    query = fragment_query()

    def run():
        return len(database.execute(query, optimize=False))

    benchmark(run)


@pytest.mark.benchmark(group="e5-fragments")
def test_bench_fragment_query_optimized(benchmark):
    database = _fragment_database(500)
    query = fragment_query()
    planner = Planner(catalog=database)
    rewritten, _ = planner.optimize(query)
    evaluator = Evaluator(database)

    def run():
        return len(evaluator.evaluate(rewritten))

    benchmark(run)
