"""E13 — cost-based join-order search vs. smallest-input-first ordering.

The star workload of :mod:`repro.workloads.star`: a 5000-row ``fact`` relation
joined to five dimensions, four of them tiny but non-reductive, the largest one
(``dim_rare``) filtered down to a 5% variant tag and the only join that
actually shrinks the fact side.  Claims checked (and reported as
machine-readable ``BENCH_e13_*.json``):

* the DP search (``join_order_search="dp"``) reorders the 6-way join to run
  ``fact ⋈ σ(dim_rare)`` first and examines **≥ 5× fewer join pairs**
  (``join_pairs_considered``) than the pre-search smallest-input-first order —
  the ISSUE 4 acceptance gate — with identical result sets in both row and
  batch execution modes;
* the greedy O(n³) fallback finds a plan of the same quality on this workload
  while pricing far fewer candidate plans than the exhaustive DP (the
  DP/greedy trade-off the ``join_dp_threshold`` knob arbitrates);
* on the 5-way chain workload (selective filters on both ends) every search
  mode agrees with the naive evaluator — the reordering is semantics-preserving
  on bushy shapes too.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import Evaluator
from repro.exec import PhysicalPlanner
from repro.workloads.star import (
    chain_join_database,
    chain_join_query,
    star_join_database,
    star_join_query,
)

#: the ISSUE 4 acceptance factor: DP examines ≥ this many times fewer pairs
ACCEPTANCE_FACTOR = 5


@pytest.fixture(scope="module")
def star_database():
    database = star_join_database()
    database.analyze()
    return database


@pytest.fixture(scope="module")
def chain_database():
    database = chain_join_database()
    database.analyze()
    return database


def _run(database, query, mode, vectorize=True):
    planner = PhysicalPlanner(database, join_order_search=mode,
                              vectorize=vectorize)
    plan = planner.plan(query)
    start = time.perf_counter()
    result = plan.execute(database)
    seconds = time.perf_counter() - start
    report = plan.join_search[0] if plan.join_search else None
    return plan, result, report, seconds


def test_report_star_dp_beats_smallest_first(star_database):
    """The acceptance gate: ≥5× fewer join pairs than smallest-input-first."""
    query = star_join_query()
    rows = []
    results = {}
    for mode in ("smallest", "greedy", "dp"):
        plan, result, report, seconds = _run(star_database, query, mode)
        results[mode] = result
        rows.append({
            "search": mode,
            "join_pairs": result.stats.join_pairs_considered,
            "work": result.stats.total_work,
            "tuples": len(result),
            "order": report.order if report else "(written order)",
            "seconds": round(seconds, 4),
        })
    print_report(
        "E13: 6-way skewed star join (fact 5000, 5%-tag dim_rare) — search modes",
        rows, json_name="e13_star_join_order",
        database=star_database, operators=results["dp"].operator_report(),
    )
    assert results["smallest"].tuples == results["dp"].tuples == results["greedy"].tuples
    smallest_pairs = results["smallest"].stats.join_pairs_considered
    dp_pairs = results["dp"].stats.join_pairs_considered
    # The ISSUE acceptance criterion.
    assert smallest_pairs >= ACCEPTANCE_FACTOR * dp_pairs


def test_report_row_and_batch_modes_agree(star_database):
    """The DP-ordered plan returns identical tuples in row and batch modes."""
    query = star_join_query()
    outcomes = {}
    rows = []
    for vectorize in (False, True):
        plan, result, _report, seconds = _run(star_database, query, "dp",
                                              vectorize=vectorize)
        outcomes[plan.mode] = result
        rows.append({"mode": plan.mode, "tuples": len(result),
                     "join_pairs": result.stats.join_pairs_considered,
                     "work": result.stats.total_work,
                     "seconds": round(seconds, 4)})
    print_report("E13: DP-ordered star join — row vs batch execution", rows,
                 json_name="e13_row_vs_batch")
    (first, second) = outcomes.values()
    assert first.tuples == second.tuples
    assert first.stats.join_pairs_considered == second.stats.join_pairs_considered


def test_report_search_effort(star_database, chain_database):
    """DP prices more candidates than greedy but stays tiny at n=6; both report
    their enumeration statistics."""
    rows = []
    reports = {}
    for label, database, query in (("star", star_database, star_join_query()),
                                   ("chain", chain_database, chain_join_query())):
        for mode in ("dp", "greedy"):
            plan, _result, report, _seconds = _run(database, query, mode)
            reports[(label, mode)] = report
            entry = {"workload": label, "search": mode}
            entry.update(report.as_dict())
            del entry["order"], entry["mode"]
            rows.append(entry)
    print_report("E13: join-order search effort (subsets / candidates / pruned)",
                 rows, json_name="e13_search_effort")
    star_dp = reports[("star", "dp")]
    assert star_dp.relations == 6
    # Every plan the DP keeps covers a connected subset: at most 2^6 of them.
    assert star_dp.subsets_enumerated <= 2 ** 6
    assert star_dp.plans_considered > reports[("star", "greedy")].plans_considered


def test_report_chain_parity_all_modes(chain_database):
    """Reordering is semantics-preserving: every mode equals the naive evaluator."""
    query = chain_join_query()
    naive = Evaluator(chain_database).evaluate(query)
    rows = [{"mode": "naive-evaluator", "tuples": len(naive.tuples),
             "join_pairs": naive.stats.join_pairs_considered, "parity": "-"}]
    for mode in ("none", "smallest", "greedy", "dp"):
        _plan, result, _report, _seconds = _run(chain_database, query, mode)
        rows.append({"mode": mode, "tuples": len(result),
                     "join_pairs": result.stats.join_pairs_considered,
                     "parity": result.tuples == naive.tuples})
        assert result.tuples == naive.tuples
    print_report("E13: 5-way chain join — parity across search modes", rows,
                 json_name="e13_chain_parity")


@pytest.mark.benchmark(group="e13-joinorder")
def test_bench_star_dp(benchmark, star_database):
    query = star_join_query()
    plan = PhysicalPlanner(star_database, join_order_search="dp").plan(query)
    benchmark(lambda: len(plan.execute(star_database)))


@pytest.mark.benchmark(group="e13-joinorder")
def test_bench_star_smallest_first(benchmark, star_database):
    query = star_join_query()
    plan = PhysicalPlanner(star_database, join_order_search="smallest").plan(query)
    benchmark(lambda: len(plan.execute(star_database)))


@pytest.mark.benchmark(group="e13-planning")
def test_bench_dp_planning_time(benchmark, star_database):
    query = star_join_query()

    def plan_once():
        return PhysicalPlanner(star_database, join_order_search="dp").plan(query)

    benchmark(plan_once)
