"""E18 — AD-aware aggregation and top-k on the skewed orders workload.

100k ``orders`` rows (Zipf-skewed regions, channel-keyed variant attributes,
mixed int/float/NULL/absent amounts — :mod:`repro.workloads.analytics`) drive
two claims from the analytic-surface ISSUE:

* **streaming hash aggregation** — all six aggregate functions grouped by
  ``region`` through the batch engine must beat a deliberately naive
  *sort-group* reference (full sort of the materialized relation on the group
  key, then one accumulator update per row) by **≥5× wall-clock**, while the
  row and batch engines return the identical tuple set with identical
  ``ExecutionStats`` counters, and the reference reproduces the same set
  through the shared :class:`~repro.algebra.analytic.AggregateAccumulator`
  semantics;
* **bounded top-k memory** — ``λ_10 ∘ τ`` lowers to the heap-based ``top-k``
  operator whose ``peak_bytes`` accounting stays *orders of magnitude* below
  the full sort's bounded-materialization accounting on the same input
  (the ``memory_ratio`` column), while agreeing with the naive evaluator.

The ``speedup`` ratios are machine-independent gates tracked by
``check_regression.py`` (report name ``e18_aggregation``).
"""

import time

import pytest

from reporting import print_report
from repro.algebra import Aggregate, Evaluator, Limit, RelationRef, Sort
from repro.algebra.analytic import (
    AggregateAccumulator,
    aggregate_spec,
    group_key,
    group_values,
    row_order_key,
    sort_key,
)
from repro.exec import PhysicalExecutor, PhysicalPlanner
from repro.model.tuples import FlexTuple
from repro.workloads.analytics import DEFAULT_ORDER_COUNT, analytics_database

#: the ISSUE acceptance gate: batch hash aggregation ≥5× over the naive
#: sort-group reference
ACCEPTANCE_FACTOR = 5.0

#: the top-k memory gate: the heap's peak_bytes at least this many times
#: smaller than the full sort's materialization on the same 100k rows
MEMORY_FACTOR = 50.0

#: every aggregate function at once, grouped by the Zipf-skewed region
GROUP_BY = ("region",)
SPECS = ("count", ("count", "amount"), ("sum", "amount"),
         ("min", "amount"), ("max", "amount"), ("avg", "amount"))

TOPK_KEYS = ("-amount", "order_id")
TOPK_COUNT = 10

#: best-of-N damps CI-runner noise; the gated number is a ratio of two
#: best-of measurements, so a single slow run cannot flip it
TIMING_RUNS = 3


@pytest.fixture(scope="module")
def orders_database():
    return analytics_database(DEFAULT_ORDER_COUNT, seed=18)


def naive_sort_group(tuples, group_by, specs):
    """The textbook sort-based GROUP BY: sort on the key, scan, accumulate.

    Deliberately row-at-a-time — a full O(n log n) sort of the materialized
    relation followed by one accumulator update per row — but built on the
    *same* :class:`AggregateAccumulator`, so its results are the pinned
    semantics by construction and any engine divergence is a real bug.
    """
    specs = tuple(aggregate_spec(spec) for spec in specs)
    accumulator = AggregateAccumulator(specs)
    rows = sorted(tuples, key=lambda tup: row_order_key(
        tup._values, tuple(sort_key(attr) for attr in group_by)))
    results = set()
    current_key, state = None, None
    for tup in rows:
        values = tup._values
        key = group_key(values, group_by)
        if key != current_key:
            if state is not None:
                results.add(FlexTuple(**dict(group_values(current_key, group_by),
                                             **accumulator.finalize(state))))
            current_key, state = key, accumulator.new_state()
        accumulator.update(state, values)
    if state is not None:
        results.add(FlexTuple(**dict(group_values(current_key, group_by),
                                     **accumulator.finalize(state))))
    return results


def _best_of(callable_, runs=TIMING_RUNS):
    result, best = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_report_hash_aggregate_beats_sort_group(orders_database):
    """The acceptance gate: ≥5× over the naive sort-group reference."""
    database = orders_database
    query = Aggregate(RelationRef("orders"), group_by=GROUP_BY, specs=SPECS)

    tuples = set(database.table("orders").tuples)
    reference, naive_seconds = _best_of(
        lambda: naive_sort_group(tuples, GROUP_BY, SPECS))

    row_exec = PhysicalExecutor(database, planner=PhysicalPlanner(
        source=database, vectorize=False))
    batch_exec = PhysicalExecutor(database, planner=PhysicalPlanner(
        source=database))
    batch_plan = batch_exec.plan(query)
    assert batch_plan.mode == "batch", batch_plan.explain()

    row_result, row_seconds = _best_of(lambda: row_exec.execute(query))
    batch_result, batch_seconds = _best_of(lambda: batch_exec.execute(query))
    speedup = naive_seconds / batch_seconds

    rows = [
        {"engine": "naive sort-group reference (full sort + per-row update)",
         "groups": len(reference), "rows_in": len(tuples),
         "seconds": round(naive_seconds, 4), "speedup": "1.00x"},
        {"engine": "row hash aggregate",
         "groups": len(row_result), "rows_in": len(tuples),
         "seconds": round(row_seconds, 4),
         "speedup": "{:.2f}x".format(naive_seconds / row_seconds)},
        {"engine": "batch hash aggregate (column-wise accumulation)",
         "groups": len(batch_result), "rows_in": len(tuples),
         "seconds": round(batch_seconds, 4),
         "speedup": "{:.2f}x".format(speedup)},
    ]
    print_report(
        "E18: γ_region[count, count(amount), sum, min, max, avg] on "
        "{}k skewed orders — naive sort-group vs hash aggregation".format(
            DEFAULT_ORDER_COUNT // 1000),
        rows, json_name="e18_aggregation",
        database=database, operators=batch_result.operator_report(),
    )

    # identical results everywhere, identical row/batch counters
    assert batch_result.tuples == reference
    assert row_result.tuples == reference
    assert row_result.stats.as_dict() == batch_result.stats.as_dict()
    # the ISSUE acceptance criterion
    assert speedup >= ACCEPTANCE_FACTOR, (
        "batch hash aggregate speedup {:.2f}x below the {}x gate".format(
            speedup, ACCEPTANCE_FACTOR))


def test_report_topk_heap_is_bounded(orders_database):
    """λ_10 ∘ τ runs on an O(k) heap; the full sort materializes all 100k."""
    database = orders_database
    topk_query = Limit(Sort(RelationRef("orders"), TOPK_KEYS), TOPK_COUNT)
    sort_query = Sort(RelationRef("orders"), TOPK_KEYS)

    executor = PhysicalExecutor(database, planner=PhysicalPlanner(source=database))
    topk_plan = executor.plan(topk_query)
    assert "top-k" in topk_plan.explain(), topk_plan.explain()

    topk_result, topk_seconds = _best_of(lambda: executor.execute(topk_query))
    sort_result, sort_seconds = _best_of(lambda: executor.execute(sort_query))

    def peak_of(result, operator):
        for entry in result.operator_report():
            if operator in entry["operator"]:
                return entry["peak_bytes"]
        raise AssertionError("no {} operator in the report".format(operator))

    topk_peak = peak_of(topk_result, "top-k")
    sort_peak = peak_of(sort_result, "sort")
    ratio = sort_peak / max(1, topk_peak)

    rows = [
        {"plan": "full sort (bounded materialization accounting)",
         "tuples": len(sort_result), "peak_bytes": sort_peak,
         "seconds": round(sort_seconds, 4), "memory_ratio": "1.00x"},
        {"plan": "fused top-k heap (k={})".format(TOPK_COUNT),
         "tuples": len(topk_result), "peak_bytes": topk_peak,
         "seconds": round(topk_seconds, 4),
         "memory_ratio": "{:.0f}x".format(ratio)},
    ]
    print_report(
        "E18: λ_{} ∘ τ(-amount, order_id) on {}k orders — heap top-k vs full "
        "sort peak memory".format(TOPK_COUNT, DEFAULT_ORDER_COUNT // 1000),
        rows, json_name="e18_topk", database=database,
    )

    # the heap answer is the naive evaluator's answer
    assert topk_result.tuples \
        == Evaluator(database).evaluate(topk_query).tuples
    assert len(topk_result) == TOPK_COUNT
    # the memory gate: O(k) heap vs O(n) materialization
    assert topk_peak * MEMORY_FACTOR <= sort_peak, (
        "top-k peak {} bytes not {}x below the full sort's {}".format(
            topk_peak, MEMORY_FACTOR, sort_peak))
