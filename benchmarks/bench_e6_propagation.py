"""E6 — Theorem 4.3: propagation of attribute dependencies through the algebra.

Reproduced shape: for every rule (1)–(6) the dependencies computed by the
propagation module hold in the actual operator result computed by the evaluator;
for the union rule (4) the untagged union really does destroy the dependency while
the tagged union (6) restores it.

Timed: computing the propagated dependency set for a deep expression vs. verifying
the dependencies on the materialized result (static propagation is orders of
magnitude cheaper, which is the point of having the rules).
"""

import pytest

from reporting import print_report
from repro.algebra import (
    Evaluator,
    Extension,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
)
from repro.algebra.predicates import Comparison
from repro.core.dependencies import ad
from repro.core.propagation import (
    propagate_product,
    propagate_projection,
    propagate_selection,
    propagate_tagged_union,
    propagate_union,
)
from repro.engine import Database
from repro.model.attributes import attrset
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_definition, generate_employees
from repro.workloads.generators import instance_for_dependency, random_explicit_ad


def _database_with_two_tables(count=400):
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(count, seed=211))
    gadget_dependency = random_explicit_ad(determinant="gkind", variant_count=2,
                                           attributes_per_variant=2, seed=3, prefix="g")
    gadgets = database.create_table(
        "gadgets",
        FlexibleScheme(2, 4, ["gid", "gkind", *sorted(a.name for a in gadget_dependency.rhs)]),
        dependencies=[gadget_dependency],
    )
    gadgets.insert_many(
        t.as_dict() for t in instance_for_dependency(gadget_dependency, base_attributes=("gid",),
                                                     count=30, seed=4)
    )
    return database


def test_report_rules_hold_empirically():
    database = _database_with_two_tables()
    evaluator = Evaluator(database)
    cases = {
        "(1) product": Product(RelationRef("employees"), RelationRef("gadgets")),
        "(2) projection": Projection(RelationRef("employees"),
                                     ["jobtype", "typing_speed", "products"]),
        "(3) selection": Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0)),
        "(5) difference": RelationRef("employees").difference(
            Selection(RelationRef("employees"), Comparison("jobtype", "=", "salesman"))),
        "(6) tagged union": Union(Extension(RelationRef("employees"), "tag", 1),
                                  Extension(RelationRef("employees"), "tag", 2)),
    }
    rows = []
    for label, expression in cases.items():
        propagated = expression.known_ads(database)
        result = evaluator.evaluate(expression)
        verified = all(dependency.holds_in(result.tuples) for dependency in propagated)
        rows.append({"rule": label, "propagated dependencies": len(propagated),
                     "all hold in the result": verified})
    print_report("E6: Theorem 4.3 propagation rules verified on operator results", rows)
    assert all(row["all hold in the result"] for row in rows)
    assert all(row["propagated dependencies"] > 0 for row in rows)


def test_report_union_rule_shape():
    left = [t for t in instance_for_dependency(random_explicit_ad(seed=5), count=40, seed=6)]
    right = [t for t in instance_for_dependency(random_explicit_ad(seed=7, shared_attributes=1),
                                                count=40, seed=8)]
    dependency = random_explicit_ad(seed=5).to_ad()
    untagged = left + right
    tagged = [t.extend(tag="l") for t in left] + [t.extend(tag="r") for t in right]
    tagged_deps = propagate_tagged_union([dependency], [random_explicit_ad(seed=7, shared_attributes=1).to_ad()], "tag")
    rows = [{
        "untagged union keeps": len(propagate_union([dependency], [dependency])),
        "dependency still holds untagged": dependency.holds_in(untagged),
        "tagged union keeps": len(tagged_deps),
        "tagged dependencies hold": all(d.holds_in(tagged) for d in tagged_deps),
    }]
    print_report("E6: rule (4) vs rule (6) — untagged vs tagged union", rows)
    assert rows[0]["untagged union keeps"] == 0
    assert not rows[0]["dependency still holds untagged"]
    assert rows[0]["tagged dependencies hold"]


@pytest.mark.benchmark(group="e6-propagation")
def test_bench_static_propagation(benchmark):
    database = _database_with_two_tables(200)
    expression = Projection(
        Selection(Product(RelationRef("employees"), RelationRef("gadgets")),
                  Comparison("jobtype", "=", "secretary")),
        ["jobtype", "typing_speed", "gkind", "g1_1", "g1_2"],
    )

    def run():
        return len(expression.known_ads(database))

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="e6-propagation")
def test_bench_verification_on_materialized_result(benchmark):
    database = _database_with_two_tables(200)
    expression = Projection(
        Selection(Product(RelationRef("employees"), RelationRef("gadgets")),
                  Comparison("jobtype", "=", "secretary")),
        ["jobtype", "typing_speed", "gkind", "g1_1", "g1_2"],
    )
    evaluator = Evaluator(database)
    propagated = expression.known_ads(database)

    def run():
        result = evaluator.evaluate(expression)
        return all(dependency.holds_in(result.tuples) for dependency in propagated)

    assert benchmark(run)


@pytest.mark.benchmark(group="e6-propagation")
def test_bench_propagation_functions_only(benchmark):
    left = {ad("jobtype", ["typing_speed", "products"]), ad("emp_id", ["name", "salary"])}
    right = {ad("gkind", ["g1_1", "g2_1"])}

    def run():
        product = propagate_product(left, right)
        selected = propagate_selection(product)
        projected = propagate_projection(selected, ["jobtype", "typing_speed", "gkind", "g1_1"])
        tagged = propagate_tagged_union(projected, projected, "tag")
        return len(tagged)

    assert benchmark(run) > 0
