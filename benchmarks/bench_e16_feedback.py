"""E16 — cardinality feedback re-orders a join the stale statistics got wrong.

The skewed star workload of :mod:`repro.workloads.star` with **deliberately
stale** statistics on ``dim_rare``: after ANALYZE, one DML against the big
dimension makes its distributions unusable, so the first planning pass falls
back to default selectivities and prices ``fact ⋈ σ(dim_rare)`` — the only
join that actually shrinks the fact side — as an explosion, dragging the full
fact relation through every non-reductive dimension join first.

The first execution pays for that order, but it also *observes* it: the
engine folds the mis-estimated σ(dim_rare) cardinality and the executed join
edge's true selectivity (``rows_out / (rows_left × rows_right)``, keyed by
join attribute and carrier tables) into the
:class:`~repro.obs.feedback.CardinalityFeedback` store.  The store's version
is part of the plan-cache key, so the second execution re-plans — now pricing
the selective join first from observed truth — and the third execution hits
the plan cache again: one bad run, one corrected re-plan, then steady state.

Gate (the ISSUE acceptance criterion): the feedback-corrected second run must
examine **≥5× fewer join pairs** (``join_pairs_considered``) than the first,
with identical result sets.  The ``speedup`` column records the pair ratio
for ``check_regression.py``.
"""

import time

import pytest

from reporting import print_report
from repro.workloads.star import star_join_database, star_join_query

#: the ISSUE acceptance factor: the corrected run examines ≥ this many times
#: fewer join pairs than the stale-statistics first run
ACCEPTANCE_FACTOR = 5


@pytest.fixture()
def stale_star_database():
    """The analyzed star database with ``dim_rare`` statistics gone stale.

    Function-scoped on purpose: every test needs the pristine arc of
    stale plan → observation → corrected re-plan, so no feedback may leak
    between tests.
    """
    database = star_join_database()
    database.analyze()
    # One DML against the big dimension: its ANALYZE distributions (the NDV
    # that prices the selective join) are no longer trusted, the planner is
    # back on default constants for everything touching dim_rare.
    database.table("dim_rare").insert({"dr": 1001, "kind": "common"})
    return database


def _run(database, query):
    start = time.perf_counter()
    result = database.execute(query, optimize=False)
    return result, time.perf_counter() - start


def test_report_feedback_corrects_stale_star(stale_star_database):
    """The acceptance gate: the feedback-corrected run examines ≥5× fewer pairs."""
    database = stale_star_database
    query = star_join_query()
    runs = []
    for label in ("stale", "corrected", "steady"):
        result, seconds = _run(database, query)
        feedback = database.cardinality_feedback.as_dict()
        runs.append({
            "run": label,
            "join_pairs": result.stats.join_pairs_considered,
            "tuples": len(result),
            "seconds": round(seconds, 4),
            "feedback_entries": feedback["entries"],
            "feedback_edges": feedback["edges"],
            "speedup": "{:.2f}x".format(
                runs[0]["join_pairs"] / result.stats.join_pairs_considered
                if runs else 1.0),
            "result": result,
        })
    rows = [{k: v for k, v in run.items() if k != "result"} for run in runs]
    print_report(
        "E16: stale-stats star join — cardinality feedback re-orders run 2",
        rows, json_name="e16_feedback", database=database,
    )

    stale, corrected, steady = runs
    assert stale["result"].tuples == corrected["result"].tuples
    assert corrected["result"].tuples == steady["result"].tuples
    # The ISSUE acceptance criterion: one observed execution is enough for the
    # search to put the selective join first.
    assert stale["join_pairs"] >= ACCEPTANCE_FACTOR * corrected["join_pairs"]
    # The correction converges: the third run reuses the corrected plan (no
    # further feedback, no further re-plan) and examines the same pairs.
    assert steady["join_pairs"] == corrected["join_pairs"]
    assert database.physical_executor.cache_hits >= 1


def test_report_feedback_invalidated_by_dml(stale_star_database):
    """DML on an observed table drops its feedback — no stale corrections."""
    database = stale_star_database
    query = star_join_query()
    _run(database, query)
    assert len(database.cardinality_feedback) > 0
    database.table("dim_rare").insert({"dr": 1002, "kind": "common"})
    feedback = database.cardinality_feedback.as_dict()
    rows = [{"after": "dml on dim_rare", "entries": feedback["entries"],
             "edges": feedback["edges"],
             "invalidations": feedback["invalidations"]}]
    print_report("E16: feedback lifecycle — DML invalidation", rows,
                 json_name="e16_feedback_lifecycle", database=database,
                 reset=True)
    assert all(
        "dim_rare" not in entry_tables
        for _rows, entry_tables in database.cardinality_feedback._entries.values())
    # reset=True re-baselined the database for whoever runs next in-session.
    assert database.metrics()["metrics"] == {}
