"""E10 — the physical execution engine vs. the naive set evaluator.

Claims checked (and reported as machine-readable ``BENCH_e10_*.json``):

* the physical :class:`~repro.exec.operators.HashJoin` beats the nested-loop
  join on the employees workload at ≥1k tuples per side, both in wall-clock time
  and in ``join_pairs_considered`` (the machine-independent work measure);
* end-to-end, ``Database.execute(..., executor="physical")`` returns exactly the
  evaluator's result set at a fraction of the join work;
* the plan cache makes re-planning of a hot query free (cache hits after the
  first execution);
* an index-aware scan answers a pushed-down key-equality predicate without
  reading the whole relation.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import Evaluator, NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.exec import HashJoin, NestedLoopJoin, PhysicalPlan, Scan
from repro.model.domains import FloatDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_definition, generate_employees

JOIN_SIDE = 1000

_PROJECTS = ("dbms", "compiler", "editor", "spreadsheet", "browser", "planner")


def _assignment_rows(count):
    return [
        {"emp_id": emp_id, "project": _PROJECTS[emp_id % len(_PROJECTS)],
         "budget": float(1000 + (emp_id * 37) % 9000)}
        for emp_id in range(1, count + 1)
    ]


@pytest.fixture(scope="module")
def join_database():
    """Employees plus a same-sized assignments table sharing ``emp_id``."""
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(JOIN_SIDE, seed=1001))
    assignments = database.create_table(
        "assignments",
        FlexibleScheme(3, 3, ["emp_id", "project", "budget"]),
        domains={"emp_id": IntDomain(), "project": StringDomain(max_length=32),
                 "budget": FloatDomain()},
        key=["emp_id"],
    )
    assignments.insert_many(_assignment_rows(JOIN_SIDE))
    return database


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_report_hash_join_beats_nested_loop(join_database):
    """The acceptance gate: hash join wins at ≥1k tuples per side."""
    hash_plan = PhysicalPlan(HashJoin(Scan("employees"), Scan("assignments")))
    nested_plan = PhysicalPlan(NestedLoopJoin(Scan("employees"), Scan("assignments")))

    hash_result, hash_seconds = _timed(lambda: hash_plan.execute(join_database))
    nested_result, nested_seconds = _timed(lambda: nested_plan.execute(join_database))

    rows = [
        {"join": "hash", "tuples": len(hash_result),
         "join_pairs": hash_result.stats.join_pairs_considered,
         "work": hash_result.stats.total_work,
         "seconds": round(hash_seconds, 4)},
        {"join": "nested-loop", "tuples": len(nested_result),
         "join_pairs": nested_result.stats.join_pairs_considered,
         "work": nested_result.stats.total_work,
         "seconds": round(nested_seconds, 4)},
    ]
    print_report(
        "E10: hash vs nested-loop join, employees ⋈ assignments ({}/side)".format(JOIN_SIDE),
        rows, json_name="e10_hash_vs_nested_loop",
    )
    assert hash_result.tuples == nested_result.tuples
    assert len(hash_result) == JOIN_SIDE
    assert hash_result.stats.join_pairs_considered < nested_result.stats.join_pairs_considered
    assert hash_seconds < nested_seconds


def test_report_naive_vs_physical_end_to_end(join_database):
    query = NaturalJoin(
        Selection(RelationRef("employees"), Comparison("salary", ">", 3000.0)),
        RelationRef("assignments"),
    )
    naive, naive_seconds = _timed(
        lambda: join_database.execute(query, optimize=False, executor="naive"))
    physical, physical_seconds = _timed(
        lambda: join_database.execute(query, optimize=False, executor="physical"))

    rows = [
        {"executor": "naive", "tuples": len(naive),
         "join_pairs": naive.stats.join_pairs_considered,
         "work": naive.stats.total_work, "seconds": round(naive_seconds, 4)},
        {"executor": "physical", "tuples": len(physical),
         "join_pairs": physical.stats.join_pairs_considered,
         "work": physical.stats.total_work, "seconds": round(physical_seconds, 4)},
    ]
    print_report("E10: σ(salary>3000) ⋈ assignments, naive evaluator vs physical engine",
                 rows, json_name="e10_naive_vs_physical")
    assert physical.tuples == naive.tuples
    assert physical.stats.join_pairs_considered < naive.stats.join_pairs_considered
    assert physical.stats.total_work < naive.stats.total_work


def test_report_plan_cache_and_index_scan(join_database):
    executor = join_database.physical_executor
    executor.cache.clear()
    executor.cache.hits = executor.cache.misses = 0

    point_query = Selection(RelationRef("employees"), Comparison("emp_id", "=", 123))
    first = join_database.execute(point_query, optimize=False)
    # The first run's default-constant estimate is off by ≥2×, so the feedback
    # store records a correction and the second run re-plans against it; from
    # the third on the corrected plan is the steady state and the cache is hot.
    join_database.execute(point_query, optimize=False)
    second = join_database.execute(point_query, optimize=False)

    rows = [{
        "query": "σ(emp_id = 123) over {} employees".format(JOIN_SIDE),
        "tuples": len(second),
        "tuples_scanned (indexed)": second.stats.tuples_scanned,
        "cache hits": executor.cache.hits,
        "cache misses": executor.cache.misses,
    }]
    print_report("E10: plan cache + index-aware scan", rows, json_name="e10_plan_cache")
    assert first.tuples == second.tuples and len(second) == 1
    # The key index answers the point query without scanning the other 999 tuples.
    assert second.stats.tuples_scanned == 1
    assert executor.cache.hits >= 1 and executor.cache.misses == 2


@pytest.mark.benchmark(group="e10-join")
def test_bench_join_physical(benchmark, join_database):
    query = NaturalJoin(RelationRef("employees"), RelationRef("assignments"))

    def run():
        return len(join_database.execute(query, optimize=False, executor="physical"))

    benchmark(run)


@pytest.mark.benchmark(group="e10-join")
def test_bench_join_naive(benchmark, join_database):
    query = NaturalJoin(RelationRef("employees"), RelationRef("assignments"))
    evaluator = Evaluator(join_database)

    def run():
        return len(evaluator.evaluate(query))

    benchmark(run)
