"""E3 — Theorem 4.1: the axiom system Å is sound, complete and non-redundant.

Reproduced shape:

* **soundness** — every dependency derivable from random AD sets holds in random
  relations satisfying the hypotheses;
* **completeness** — syntactic derivability coincides with semantic implication
  decided by the appendix's two-tuple counterexample construction;
* **non-redundancy** — for every rule of Å there is a derivable dependency that the
  system without that rule cannot derive.

Timed: closure-based implication vs. proof-trace construction vs. forward-chaining
saturation (the ablation of DESIGN.md §6).
"""

import itertools
import random

import pytest

from reporting import print_report
from repro.core.axioms import AXIOM_SYSTEM_AD, chain_derives, derive
from repro.core.closure import attribute_closure, implies
from repro.core.dependencies import AttributeDependency, ad
from repro.core.implication import random_satisfying_relation, semantically_implies
from repro.model.attributes import AttributeSet

UNIVERSE = ["A", "B", "C", "D"]


def random_ad_set(rng, count=3):
    deps = []
    for _ in range(count):
        lhs = rng.sample(UNIVERSE, rng.randint(1, 2))
        rhs = rng.sample(UNIVERSE, rng.randint(1, 3))
        deps.append(ad(lhs, rhs))
    return deps


def all_candidates(max_lhs=2, max_rhs=2):
    for lhs_size in range(1, max_lhs + 1):
        for rhs_size in range(1, max_rhs + 1):
            for lhs in itertools.combinations(UNIVERSE, lhs_size):
                for rhs in itertools.combinations(UNIVERSE, rhs_size):
                    yield ad(lhs, rhs)


def test_report_soundness_and_completeness():
    rng = random.Random(42)
    checked = agreements = sound_holds = 0
    for trial in range(20):
        deps = random_ad_set(rng)
        for candidate in all_candidates():
            derivable = implies(deps, candidate, combined=False)
            semantic = semantically_implies(deps, candidate)
            checked += 1
            # completeness + soundness of the closure test: syntactic ⇔ semantic
            # (for pure AD sets the Å and Å* closures coincide)
            agreements += int(derivable == semantic)
            if derivable:
                relation = random_satisfying_relation(deps, universe=UNIVERSE, size=14,
                                                      rng=random.Random(trial))
                sound_holds += int(candidate.holds_in(relation))
    rows = [{
        "candidates checked": checked,
        "syntactic == semantic": agreements,
        "derivable & holds in random model": sound_holds,
    }]
    print_report("E3: soundness / completeness of Å over random AD sets", rows)
    assert agreements == checked
    assert sound_holds > 0


def test_report_non_redundancy():
    witnesses = {
        "A1 projectivity": ([ad("A", ["B", "C"])], ad("A", "B")),
        "A2 additivity": ([ad("A", "B"), ad("A", "C")], ad("A", ["B", "C"])),
        "A3 reflexivity": ([], ad(["A", "B"], "A")),
        "A4 left augmentation": ([ad("A", "B")], ad(["A", "C"], "B")),
    }
    rows = []
    for rule, (deps, target) in witnesses.items():
        with_rule = chain_derives(deps, target, system=AXIOM_SYSTEM_AD, universe=["A", "B", "C"])
        without_rule = chain_derives(deps, target, system=AXIOM_SYSTEM_AD.without(rule),
                                     universe=["A", "B", "C"])
        rows.append({"dropped rule": rule, "derivable with full Å": with_rule,
                     "derivable without the rule": without_rule})
    print_report("E3: non-redundancy of Å (witness per rule)", rows)
    assert all(row["derivable with full Å"] for row in rows)
    assert not any(row["derivable without the rule"] for row in rows)


@pytest.mark.benchmark(group="e3-implication")
def test_bench_closure_implication(benchmark):
    rng = random.Random(7)
    deps = random_ad_set(rng, count=4)
    candidates = list(all_candidates())

    def run():
        return sum(implies(deps, candidate, combined=False) for candidate in candidates)

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="e3-implication")
def test_bench_semantic_implication_via_counterexample(benchmark):
    rng = random.Random(7)
    deps = random_ad_set(rng, count=4)
    candidates = list(all_candidates())

    def run():
        return sum(semantically_implies(deps, candidate) for candidate in candidates)

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="e3-implication")
def test_bench_proof_trace_construction(benchmark):
    rng = random.Random(7)
    deps = random_ad_set(rng, count=4)
    candidates = [c for c in all_candidates() if implies(deps, c)]

    def run():
        return sum(1 for candidate in candidates if derive(deps, candidate) is not None)

    assert benchmark(run) == len(candidates)


@pytest.mark.benchmark(group="e3-implication")
def test_bench_forward_chaining_saturation(benchmark):
    deps = [ad("A", "B"), ad(["A", "C"], "D")]

    def run():
        from repro.core.axioms import forward_chain

        return len(forward_chain(deps, universe=UNIVERSE, system=AXIOM_SYSTEM_AD))

    assert benchmark(run) > len(deps)


@pytest.mark.benchmark(group="e3-closure")
def test_bench_attribute_closure(benchmark):
    rng = random.Random(11)
    deps = random_ad_set(rng, count=6)

    def run():
        return len(attribute_closure(["A", "B"], deps, combined=False))

    assert benchmark(run) >= 2
