"""E14 — whole-plan vectorization vs. the PR 4 mixed-mode path.

The paper's restoration shape that PR 3/4 left on the slow path: an **outer
union** over two heterogeneous variant selections of ``employees`` (30,000
variant records) feeds a **4-way multiway join** against three partial
fragments (``badges``/``offices``/``grades``), the restored master is joined to
``reviews`` (30,000 rows) and tagged by a **rename and two extensions**.  Under
the PR 4 planner every one of those operators ran row-mode inside the plan
(``mode == "mixed"``) and the batch joins materialized merged ``FlexTuple``s
eagerly; the whole-plan engine runs it ``mode == "batch"`` end to end with lazy
merged batches.  Claims checked (and reported as ``BENCH_e14_*.json``):

* the full-batch plan reports ``plan.mode == "batch"`` while the
  ``batch_forms="core"`` planner — which reproduces the PR 4 lowering: row-mode
  unions/difference/extension/rename/products/multiway joins and eager join
  output — reports ``"mixed"`` for the same query;
* the full-batch path is **≥ 2× faster wall-clock** than the mixed-mode path
  (the acceptance gate);
* both paths return identical tuple sets and identical
  :class:`~repro.algebra.evaluator.ExecutionStats` counter totals —
  whole-plan vectorization changes bookkeeping and materialization timing,
  never semantics;
* the planner's adaptive batch sizing is visible: the plan carries a batch
  size derived from the statistics' tuple-width estimate.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import (
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    RelationRef,
    Rename,
    Selection,
)
from repro.algebra.expressions import Extension
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.exec import PhysicalExecutor, PhysicalPlanner
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_scheme, generate_employees

EMPLOYEES = 30_000
FRAGMENT_STEPS = (("badges", "badge", 2), ("offices", "office", 3),
                  ("grades", "grade", 5))
#: best-of-5 damps CI-runner noise; the gated number is a ratio of two
#: best-of measurements, so a single slow run cannot flip it
TIMING_RUNS = 5


@pytest.fixture(scope="module")
def restoration_database():
    """30k variant employees + three partial fragments + a reviews relation."""
    database = Database(enforce_constraints=False)
    employees = database.create_table("employees", employee_scheme(),
                                      key=["emp_id"], indexes=[["jobtype"]])
    employees.insert_many(generate_employees(EMPLOYEES, seed=7))
    for name, attribute, step in FRAGMENT_STEPS:
        table = database.create_table(
            name, FlexibleScheme.relational(["emp_id", attribute]),
            key=["emp_id"])
        table.insert_many({"emp_id": i, attribute: "{}-{}".format(attribute, i % 17)}
                          for i in range(1, EMPLOYEES + 1, step))
    reviews = database.create_table(
        "reviews", FlexibleScheme.relational(["emp_id", "score"]),
        key=["emp_id"])
    reviews.insert_many({"emp_id": i, "score": i % 5}
                        for i in range(1, EMPLOYEES + 1))
    database.analyze()
    return database


def restoration_query():
    """Outer union → 4-way multiway join → join → rename → two tag extensions."""
    master = OuterUnion(
        Selection(RelationRef("employees"),
                  Comparison("jobtype", "=", "secretary")),
        Selection(RelationRef("employees"),
                  Comparison("jobtype", "=", "salesman")))
    restored = MultiwayJoin(
        [master, RelationRef("badges"), RelationRef("offices"),
         RelationRef("grades")], on=["emp_id"])
    joined = NaturalJoin(restored, RelationRef("reviews"), on=["emp_id"])
    return Extension(
        Extension(Rename(joined, {"score": "rating"}), "restored", True),
        "source_pr", 5)


def _best_of(callable_, runs=TIMING_RUNS):
    result, best = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_report_full_batch_beats_mixed_by_2x(restoration_database):
    """The acceptance gate: ≥2× wall-clock over the PR 4 mixed-mode lowering."""
    database = restoration_database
    query = restoration_query()

    full = PhysicalExecutor(database, planner=PhysicalPlanner(source=database))
    mixed = PhysicalExecutor(database, planner=PhysicalPlanner(
        source=database, batch_forms="core"))

    full_plan = full.plan(query)
    mixed_plan = mixed.plan(query)
    # Whole-plan vectorization: every operator including unions, the 4-way
    # multiway join, rename and the extensions runs batch; the PR 4 lowering
    # leaves them row-mode inside the same plan.
    assert full_plan.mode == "batch", full_plan.explain()
    assert mixed_plan.mode == "mixed", mixed_plan.explain()
    assert full_plan.batch_size is not None  # adaptive sizing decided

    full_result, full_seconds = _best_of(lambda: full.execute(query))
    mixed_result, mixed_seconds = _best_of(lambda: mixed.execute(query))
    speedup = mixed_seconds / full_seconds

    rows = [
        {"engine": "mixed (PR 4 lowering, batch_forms=core)",
         "mode": mixed_plan.mode, "tuples": len(mixed_result),
         "work": mixed_result.stats.total_work,
         "seconds": round(mixed_seconds, 4), "speedup": "1.0x"},
        {"engine": "whole-plan batch (lazy merged output)",
         "mode": full_plan.mode, "tuples": len(full_result),
         "work": full_result.stats.total_work,
         "seconds": round(full_seconds, 4),
         "speedup": "{:.1f}x".format(speedup)},
    ]
    print_report(
        "E14: ε(ε(ρ((∪ ⊎ σ-variants) ⋈* 3 fragments ⋈ reviews))) on {}k employees"
        " — mixed vs whole-plan batch".format(EMPLOYEES // 1000),
        rows, json_name="e14_full_batch",
        database=database, operators=full_result.operator_report(),
    )
    assert full_result.tuples == mixed_result.tuples
    # Identical counter semantics: vectorization only amortizes the bookkeeping.
    assert full_result.stats.as_dict() == mixed_result.stats.as_dict()
    # The ISSUE acceptance criterion.
    assert speedup >= 2.0, "full-batch speedup {:.2f}x below the 2x gate".format(speedup)


def test_report_adaptive_batch_sizing(restoration_database):
    """The statistics-driven batch-size decision, per relation width."""
    database = restoration_database
    narrow = database.plan(Selection(RelationRef("reviews"),
                                     Comparison("score", "=", 1)), optimize=False)
    wide = database.plan(Selection(RelationRef("employees"),
                                   Comparison("salary", ">", 0.0)), optimize=False)
    rows = [
        {"relation": "reviews (width 2)", "batch_size": narrow.batch_size},
        {"relation": "employees (variant records, width ~6)",
         "batch_size": wide.batch_size},
    ]
    print_report("E14: adaptive batch sizes (8192 target cells / est. width)",
                 rows, json_name="e14_adaptive_batch")
    assert narrow.batch_size > wide.batch_size


@pytest.mark.benchmark(group="e14-full-batch")
def test_bench_restoration_full_batch(benchmark, restoration_database):
    executor = PhysicalExecutor(restoration_database,
                                planner=PhysicalPlanner(source=restoration_database))
    query = restoration_query()
    benchmark(lambda: len(executor.execute(query)))


@pytest.mark.benchmark(group="e14-full-batch")
def test_bench_restoration_mixed(benchmark, restoration_database):
    executor = PhysicalExecutor(
        restoration_database,
        planner=PhysicalPlanner(source=restoration_database, batch_forms="core"))
    query = restoration_query()
    benchmark(lambda: len(executor.execute(query)))
