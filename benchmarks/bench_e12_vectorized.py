"""E12 — vectorized batch execution vs. row-at-a-time execution.

The ISSUE's 100k-row scan→filter→hash-join workload: ``events`` (100,000 rows,
variant records — 1% carry ``clearance`` instead of ``payload``) filtered by a
two-conjunct predicate and joined to ``sessions`` (10,000 rows) on ``event_id``.
Both execution modes run the *same plan shape* (scan with pushed-down predicate
feeding a hash join); only the operator implementations differ, so the measured
gap is pure interpretation overhead.  Claims checked (and reported as
machine-readable ``BENCH_e12_*.json``):

* the batch path is **≥ 3× faster wall-clock** than the row path (the
  acceptance gate; typically ~5× here) — compiled predicates, column arrays
  and bulk counter updates amortize the per-tuple Python overhead;
* both modes return identical tuple sets and identical
  :class:`~repro.algebra.evaluator.ExecutionStats` counters — vectorization
  changes bookkeeping, not semantics (the differential parity suite
  additionally checks both against the naive evaluator);
* sampling-based ANALYZE (``sample_size=``) is faster than full ANALYZE on the
  100k-row table while keeping the planning-relevant numbers (cardinality,
  variant-tag fractions) accurate.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import And, Comparison
from repro.engine import Database
from repro.workloads.events import events_scheme, generate_events, sessions_scheme

BIG_SIDE = 100_000
SMALL_SIDE = 10_000
TIMING_RUNS = 3


@pytest.fixture(scope="module")
def vectorized_database():
    """100k events + 10k sessions, constraint checks off (pure engine timing)."""
    database = Database(enforce_constraints=False)
    events = database.create_table("events", events_scheme(), key=["event_id"])
    events.insert_many(generate_events(BIG_SIDE, rare_every=100))
    sessions = database.create_table("sessions", sessions_scheme(), key=["event_id"])
    sessions.insert_many({"event_id": event_id, "user": "u{}".format(event_id % 9)}
                         for event_id in range(1, SMALL_SIDE + 1))
    return database


def scan_filter_join_query():
    return NaturalJoin(
        Selection(RelationRef("events"),
                  And(Comparison("payload", "<=", 2),
                      Comparison("kind", "!=", "view"))),
        RelationRef("sessions"), on=["event_id"],
    )


def _best_of(callable_, runs=TIMING_RUNS):
    result, best = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_report_batch_beats_row_by_3x(vectorized_database):
    """The acceptance gate: ≥3× wall-clock speedup of batch over row execution."""
    database = vectorized_database
    query = scan_filter_join_query()

    row_plan = database.plan(query, optimize=False, mode="row")
    batch_plan = database.plan(query, optimize=False, mode="batch")
    assert row_plan.mode == "row" and batch_plan.mode == "batch"
    # Same plan shape: the comparison isolates the execution mode.
    assert row_plan.root.label().startswith("hash-join")
    assert batch_plan.root.label().startswith("hash-join")

    row, row_seconds = _best_of(lambda: database.execute(query, mode="row"))
    batch, batch_seconds = _best_of(lambda: database.execute(query, mode="batch"))
    speedup = row_seconds / batch_seconds

    rows = [
        {"engine": "row (tuple-at-a-time)", "tuples": len(row),
         "work": row.stats.total_work, "seconds": round(row_seconds, 4),
         "speedup": "1.0x"},
        {"engine": "batch (vectorized)", "tuples": len(batch),
         "work": batch.stats.total_work, "seconds": round(batch_seconds, 4),
         "speedup": "{:.1f}x".format(speedup)},
    ]
    print_report(
        "E12: σ(payload≤2 ∧ kind≠view)(events {b}) ⋈ sessions {s} — row vs batch".format(
            b=BIG_SIDE, s=SMALL_SIDE),
        rows, json_name="e12_vectorized_exec",
        database=database, operators=batch.operator_report(),
    )
    assert batch.tuples == row.tuples
    # Identical counter semantics: vectorization only amortizes the bookkeeping.
    assert batch.stats.as_dict() == row.stats.as_dict()
    # The ISSUE acceptance criterion.
    assert speedup >= 3.0, "batch speedup {:.2f}x below the 3x gate".format(speedup)


def test_report_sampled_analyze_cheap_and_accurate(vectorized_database):
    """Sampling ANALYZE: faster on 100k rows, accurate where the planner looks."""
    database = vectorized_database
    _, full_seconds = _best_of(lambda: database.analyze("events"), runs=1)
    full = database.stats("events")
    full_audit = full.guard_selectivity(["clearance"])

    _, sampled_seconds = _best_of(
        lambda: database.analyze("events", sample_size=5_000), runs=1)
    sampled = database.stats("events")
    sampled_audit = sampled.guard_selectivity(["clearance"])

    rows = [
        {"analyze": "full scan", "rows read": BIG_SIDE,
         "row_count": full.row_count, "audit tag": round(full_audit, 4),
         "ndv(event_id)": full.ndv("event_id"),
         "seconds": round(full_seconds, 4)},
        {"analyze": "reservoir sample (5k)", "rows read": sampled.sample_rows,
         "row_count": sampled.row_count, "audit tag": round(sampled_audit, 4),
         "ndv(event_id)": sampled.ndv("event_id"),
         "seconds": round(sampled_seconds, 4)},
    ]
    print_report("E12: full vs sampling-based ANALYZE on events (100k rows)",
                 rows, json_name="e12_sampled_analyze")
    assert sampled.sampled and sampled.row_count == BIG_SIDE
    assert abs(sampled_audit - full_audit) < 0.01
    assert sampled_seconds < full_seconds
    # restore exact statistics for any test running after this one
    database.analyze("events")


@pytest.mark.benchmark(group="e12-vectorized")
def test_bench_scan_filter_join_batch(benchmark, vectorized_database):
    query = scan_filter_join_query()
    benchmark(lambda: len(vectorized_database.execute(query, mode="batch")))


@pytest.mark.benchmark(group="e12-vectorized")
def test_bench_scan_filter_join_row(benchmark, vectorized_database):
    query = scan_filter_join_query()
    benchmark(lambda: len(vectorized_database.execute(query, mode="row")))
