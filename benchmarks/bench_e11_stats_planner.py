"""E11 — statistics-informed planning vs. default-selectivity planning.

The skewed-variant workload of the ISSUE: an ``events`` relation where one
variant tag (``kind = 'audit'``, carrying the ``clearance`` attribute) occurs in
1% of the tuples, joined to a ``sessions`` relation 10× smaller.  Claims checked
(and reported as machine-readable ``BENCH_e11_*.json``):

* with fresh statistics (``Database.analyze()``), the physical planner knows the
  tag selection leaves ~40 rows and flips the join to an
  :class:`~repro.exec.operators.IndexLookupJoin` — the default-selectivity plan
  hash-joins after scanning the whole sessions relation.  The stats-informed
  plan examines **≥ 5× fewer tuples + join pairs** (the acceptance gate);
* estimation accuracy: estimated rows per plan node track the true cardinalities
  on the skewed workload (tag selection within 1 row), where the default
  constants are off by >10×;
* statistics persist through serialization, so a dumped-and-reloaded database
  plans identically without re-running ANALYZE.
"""

import time

import pytest

from reporting import print_report
from repro.algebra import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.engine import dumps_database, loads_database
from repro.exec import HashJoin, IndexLookupJoin
from repro.workloads.events import skewed_join_database

BIG_SIDE = 4000
SMALL_SIDE = 400
RARE_EVERY = 100  # kind='audit' on every 100th event: a 1% variant tag


@pytest.fixture(scope="module")
def skewed_database():
    return skewed_join_database(big=BIG_SIDE, small=SMALL_SIDE, rare_every=RARE_EVERY)


def skewed_join_query():
    return NaturalJoin(
        Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
        RelationRef("sessions"), on=["event_id"],
    )


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _examined(stats):
    return stats.tuples_scanned + stats.join_pairs_considered


def test_report_stats_informed_plan_beats_default(skewed_database):
    """The acceptance gate: ≥5× fewer examined tuples + join pairs with statistics."""
    database = skewed_database
    database.statistics.invalidate()
    query = skewed_join_query()

    default_plan = database.plan(query, optimize=False)
    default, default_seconds = _timed(lambda: database.execute(query, optimize=False))

    analyze_start = time.perf_counter()
    database.analyze()
    analyze_seconds = time.perf_counter() - analyze_start

    informed_plan = database.plan(query, optimize=False)
    informed, informed_seconds = _timed(lambda: database.execute(query, optimize=False))

    rows = [
        {"planner": "default-selectivity", "join": type(default_plan.root).__name__,
         "tuples": len(default), "examined": _examined(default.stats),
         "join_pairs": default.stats.join_pairs_considered,
         "work": default.stats.total_work, "seconds": round(default_seconds, 4)},
        {"planner": "stats-informed", "join": type(informed_plan.root).__name__,
         "tuples": len(informed), "examined": _examined(informed.stats),
         "join_pairs": informed.stats.join_pairs_considered,
         "work": informed.stats.total_work, "seconds": round(informed_seconds, 4)},
        {"planner": "(ANALYZE cost)", "join": "-", "tuples": "-", "examined": "-",
         "join_pairs": "-", "work": "-", "seconds": round(analyze_seconds, 4)},
    ]
    print_report(
        "E11: σ(kind='audit' @1%)(events {b}) ⋈ sessions {s} — default vs stats plan".format(
            b=BIG_SIDE, s=SMALL_SIDE),
        rows, json_name="e11_stats_vs_default_plan",
    )
    assert informed.tuples == default.tuples
    assert isinstance(default_plan.root, HashJoin)
    assert isinstance(informed_plan.root, IndexLookupJoin)
    # The ISSUE acceptance criterion.
    assert _examined(default.stats) >= 5 * _examined(informed.stats)


def test_report_estimation_accuracy(skewed_database):
    """Estimated rows per node track the truth; default constants are far off."""
    database = skewed_database
    database.analyze()
    selection = Selection(RelationRef("events"), Comparison("kind", "=", "audit"))
    true_rows = len(database.execute(selection, optimize=False))

    informed_estimate = database.plan(selection, optimize=False).root.estimated_rows
    database.statistics.invalidate()
    default_estimate = database.plan(selection, optimize=False).root.estimated_rows
    database.analyze()

    rows = [
        {"estimator": "true cardinality", "rows": true_rows, "error": 0.0},
        {"estimator": "stats-informed", "rows": round(informed_estimate, 1),
         "error": round(abs(informed_estimate - true_rows), 1)},
        {"estimator": "default constants", "rows": round(default_estimate, 1),
         "error": round(abs(default_estimate - true_rows), 1)},
    ]
    print_report("E11: estimated rows for the 1% tag selection", rows,
                  json_name="e11_estimation_accuracy")
    assert abs(informed_estimate - true_rows) <= 1.0
    assert abs(default_estimate - true_rows) >= 10 * max(1.0, abs(informed_estimate - true_rows))


def test_report_statistics_survive_serialization(skewed_database):
    """A dumped-and-reloaded database plans from statistics without re-ANALYZE."""
    database = skewed_database
    database.analyze()
    dump_start = time.perf_counter()
    document = dumps_database(database)
    loaded = loads_database(document)
    reload_seconds = time.perf_counter() - dump_start

    query = skewed_join_query()
    original_root = type(database.plan(query, optimize=False).root).__name__
    loaded_root = type(loaded.plan(query, optimize=False).root).__name__
    rows = [{
        "fresh stats after load": loaded.statistics.is_fresh("events"),
        "plan (original)": original_root,
        "plan (reloaded)": loaded_root,
        "document KiB": round(len(document) / 1024.0, 1),
        "dump+load seconds": round(reload_seconds, 4),
    }]
    print_report("E11: statistics persistence (skip re-ANALYZE after load)", rows,
                  json_name="e11_stats_persistence")
    assert loaded.statistics.is_fresh("events") and loaded.statistics.is_fresh("sessions")
    # The vectorized default plans a BatchIndexLookupJoin; what matters here is
    # that the reloaded database picks the same index-lookup plan.
    assert loaded_root == original_root
    assert isinstance(loaded.plan(query, optimize=False).root, IndexLookupJoin)


@pytest.mark.benchmark(group="e11-stats")
def test_bench_join_stats_informed(benchmark, skewed_database):
    skewed_database.analyze()
    query = skewed_join_query()

    def run():
        return len(skewed_database.execute(query, optimize=False))

    benchmark(run)


@pytest.mark.benchmark(group="e11-stats")
def test_bench_join_default_selectivity(benchmark, skewed_database):
    skewed_database.statistics.invalidate()
    query = skewed_join_query()

    def run():
        return len(skewed_database.execute(query, optimize=False))

    benchmark(run)


@pytest.mark.benchmark(group="e11-analyze")
def test_bench_analyze_throughput(benchmark, skewed_database):
    benchmark(lambda: skewed_database.analyze())
