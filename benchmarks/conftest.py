"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every experiment Ei corresponds to a claim of the paper (see DESIGN.md §4 and
EXPERIMENTS.md).  The benchmark modules both *time* the relevant operations
(pytest-benchmark) and *verify the qualitative shape* of the claim with asserts;
summary numbers are printed so they can be copied into EXPERIMENTS.md.
"""

import pytest

from repro.engine import Database, Table
from repro.workloads.employees import employee_definition, generate_employees


@pytest.fixture(scope="module")
def employee_database_1k():
    """A database with 1000 valid employees (shared per benchmark module)."""
    database = Database()
    definition = employee_definition()
    table = database.create_table(
        "employees", definition.scheme, domains=definition.domains,
        key=definition.key, dependencies=definition.dependencies,
    )
    table.insert_many(generate_employees(1000, seed=101))
    return database


@pytest.fixture(scope="module")
def employee_tuples_1k():
    """1000 valid employee tuples (dicts) for ingestion benchmarks."""
    return generate_employees(1000, seed=103)


@pytest.fixture(scope="module")
def mixed_employee_tuples_1k():
    """1000 employee tuples with a 15% dependency-violation rate."""
    return generate_employees(1000, invalid_fraction=0.15, seed=107)
