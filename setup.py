"""Setuptools entry point.

The pyproject.toml carries the project metadata; this file exists so that editable
installs (``pip install -e .``) work on environments without the ``wheel`` package,
where pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Flexible relations with attribute dependencies — reproduction of "
        "Kalus & Dadam, ICDE 1995"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
