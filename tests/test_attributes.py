"""Tests for the attribute universe and attribute sets."""

import pytest

from repro.errors import ReproError
from repro.model.attributes import Attribute, AttributeSet, attrset


class TestAttribute:
    def test_equality_by_name(self):
        assert Attribute("salary") == Attribute("salary")

    def test_equality_with_string(self):
        assert Attribute("salary") == "salary"

    def test_inequality(self):
        assert Attribute("salary") != Attribute("jobtype")

    def test_hash_by_name(self):
        assert hash(Attribute("salary")) == hash(Attribute("salary"))
        assert len({Attribute("a"), Attribute("a"), Attribute("b")}) == 2

    def test_sorts_alphabetically(self):
        assert sorted([Attribute("b"), Attribute("a")]) == [Attribute("a"), Attribute("b")]

    def test_rejects_empty_name(self):
        with pytest.raises(ReproError):
            Attribute("")

    def test_rejects_non_string(self):
        with pytest.raises(ReproError):
            Attribute(42)

    def test_str_and_repr(self):
        assert str(Attribute("salary")) == "salary"
        assert "salary" in repr(Attribute("salary"))


class TestAttributeSetConstruction:
    def test_from_none_is_empty(self):
        assert len(AttributeSet()) == 0
        assert not AttributeSet()

    def test_from_single_string(self):
        assert list(AttributeSet("salary")) == [Attribute("salary")]

    def test_from_single_attribute(self):
        assert Attribute("a") in AttributeSet(Attribute("a"))

    def test_from_iterable_of_strings(self):
        assert len(AttributeSet(["a", "b", "c"])) == 3

    def test_duplicates_collapse(self):
        assert len(AttributeSet(["a", "a", "b"])) == 2

    def test_attrset_is_idempotent(self):
        original = attrset(["a", "b"])
        assert attrset(original) is original

    def test_rejects_garbage_members(self):
        with pytest.raises(ReproError):
            AttributeSet([1, 2])


class TestAttributeSetAlgebra:
    def test_union(self):
        assert attrset("ab") != attrset(["a", "b"])  # "ab" is one attribute name
        assert attrset(["a"]) | attrset(["b"]) == attrset(["a", "b"])

    def test_union_accepts_strings(self):
        assert attrset(["a"]).union("b", ["c"]) == attrset(["a", "b", "c"])

    def test_intersection(self):
        assert attrset(["a", "b"]) & attrset(["b", "c"]) == attrset(["b"])

    def test_difference(self):
        assert attrset(["a", "b"]) - attrset(["b"]) == attrset(["a"])

    def test_symmetric_difference(self):
        assert attrset(["a", "b"]) ^ attrset(["b", "c"]) == attrset(["a", "c"])

    def test_subset_and_superset(self):
        assert attrset(["a"]).issubset(["a", "b"])
        assert attrset(["a", "b"]).issuperset(["a"])
        assert attrset(["a"]) <= attrset(["a"])
        assert not attrset(["a"]) < attrset(["a"])
        assert attrset(["a", "b"]) > attrset(["a"])

    def test_disjointness(self):
        assert attrset(["a"]).isdisjoint(["b"])
        assert not attrset(["a", "b"]).isdisjoint(["b"])

    def test_containment_of_string(self):
        assert "a" in attrset(["a", "b"])
        assert "z" not in attrset(["a", "b"])
        assert 42 not in attrset(["a"])

    def test_equality_with_plain_set(self):
        assert attrset(["a", "b"]) == {"a", "b"}

    def test_hashable(self):
        assert len({attrset(["a", "b"]), attrset(["b", "a"])}) == 1

    def test_iteration_is_sorted(self):
        assert [a.name for a in attrset(["c", "a", "b"])] == ["a", "b", "c"]

    def test_names(self):
        assert attrset(["b", "a"]).names == ("a", "b")


class TestAttributeSetDisplay:
    def test_empty_set_renders_as_empty_symbol(self):
        assert str(AttributeSet()) == "∅"

    def test_single_letter_attributes_juxtaposed(self):
        assert str(attrset(["B", "A"])) == "AB"

    def test_long_names_use_braces(self):
        rendered = str(attrset(["salary", "jobtype"]))
        assert rendered.startswith("{") and "salary" in rendered
