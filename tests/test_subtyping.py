"""Tests for AD-derived subtyping (Section 3.2, Example 3)."""

import pytest

from repro.baselines.record_subtyping import SubtypeLattice, accepted_supertypes, common_supertypes
from repro.core.dependencies import ead
from repro.core.subtyping import candidate_supertypes, derive_subtype_family, lost_connection
from repro.errors import DependencyError
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.types import RecordType, is_record_subtype
from repro.workloads.employees import employee_dependency, employee_domains, employee_scheme


@pytest.fixture
def employee_family():
    return derive_subtype_family(employee_scheme().attributes, employee_dependency(),
                                 employee_domains(), supertype_name="employee_type")


class TestFamilyDerivation:
    def test_supertype_has_non_variant_attributes(self, employee_family):
        assert employee_family.supertype.attributes == attrset(
            ["emp_id", "name", "salary", "jobtype"]
        )

    def test_supertype_keeps_unrestricted_jobtype_domain(self, employee_family):
        domain = employee_family.supertype.domain_of("jobtype")
        assert domain.contains("secretary") and domain.contains("salesman")

    def test_one_subtype_per_variant(self, employee_family):
        assert employee_family.subtype_names() == ["salesman", "secretary", "software engineer"]

    def test_subtype_attributes_follow_example3(self, employee_family):
        secretary = employee_family.subtype("secretary")
        assert secretary.attributes == attrset(
            ["emp_id", "name", "salary", "jobtype", "typing_speed", "foreign_languages"]
        )
        salesman = employee_family.subtype("salesman")
        assert "sales_commission" in salesman.attributes and "products" in salesman.attributes

    def test_subtype_restricts_determinant_domain(self, employee_family):
        secretary = employee_family.subtype("secretary")
        domain = secretary.domain_of("jobtype")
        assert domain.contains("secretary") and not domain.contains("salesman")

    def test_subtypes_are_record_subtypes_of_the_supertype(self, employee_family):
        for name in employee_family.subtype_names():
            assert is_record_subtype(employee_family.subtype(name), employee_family.supertype)

    def test_unknown_subtype_rejected(self, employee_family):
        with pytest.raises(Exception):
            employee_family.subtype("pilot")

    def test_determinant_must_be_in_scheme(self):
        dependency = ead(["missing"], ["a"], [({"missing": 1}, ["a"])])
        with pytest.raises(DependencyError):
            derive_subtype_family(["a", "b"], dependency)

    def test_scheme_object_accepted(self):
        family = derive_subtype_family(employee_scheme(), employee_dependency())
        assert family.supertype.attributes == attrset(["emp_id", "name", "salary", "jobtype"])

    def test_variant_names_default_when_missing(self):
        dependency = ead(["k"], ["a", "b"], [({"k": 1}, ["a"]), ({"k": 2}, ["b"])])
        family = derive_subtype_family(["k", "x", "a", "b"], dependency)
        assert family.subtype_names() == ["variant-1", "variant-2"]


class TestStrongerSubtypingNotion:
    """The comparison of Section 3.2: ADs vs the traditional record-subtyping rule."""

    def test_full_supertype_is_valid_under_both(self, employee_family):
        assert employee_family.classify_candidate(employee_family.supertype) == "valid"

    def test_dropping_jobtype_is_lost_connection(self, employee_family):
        candidate = RecordType("no_jobtype", {"salary": FloatDomain()})
        assert employee_family.record_rule_accepts(candidate)
        assert not employee_family.ad_rule_accepts(candidate)
        assert employee_family.classify_candidate(candidate) == "lost-connection"
        assert lost_connection(candidate, employee_family)

    def test_keeping_jobtype_is_valid(self, employee_family):
        candidate = RecordType("with_jobtype", {
            "salary": FloatDomain(),
            "jobtype": EnumDomain(["secretary", "software engineer", "salesman"]),
        })
        assert employee_family.classify_candidate(candidate) == "valid"
        assert not lost_connection(candidate, employee_family)

    def test_incompatible_candidate_rejected_by_both(self, employee_family):
        candidate = RecordType("wrong", {"salary": FloatDomain(), "zip_code": IntDomain()})
        assert employee_family.classify_candidate(candidate) == "rejected"

    def test_candidate_supertypes_enumeration(self, employee_family):
        candidates = candidate_supertypes(employee_family)
        # every non-empty subset of the 4 supertype fields
        assert len(candidates) == 15
        classified = {c.name: employee_family.classify_candidate(c) for c in candidates}
        lost = [name for name, kind in classified.items() if kind == "lost-connection"]
        valid = [name for name, kind in classified.items() if kind == "valid"]
        assert len(valid) == 8          # those containing jobtype
        assert len(lost) == 7           # those without jobtype
        assert not [name for name, kind in classified.items() if kind == "rejected"]

    def test_record_rule_accepts_strictly_more(self, employee_family):
        candidates = candidate_supertypes(employee_family)
        subtypes = [employee_family.subtype(name) for name in employee_family.subtype_names()]
        traditional = accepted_supertypes(candidates, subtypes)
        ad_based = [c for c in candidates if employee_family.ad_rule_accepts(c)]
        assert set(c.name for c in ad_based) < set(c.name for c in traditional)


class TestBaselineLattice:
    def test_lattice_edges(self, employee_family):
        types = [employee_family.supertype] + [
            employee_family.subtype(name) for name in employee_family.subtype_names()
        ]
        lattice = SubtypeLattice(types)
        for name in employee_family.subtype_names():
            assert lattice.is_subtype(name, "employee_type")
            assert not lattice.is_subtype("employee_type", name)
        assert set(lattice.subtypes_of("employee_type")) == set(employee_family.subtype_names())

    def test_common_supertypes_only_accept_valid_ones(self, employee_family):
        subtypes = [employee_family.subtype(name) for name in employee_family.subtype_names()]
        supertypes = common_supertypes(subtypes)
        for candidate in supertypes:
            assert all(is_record_subtype(subtype, candidate) for subtype in subtypes)
        # the salary-only candidate (the paper's problematic supertype) is among them
        assert any(candidate.attributes == attrset(["salary"]) for candidate in supertypes)
