"""Tests for the statistics subsystem: ANALYZE, estimation accuracy, invalidation,
persistence, and the statistics-informed physical planning decisions."""

import pytest

from repro.algebra import Evaluator, MultiwayJoin, NaturalJoin, RelationRef, Selection, TypeGuardNode
from repro.algebra.predicates import And, Comparison, Not, Or, PresencePredicate, TruePredicate
from repro.engine import Database, loads_database, dumps_database
from repro.exec import HashJoin, IndexLookupJoin, MultiwayJoinOp, PhysicalPlanner, Scan
from repro.model.domains import FloatDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme
from repro.optimizer.cost import DEFAULT_SELECTIVITY, CostModel, estimate_cost
from repro.stats import EquiDepthHistogram, TableStatistics, analyze_table, build_histogram
from repro.workloads.employees import employee_definition, generate_employees
from repro.workloads.events import skewed_join_database


# -- fixtures ------------------------------------------------------------------------------


@pytest.fixture
def analyzed_employees():
    """600 employees, analyzed; returns (database, list of tuple dicts)."""
    database = Database()
    definition = employee_definition()
    rows = generate_employees(600, seed=31)
    database.create_table("employees", definition.scheme, domains=definition.domains,
                          key=definition.key,
                          dependencies=definition.dependencies).insert_many(rows)
    database.analyze()
    return database, rows


def true_fraction(rows, predicate):
    from repro.model.tuples import FlexTuple

    matching = sum(1 for row in rows if predicate.evaluate(FlexTuple(row)))
    return matching / float(len(rows))


# -- histograms ----------------------------------------------------------------------------


class TestHistograms:
    def test_equi_depth_buckets_cover_all_values(self):
        histogram = build_histogram(list(range(1000)), max_buckets=16)
        assert histogram.total == 1000 and len(histogram) == 16

    @pytest.mark.parametrize("value,expected", [
        (250, 0.25), (499, 0.50), (750, 0.75), (900, 0.90),
    ])
    def test_cumulative_fraction_accuracy(self, value, expected):
        histogram = build_histogram(list(range(1000)), max_buckets=32)
        assert abs(histogram.fraction_leq(value) - expected) <= 0.05

    def test_skewed_values_get_dense_buckets(self):
        values = [1] * 900 + list(range(2, 102))
        histogram = build_histogram(values, max_buckets=10)
        assert abs((1.0 - histogram.fraction_leq(1)) - 0.1) <= 0.05

    def test_unsortable_population_yields_none(self):
        assert build_histogram([1, "a", None]) is None

    def test_round_trip(self):
        histogram = build_histogram([1.5, 2.5, 3.5, 9.0], max_buckets=2)
        clone = EquiDepthHistogram.from_dict(histogram.to_dict())
        assert clone.fraction_leq(3.0) == histogram.fraction_leq(3.0)


# -- ANALYZE -------------------------------------------------------------------------------


class TestAnalyze:
    def test_row_count_and_variant_frequencies(self, analyzed_employees):
        database, rows = analyzed_employees
        statistics = database.stats("employees")
        assert statistics.row_count == len(rows)
        assert not statistics.stale
        frequencies = statistics.variant_frequencies()
        assert abs(sum(frequencies.values()) - 1.0) < 1e-9
        # Exactly the three jobtype variants of the running example occur.
        assert len(frequencies) == 3

    def test_tag_frequencies_match_true_guard_selectivity(self, analyzed_employees):
        database, rows = analyzed_employees
        statistics = database.stats("employees")
        for attributes in (["typing_speed"], ["products"], ["products", "sales_commission"],
                           ["typing_speed", "products"]):
            truth = true_fraction(rows, PresencePredicate(attributes))
            assert statistics.guard_selectivity(attributes) == pytest.approx(truth)

    def test_most_common_values_are_exact_for_small_domains(self, analyzed_employees):
        database, rows = analyzed_employees
        statistics = database.stats("employees")
        jobtype = statistics.attribute("jobtype")
        assert jobtype.mcv_complete
        truth = true_fraction(rows, Comparison("jobtype", "=", "secretary"))
        assert jobtype.equality_fraction("secretary") == pytest.approx(truth)

    def test_presence_and_ndv(self, analyzed_employees):
        database, rows = analyzed_employees
        statistics = database.stats("employees")
        emp_id = statistics.attribute("emp_id")
        assert emp_id.presence == 1.0 and emp_id.ndv == len(rows)
        typing = statistics.attribute("typing_speed")
        assert 0.0 < typing.presence < 1.0

    def test_selectivity_accuracy_on_workload(self, analyzed_employees):
        """Histogram / tag-frequency estimates track the true selectivity."""
        database, rows = analyzed_employees
        statistics = database.stats("employees")
        predicates = [
            Comparison("salary", ">", 5000.0),
            Comparison("salary", "<=", 3000.0),
            Comparison("jobtype", "=", "salesman"),
            And(Comparison("jobtype", "=", "secretary"), Comparison("salary", ">", 4000.0)),
            Or(Comparison("jobtype", "=", "secretary"), Comparison("jobtype", "=", "salesman")),
            Not(Comparison("jobtype", "=", "secretary")),
            Comparison("typing_speed", ">=", 80),
        ]
        for predicate in predicates:
            truth = true_fraction(rows, predicate)
            estimate = statistics.selectivity(predicate)
            assert abs(estimate - truth) <= 0.08, (predicate, truth, estimate)

    def test_range_selectivity_on_heavy_low_ndv_values(self):
        """The mass sitting exactly on a heavy value comes from the exact MCV
        counts, so < / >= stay accurate on skewed low-NDV attributes."""
        database = skewed_join_database(big=4000, small=0)
        database.analyze()
        statistics = database.stats("events")
        rows = [t.as_dict() for t in database.table("events")]
        for predicate in (Comparison("kind", ">=", "view"),
                          Comparison("kind", "<", "view"),
                          Comparison("kind", "<=", "click")):
            truth = true_fraction(rows, predicate)
            estimate = statistics.selectivity(predicate)
            assert abs(estimate - truth) <= 0.05, (predicate, truth, estimate)

    def test_and_with_nested_predicate_prices_presence_once(self):
        database = skewed_join_database(big=4000, small=0)
        database.analyze()
        statistics = database.stats("events")
        predicate = And(PresencePredicate(["clearance"]),
                        Or(Comparison("clearance", "=", "secret"),
                           Comparison("clearance", "=", "none")))
        rows = [t.as_dict() for t in database.table("events")]
        truth = true_fraction(rows, predicate)  # 0.01: every audit row qualifies
        assert statistics.selectivity(predicate) == pytest.approx(truth, abs=0.005)

    def test_unobserved_attribute_estimates_empty(self, analyzed_employees):
        database, _rows = analyzed_employees
        statistics = database.stats("employees")
        assert statistics.selectivity(Comparison("no_such_attribute", "=", 1)) == 0.0
        assert statistics.guard_selectivity(["no_such_attribute"]) == 0.0

    def test_analyze_plain_iterables(self):
        from repro.model.tuples import FlexTuple

        statistics = analyze_table([FlexTuple(a=1), FlexTuple(a=2, b=3)])
        assert statistics.row_count == 2
        assert statistics.guard_selectivity(["b"]) == 0.5

    def test_unhashable_comparison_constant_estimates_zero(self, analyzed_employees):
        """Stored values are hashable, so = [list] matches nothing — and must not crash."""
        database, _rows = analyzed_employees
        statistics = database.stats("employees")
        weird = Comparison("jobtype", "=", ["secretary"])
        assert statistics.selectivity(weird) == 0.0
        # The full execution path (plan-time estimation included) stays usable.
        assert len(database.execute(Selection(RelationRef("employees"), weird))) == 0


# -- invalidation --------------------------------------------------------------------------


class TestInvalidation:
    def test_insert_invalidates_and_maintains_row_count(self, analyzed_employees):
        database, rows = analyzed_employees
        assert database.statistics.get("employees") is not None
        version = database.statistics_version
        database.insert("employees", generate_employees(1, seed=99, start_id=10_000)[0])
        assert database.statistics.get("employees") is None
        assert database.statistics_version > version
        stale = database.stats("employees")
        assert stale.stale and stale.row_count == len(rows) + 1

    def test_delete_invalidates_and_decrements(self, analyzed_employees):
        database, rows = analyzed_employees
        victim = next(iter(database.table("employees")))
        database.table("employees").delete(victim)
        stale = database.stats("employees")
        assert stale.stale and stale.row_count == len(rows) - 1

    def test_update_invalidates(self, analyzed_employees):
        database, _rows = analyzed_employees
        table = database.table("employees")
        victim = next(iter(table))
        table.update(victim, salary=123.0)
        assert database.statistics.get("employees") is None

    def test_rollback_restores_freshness_and_row_count(self, analyzed_employees):
        # A rolled-back transaction leaves the table exactly as analyzed, so
        # the rollback restores the statistics (and their row count) as fresh
        # instead of stranding them stale.
        database, rows = analyzed_employees
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", generate_employees(1, seed=8, start_id=50_000)[0])
                raise RuntimeError("boom")
        fresh = database.statistics.get("employees")
        assert fresh is not None
        assert fresh.row_count == len(rows)

    def test_rollback_restores_version_counter(self, analyzed_employees):
        # Version churn from a rolled-back transaction is undone, so plans
        # cached before the transaction stay valid afterwards.
        database, _rows = analyzed_employees
        version = database.statistics_version
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", generate_employees(1, seed=9, start_id=60_000)[0])
                raise RuntimeError("boom")
        assert database.statistics_version == version

    def test_rollback_keeps_untouched_tables_fresh(self, analyzed_employees):
        database, _rows = analyzed_employees
        extra = database.create_table("extra", FlexibleScheme(1, 1, ["x"]),
                                      domains={"x": IntDomain()})
        extra.insert_many({"x": value} for value in range(4))
        database.analyze()
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("extra", {"x": 99})
                raise RuntimeError("boom")
        assert database.statistics.is_fresh("extra")
        assert database.statistics.is_fresh("employees")

    def test_reanalyze_restores_freshness(self, analyzed_employees):
        database, _rows = analyzed_employees
        database.insert("employees", generate_employees(1, seed=5, start_id=20_000)[0])
        database.analyze("employees")
        assert database.statistics.is_fresh("employees")

    def test_drop_table_invalidates(self, analyzed_employees):
        database, _rows = analyzed_employees
        database.drop_table("employees")
        assert database.stats("employees") is None

    def test_mutation_bumps_version_once_until_reanalyzed(self, analyzed_employees):
        database, _rows = analyzed_employees
        version = database.statistics_version
        database.insert("employees", generate_employees(1, seed=1, start_id=30_000)[0])
        bumped = database.statistics_version
        assert bumped == version + 1
        database.insert("employees", generate_employees(1, seed=2, start_id=30_001)[0])
        assert database.statistics_version == bumped


# -- persistence ---------------------------------------------------------------------------


class TestPersistence:
    def test_round_trip_keeps_statistics_fresh(self, analyzed_employees):
        database, _rows = analyzed_employees
        loaded = loads_database(dumps_database(database))
        assert loaded.statistics.is_fresh("employees")
        original = database.stats("employees")
        restored = loaded.stats("employees")
        assert restored.row_count == original.row_count
        assert restored.variant_frequencies() == original.variant_frequencies()
        predicate = Comparison("salary", ">", 5000.0)
        assert restored.selectivity(predicate) == pytest.approx(original.selectivity(predicate))

    def test_stale_statistics_are_not_persisted(self, analyzed_employees):
        database, _rows = analyzed_employees
        database.insert("employees", generate_employees(1, seed=77, start_id=40_000)[0])
        loaded = loads_database(dumps_database(database))
        assert loaded.stats("employees") is None

    def test_secondary_indexes_round_trip(self):
        database = skewed_join_database(big=120, small=20)
        loaded = loads_database(dumps_database(database))
        index = loaded.table("events").index_for(["kind"])
        assert index is not None and index.attributes == loaded.catalog.definition(
            "events").indexes[0]


# -- the cost model ------------------------------------------------------------------------


class TestCostModel:
    def test_defaults_without_statistics(self, analyzed_employees):
        database, _rows = analyzed_employees
        database.statistics.invalidate()
        selected = estimate_cost(Selection(RelationRef("employees"), TruePredicate()), database)
        assert selected.cardinality == pytest.approx(600 * DEFAULT_SELECTIVITY)

    def test_selection_estimate_tracks_data(self, analyzed_employees):
        database, rows = analyzed_employees
        predicate = Comparison("jobtype", "=", "secretary")
        estimate = estimate_cost(Selection(RelationRef("employees"), predicate), database)
        truth = true_fraction(rows, predicate) * len(rows)
        assert estimate.cardinality == pytest.approx(truth, rel=0.01)

    def test_guard_estimate_uses_tag_frequencies(self, analyzed_employees):
        database, rows = analyzed_employees
        estimate = estimate_cost(TypeGuardNode(RelationRef("employees"), ["typing_speed"]),
                                 database)
        truth = true_fraction(rows, PresencePredicate(["typing_speed"])) * len(rows)
        assert estimate.cardinality == pytest.approx(truth)

    def test_join_estimate_uses_distinct_values(self):
        database = skewed_join_database(big=1200, small=120)
        database.analyze()
        join = NaturalJoin(RelationRef("events"), RelationRef("sessions"), on=["event_id"])
        estimate = estimate_cost(join, database)
        # Key-to-key join: at most one partner per session row.
        assert estimate.cardinality == pytest.approx(120, rel=0.05)

    def test_chain_estimate_prices_presence_once(self):
        """Guard + comparison on the same attribute must not double-count presence."""
        database = skewed_join_database(big=4000, small=0)
        database.analyze()
        guarded = Selection(TypeGuardNode(RelationRef("events"), ["clearance"]),
                            Comparison("clearance", "=", "secret"))
        estimate = estimate_cost(guarded, database)
        # All 40 audit rows carry clearance='secret'; pricing the 1% presence
        # twice would estimate 0.4 rows.
        assert estimate.cardinality == pytest.approx(40.0, abs=1.0)

    def test_estimate_carries_hard_upper_bound(self):
        database = skewed_join_database(big=400, small=0)
        database.analyze()
        selection = Selection(RelationRef("events"), Comparison("kind", "=", "audit"))
        estimate = estimate_cost(selection, database)
        assert estimate.cardinality == pytest.approx(4.0, abs=0.5)
        assert estimate.bound == 400

    def test_selection_through_guard_chain(self, analyzed_employees):
        database, rows = analyzed_employees
        expression = Selection(TypeGuardNode(RelationRef("employees"), ["typing_speed"]),
                               Comparison("jobtype", "=", "secretary"))
        estimate = estimate_cost(expression, database)
        truth = true_fraction(rows, Comparison("jobtype", "=", "secretary")) * len(rows)
        # Guard and selection both select (the same) secretaries: the estimate
        # composes the two fractions, so it may undershoot but not explode.
        assert 0 < estimate.cardinality <= truth + 1


# -- planner decisions ---------------------------------------------------------------------


class TestStatsInformedPlanner:
    def test_build_side_flips_when_stats_know_the_rare_tag(self):
        """Join-order change: the filtered big relation becomes the build side."""
        database = skewed_join_database(big=1200, small=120)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"),
        )
        default_plan = PhysicalPlanner(source=database).plan(query)
        assert isinstance(default_plan.root, HashJoin)
        # Default selectivities say σ(events) ≈ 600 rows > 120 sessions: sessions builds.
        assert isinstance(default_plan.root.right, Scan)
        assert default_plan.root.right.relation == "sessions"

        database.analyze()
        stats_plan = PhysicalPlanner(source=database).plan(query)
        assert isinstance(stats_plan.root, HashJoin)
        # The 1% tag leaves ~12 rows: the filtered events scan becomes the build side.
        assert stats_plan.root.right.relation == "events"

    def test_index_lookup_join_requires_statistics(self):
        database = skewed_join_database(big=1200, small=120)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"],
        )
        assert isinstance(PhysicalPlanner(source=database).plan(query).root, HashJoin)
        database.analyze()
        stats_root = PhysicalPlanner(source=database).plan(query).root
        assert isinstance(stats_root, IndexLookupJoin)
        assert stats_root.relation == "sessions"

    def test_acceptance_five_fold_fewer_pairs_and_tuples(self):
        """The ISSUE acceptance gate, small scale: ≥5× fewer examined tuples+pairs."""
        database = skewed_join_database(big=1200, small=120, rare_every=100)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"],
        )
        default = database.execute(query, optimize=False)
        database.analyze()
        informed = database.execute(query, optimize=False)
        assert informed.tuples == default.tuples
        examined_default = (default.stats.tuples_scanned
                            + default.stats.join_pairs_considered)
        examined_informed = (informed.stats.tuples_scanned
                             + informed.stats.join_pairs_considered)
        assert examined_default >= 5 * examined_informed
        assert informed.stats.total_work * 5 <= default.stats.total_work

    def test_index_lookup_join_parity_with_naive_evaluator(self):
        database = skewed_join_database(big=300, small=40)
        database.analyze()
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"],
        )
        plan = PhysicalPlanner(source=database).plan(query)
        assert isinstance(plan.root, IndexLookupJoin)
        naive = Evaluator(database).evaluate(query)
        assert plan.execute(database).tuples == naive.tuples
        # Degraded mode (indexes disabled) must still be correct.
        assert plan.execute(database, use_indexes=False).tuples == naive.tuples

    def test_multiway_join_merges_smallest_fragment_first(self):
        database = Database()
        scheme = FlexibleScheme(1, 2, ["emp_id", FlexibleScheme(0, 1, ["extra"])])
        for name, count in (("master", 50), ("bulk", 500), ("rare", 5)):
            table = database.create_table(name, scheme, domains={"emp_id": IntDomain(),
                                                                 "extra": IntDomain()})
            table.insert_many({"emp_id": i} for i in range(1, count + 1))
        expression = MultiwayJoin(
            [RelationRef("master"), RelationRef("bulk"), RelationRef("rare")], on=["emp_id"])
        plan = PhysicalPlanner(source=database).plan(expression)
        assert isinstance(plan.root, MultiwayJoinOp)
        labels = [child.label() for child in plan.root.inputs]
        assert labels[0] == "scan[master]"          # the master must stay first
        assert labels[1:] == ["scan[rare]", "scan[bulk]"]
        naive = Evaluator(database).evaluate(expression)
        assert plan.execute(database).tuples == naive.tuples

    def test_explain_carries_estimates(self):
        database = skewed_join_database(big=120, small=20)
        database.analyze()
        rendered = database.plan(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit"))).explain()
        assert "est_rows=" in rendered and "est_cost=" in rendered

    def test_plan_cache_invalidated_by_analyze(self):
        database = skewed_join_database(big=120, small=20)
        executor = database.physical_executor
        query = Selection(RelationRef("events"), Comparison("kind", "=", "audit"))
        # The un-analyzed selectivity default mis-prices this selection, so the
        # first execution records a cardinality-feedback correction and the
        # second re-plans against it; from the third on the plan cache is hot.
        database.execute(query, optimize=False)
        database.execute(query, optimize=False)
        database.execute(query, optimize=False)
        assert executor.cache.hits >= 1
        misses = executor.cache.misses
        database.analyze()
        database.execute(query, optimize=False)
        assert executor.cache.misses > misses

    def test_nested_loop_decision_uses_upper_bound(self):
        """Stacked default selectivities must not talk the planner into a nested
        loop over inputs that are only *estimated* small."""
        database = skewed_join_database(big=200, small=100)
        deep_left = RelationRef("events")
        for _ in range(6):
            deep_left = Selection(deep_left, Comparison("event_id", ">", 0))
        deep_right = RelationRef("sessions")
        for _ in range(5):
            deep_right = Selection(deep_right, Comparison("event_id", ">", 0))
        # Default estimates: 200×0.5^6 × 100×0.5^5 ≈ 10 pairs — under the nested
        # loop threshold — but every predicate is vacuous, so the true input is
        # the full 200 × 100.  The hard bound keeps the hash join.
        plan = PhysicalPlanner(source=database).plan(NaturalJoin(deep_left, deep_right))
        assert isinstance(plan.root, HashJoin)

    def test_grown_table_replans_cached_join_without_analyze(self):
        """A nested-loop plan cached over tiny tables must be re-planned once the
        tables have grown substantially, even if ANALYZE never ran."""
        from repro.exec import NestedLoopJoin

        database = skewed_join_database(big=6, small=6)
        query = NaturalJoin(RelationRef("events"), RelationRef("sessions"), on=["event_id"])
        database.execute(query, optimize=False)
        assert isinstance(database.plan(query, optimize=False).root, NestedLoopJoin)
        database.table("events").insert_many(
            {"event_id": event_id, "kind": "view", "payload": event_id % 7}
            for event_id in range(7, 2001))
        database.table("sessions").insert_many(
            {"event_id": event_id, "user": "u{}".format(event_id % 9)}
            for event_id in range(7, 201))
        replanned = database.plan(query, optimize=False)
        assert not isinstance(replanned.root, NestedLoopJoin)
        result = database.execute(query, optimize=False)
        # A stale nested loop would examine 2000 × 200 = 400k pairs.
        assert result.stats.join_pairs_considered <= 10_000

    def test_low_ndv_index_is_priced_out_by_fan_out(self):
        """An index with huge buckets must not masquerade as a cheap lookup path."""
        database = skewed_join_database(big=400, small=0)
        tags = database.create_table("tags", FlexibleScheme(2, 2, ["kind", "label"]),
                                     domains={"kind": StringDomain(max_length=32),
                                              "label": StringDomain(max_length=32)})
        tags.insert_many({"kind": kind, "label": "L" + kind}
                         for kind in ("audit", "click", "view"))
        database.analyze()
        # Joining on 'kind': events has an index on it, but only 3 distinct
        # values over 400 rows — each probe would examine ~133 partners, so the
        # planner must keep the hash join despite the tiny outer side.
        query = NaturalJoin(RelationRef("tags"), RelationRef("events"), on=["kind"])
        plan = PhysicalPlanner(source=database).plan(query)
        assert isinstance(plan.root, HashJoin)

    def test_cost_model_prefers_fresh_statistics_dynamically(self):
        """The same planner object re-reads freshness on every plan() call."""
        database = skewed_join_database(big=240, small=24)
        planner = PhysicalPlanner(source=database)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"],
        )
        assert isinstance(planner.plan(query).root, HashJoin)
        database.analyze()
        assert isinstance(planner.plan(query).root, IndexLookupJoin)
        database.insert("events", {"event_id": 100_000, "kind": "view", "payload": 1})
        assert isinstance(planner.plan(query).root, HashJoin)
