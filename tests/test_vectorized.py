"""Unit tests for the vectorized execution layer and sampling-based ANALYZE.

The differential safety net lives in ``tests/test_exec_parity.py`` (its whole
corpus runs through the batch path too); this module pins down the pieces in
isolation: :class:`~repro.model.batches.TupleBatch` edge cases, predicate/guard
compilation semantics, batch-operator counters, execution-mode exposure and
plan-cache accounting, reservoir sampling with GEE scale-up, and the
auto-ANALYZE policy.
"""

import pytest

from repro.algebra import (
    Evaluator,
    NaturalJoin,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import (
    And,
    AttributeComparison,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    PresencePredicate,
    TruePredicate,
)
from repro.engine import Database, dumps_database, loads_database
from repro.errors import CatalogError, TupleError
from repro.exec import (
    MAX_BATCH_SIZE,
    MIN_BATCH_SIZE,
    TARGET_BATCH_CELLS,
    BatchFilter,
    BatchHashJoin,
    BatchIndexLookupJoin,
    BatchProject,
    BatchScan,
    CompiledGuard,
    CompiledPredicate,
    ExecutionContext,
    HashJoin,
    IndexLookupJoin,
    PhysicalExecutor,
    PhysicalPlanner,
    Scan,
    adaptive_batch_size,
)
from repro.exec.planner import PhysicalPlan
from repro.model.batches import (
    LazyBatch,
    MISSING,
    TupleBatch,
    mask_indices,
    merge_values,
)
from repro.model.tuples import FlexTuple
from repro.optimizer.cost import CostModel
from repro.stats import estimate_ndv, reservoir_sample
from repro.workloads.employees import generate_employees
from repro.workloads.events import generate_events, skewed_join_database


def _tuples(*dicts):
    return [FlexTuple(d) for d in dicts]


VARIANTS = _tuples(
    {"id": 1, "kind": "a", "x": 10},
    {"id": 2, "kind": "b"},
    {"id": 3, "kind": "a", "x": 30, "y": "hi"},
    {"id": 4, "y": "lo"},
)


class TestTupleBatch:
    def test_empty_batch(self):
        batch = TupleBatch([])
        assert len(batch) == 0 and not batch
        assert batch.column("x") == []
        assert batch.presence_mask(["x"]) == 0 == batch.full_mask
        assert batch.take([]).rows == []

    def test_column_values_and_missing(self):
        batch = TupleBatch(list(VARIANTS))
        values = batch.column("x")
        assert values[0] == 10 and values[1] is MISSING
        assert values[2] == 30 and values[3] is MISSING

    def test_presence_masks(self):
        batch = TupleBatch(list(VARIANTS))
        assert batch.column_mask("kind") == 0b0111
        assert batch.presence_mask(["kind", "x"]) == 0b0101
        assert batch.presence_mask([]) == batch.full_mask
        assert batch.presence_mask(["nope"]) == 0

    def test_take_and_interop(self):
        batch = TupleBatch(list(VARIANTS))
        taken = batch.take([0, 2])
        assert [t["id"] for t in taken] == [1, 3]
        # Row-engine interop: iteration and len are all a row operator needs.
        assert len(taken) == 2 and set(taken) == {VARIANTS[0], VARIANTS[2]}
        assert TupleBatch.of(taken) is taken
        assert TupleBatch.of([VARIANTS[0]]).rows == [VARIANTS[0]]

    def test_mask_indices(self):
        assert mask_indices(0) == []
        assert mask_indices(0b1011) == [0, 1, 3]


class TestCompiledPredicates:
    def batch(self):
        return TupleBatch(list(VARIANTS))

    def select(self, predicate):
        return CompiledPredicate(predicate).select(self.batch())

    def test_comparison_missing_is_false(self):
        assert self.select(Comparison("x", ">", 5)) == [0, 2]
        assert self.select(Comparison("x", ">", 20)) == [2]

    def test_mixed_type_column_typeerror_is_false(self):
        rows = _tuples({"id": 1, "v": 5}, {"id": 2, "v": "five"}, {"id": 3, "v": 7})
        compiled = CompiledPredicate(Comparison("v", ">=", 6))
        assert compiled.select(TupleBatch(rows)) == [2]

    def test_constant_folding(self):
        assert self.select(TruePredicate()) == [0, 1, 2, 3]
        assert self.select(FalsePredicate()) == []
        assert self.select(And(Comparison("x", ">", 5), FalsePredicate())) == []
        assert CompiledPredicate(TruePredicate())._passes == []

    def test_conjunction_narrows_sequentially(self):
        predicate = And(Comparison("kind", "=", "a"), Comparison("x", ">=", 30))
        assert self.select(predicate) == [2]

    def test_or_not_and_presence(self):
        assert self.select(Or(Comparison("kind", "=", "b"),
                              PresencePredicate(["y"]))) == [1, 2, 3]
        assert self.select(Not(Comparison("kind", "=", "a"))) == [1, 3]
        assert self.select(PresencePredicate(["kind", "x"])) == [0, 2]

    def test_in_and_attribute_comparison(self):
        assert self.select(Comparison("id", "in", [2, 4])) == [1, 3]
        rows = _tuples({"a": 1, "b": 2}, {"a": 3, "b": 3}, {"a": 5})
        compiled = CompiledPredicate(AttributeComparison("a", "=", "b"))
        assert compiled.select(TupleBatch(rows)) == [1]

    def test_unknown_predicate_subclass_falls_back_to_evaluate(self):
        class OddId(Predicate):
            def evaluate(self, tup):
                return tup.get("id", 0) % 2 == 1

            @property
            def attributes(self):
                from repro.model.attributes import AttributeSet
                return AttributeSet()

        assert self.select(OddId()) == [0, 2]

    def test_matches_interpreted_evaluation(self):
        predicates = [
            Comparison("x", "<=", 10), Comparison("kind", "!=", "a"),
            Or(Comparison("x", "=", 30), Not(PresencePredicate(["kind"]))),
            And(PresencePredicate(["kind"]), Comparison("id", "<", 4)),
        ]
        batch = self.batch()
        for predicate in predicates:
            expected = [i for i, tup in enumerate(VARIANTS) if predicate.evaluate(tup)]
            assert CompiledPredicate(predicate).select(batch) == expected

    def test_compiled_guard(self):
        batch = self.batch()
        assert CompiledGuard(["kind"]).select(batch) == [0, 1, 2]
        assert CompiledGuard(["kind", "y"]).select(batch) == [2]
        assert CompiledGuard(["kind"]).select(batch, [1, 3]) == [1]


@pytest.fixture
def source():
    employees = {FlexTuple(row) for row in generate_employees(90, seed=3)}
    assignments = {FlexTuple({"emp_id": i, "project": "p{}".format(i % 4)})
                   for i in range(1, 70)}
    return {"employees": employees, "assignments": assignments}


def _run(root, source, batch_size=64, use_indexes=True):
    return PhysicalPlan(root).execute(source, batch_size=batch_size,
                                      use_indexes=use_indexes)


class TestBatchOperators:
    def test_all_guard_filtered_batches_yield_nothing(self, source):
        result = _run(BatchScan("assignments", guard=["typing_speed"]), source)
        assert result.tuples == set()

    def test_variant_records_missing_join_attribute_are_partitioned_out(self, source):
        # typing_speed exists only on secretaries; everyone else must be skipped
        # as a guard check, not a join pair.
        root = BatchHashJoin(BatchScan("employees"), BatchScan("employees"),
                             on=["emp_id", "typing_speed"])
        result = _run(root, source)
        naive = Evaluator(source).evaluate(
            NaturalJoin(RelationRef("employees"), RelationRef("employees"),
                        on=["emp_id", "typing_speed"]))
        assert result.tuples == naive.tuples
        assert result.stats.guard_checks == 180  # both sides fully checked

    def test_batch_hash_join_needs_static_attributes(self):
        with pytest.raises(Exception):
            BatchHashJoin(BatchScan("a"), BatchScan("b"), on=None)

    def test_counters_identical_between_modes(self, source):
        expression = Projection(
            NaturalJoin(
                Selection(RelationRef("employees"), Comparison("salary", ">", 3000.0)),
                RelationRef("assignments"), on=["emp_id"]),
            ["project", "jobtype"])
        row_plan = PhysicalPlanner(source=source, vectorize=False).plan(expression)
        batch_plan = PhysicalPlanner(source=source, vectorize=True).plan(expression)
        row = row_plan.execute(source)
        batch = batch_plan.execute(source)
        assert row.tuples == batch.tuples
        row_stats, batch_stats = row.stats.as_dict(), batch.stats.as_dict()
        for counter in ("tuples_scanned", "predicate_evaluations", "guard_checks",
                        "join_pairs_considered", "tuples_produced", "total_work"):
            assert row_stats[counter] == batch_stats[counter], counter

    def test_batch_project_deduplicates_and_drops_empty(self, source):
        result = _run(BatchProject(BatchScan("employees"), ["jobtype"]), source)
        naive = Evaluator(source).evaluate(Projection(RelationRef("employees"),
                                                      ["jobtype"]))
        assert result.tuples == naive.tuples

    def test_batch_size_one(self, source):
        root = BatchFilter(BatchScan("employees"), Comparison("jobtype", "=", "salesman"))
        small = _run(root, source, batch_size=1)
        big = _run(root, source, batch_size=4096)
        assert small.tuples == big.tuples

    def test_index_lookup_join_with_and_without_index(self):
        database = skewed_join_database(big=300, small=60, rare_every=30)
        root = BatchIndexLookupJoin(
            BatchScan("events", predicate=Comparison("kind", "=", "audit")),
            "sessions", on=["event_id"])
        with_index = _run(root, database, use_indexes=True)
        degraded = _run(root, database, use_indexes=False)
        naive = Evaluator(database).evaluate(
            NaturalJoin(Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
                        RelationRef("sessions"), on=["event_id"]))
        assert with_index.tuples == degraded.tuples == naive.tuples
        # The maintained index never scans the inner relation.
        assert with_index.stats.tuples_scanned < degraded.stats.tuples_scanned


class TestModeExposure:
    def test_plan_modes(self, source):
        expression = Selection(RelationRef("employees"), Comparison("salary", ">", 0.0))
        batch_plan = PhysicalPlanner(source=source).plan(expression)
        row_plan = PhysicalPlanner(source=source, vectorize=False).plan(expression)
        assert batch_plan.mode == "batch" and isinstance(batch_plan.root, BatchScan)
        assert row_plan.mode == "row" and not isinstance(row_plan.root, BatchScan)
        # Unions vectorize too since the whole-plan pass; "core" reproduces the
        # pre-PR5 lowering (row-mode unions inside a batch plan = mixed), and a
        # data-dependent natural join (on=None) still falls back to row mode.
        union = Union(RelationRef("employees"), RelationRef("assignments"))
        assert PhysicalPlanner(source=source).plan(union).mode == "batch"
        mixed = PhysicalPlanner(source=source, batch_forms="core").plan(union)
        assert mixed.mode == "mixed"
        data_dependent = PhysicalPlanner(source=source).plan(
            NaturalJoin(RelationRef("employees"), RelationRef("assignments")))
        assert data_dependent.mode == "mixed"

    def test_database_execute_mode_switch(self, employee_database):
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0))
        batch = employee_database.execute(query, mode="batch")
        row = employee_database.execute(query, mode="row")
        naive = employee_database.execute(query, executor="naive")
        assert batch.tuples == row.tuples == naive.tuples
        with pytest.raises(CatalogError):
            employee_database.execute(query, mode="columnar")

    def test_database_plan_and_explain_expose_mode(self, employee_database):
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0))
        assert employee_database.plan(query, mode="batch").mode == "batch"
        assert employee_database.plan(query, mode="row").mode == "row"
        rendered = employee_database.explain(query)
        assert rendered.startswith("mode=batch")
        assert "plan-cache: hits=" in rendered
        assert "[batch]" in rendered
        assert "[batch]" not in employee_database.explain(query, mode="row")

    def test_scan_pushdown_preserves_batch_class(self, source):
        plan = PhysicalPlanner(source=source).plan(
            TypeGuardNode(Selection(RelationRef("employees"),
                                    Comparison("jobtype", "=", "secretary")),
                          ["typing_speed"]))
        assert isinstance(plan.root, BatchScan) and isinstance(plan.root, Scan)
        assert plan.root.predicate is not None and plan.root.guard is not None

    def test_batch_joins_are_row_join_subclasses(self):
        database = skewed_join_database(big=300, small=60, rare_every=30)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"])
        default_plan = database.plan(query, optimize=False)
        assert isinstance(default_plan.root, HashJoin)
        database.analyze()
        informed_plan = database.plan(query, optimize=False)
        assert isinstance(informed_plan.root, IndexLookupJoin)
        assert informed_plan.root.vectorized


class TestPlanCacheCounters:
    def test_hit_miss_properties_and_info(self, employee_database):
        # Fresh statistics keep the estimates accurate, so no cardinality
        # feedback is recorded and the cache key stays stable across runs.
        employee_database.analyze()
        executor = employee_database.physical_executor
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 1.0))
        base_misses = executor.cache_misses
        employee_database.execute(query)
        employee_database.execute(query)
        assert executor.cache_misses == base_misses + 1
        assert executor.cache_hits >= 1
        info = executor.cache_info()
        assert info["hits"] == executor.cache_hits
        assert info["misses"] == executor.cache_misses
        assert info["size"] >= 1 and info["max_size"] >= info["size"]

    def test_row_and_batch_plans_cached_separately(self, employee_database):
        employee_database.analyze()  # accurate estimates → no feedback re-plan
        executor = employee_database.physical_executor
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 2.0))
        employee_database.execute(query, mode="batch")
        misses = executor.cache_misses
        employee_database.execute(query, mode="row")
        assert executor.cache_misses == misses + 1
        hits = executor.cache_hits
        employee_database.execute(query, mode="row")
        employee_database.execute(query, mode="batch")
        assert executor.cache_hits == hits + 2


class TestLazyBatches:
    """Lazy merged join output: tuples materialize only when row-mode code
    (or the result set) touches them."""

    def join_plan(self, source):
        return PhysicalPlanner(source=source).plan(
            NaturalJoin(RelationRef("employees"), RelationRef("assignments"),
                        on=["emp_id"]))

    def test_join_emits_lazy_batches(self, source):
        plan = self.join_plan(source)
        batches = list(plan.root.run(
            ExecutionContext(source, batch_size=4096)))
        assert batches and all(isinstance(b, LazyBatch) for b in batches)
        assert not any(b.materialized for b in batches)
        # Column access answers from the merged value dicts, still lazily.
        assert MISSING not in batches[0].column("project")
        assert not batches[0].materialized
        # Iteration (what the result collector does) materializes.
        rows = list(batches[0])
        assert all(isinstance(row, FlexTuple) for row in rows)
        assert batches[0].materialized

    def test_filter_on_lazy_batch_narrows_without_materializing(self, source):
        batch = LazyBatch([{"emp_id": i, "project": "p{}".format(i % 4)}
                           for i in range(20)])
        compiled = CompiledPredicate(Comparison("project", "=", "p1"))
        narrowed = batch.take(compiled.select(batch))
        assert isinstance(narrowed, LazyBatch) and len(narrowed) == 5
        assert not batch.materialized and not narrowed.materialized

    def test_lazy_rows_equal_eager_construction(self):
        values = {"a": 1, "b": "x"}
        lazy = LazyBatch([dict(values)]).rows[0]
        assert lazy == FlexTuple(values)
        assert hash(lazy) == hash(FlexTuple(values))

    def test_merge_values_conflict_raises_eagerly(self):
        with pytest.raises(TupleError):
            merge_values({"a": 1, "b": 2}, {"a": 1, "b": 3})
        assert merge_values({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}
        # the right value is kept on agreement, exactly as FlexTuple.merge
        merged = merge_values({"a": 1, "c": 0}, {"a": 1.0, "b": 2})
        row_merged = FlexTuple({"a": 1, "c": 0}).merge(FlexTuple({"a": 1.0, "b": 2}))
        assert repr(merged["a"]) == repr(row_merged["a"]) == "1.0"


class TestAdaptiveBatchSizing:
    def test_heuristic_bounds(self):
        assert adaptive_batch_size(8.0) == TARGET_BATCH_CELLS // 8
        assert adaptive_batch_size(1.0) == MAX_BATCH_SIZE
        assert adaptive_batch_size(1000.0) == MIN_BATCH_SIZE

    def test_tiny_inputs_get_one_batch(self):
        # 300 rows would be split by the width-derived size of a wide tuple;
        # the heuristic widens to a single batch instead.
        assert adaptive_batch_size(64.0, base_rows=300) == 300
        assert adaptive_batch_size(64.0, base_rows=100_000) == TARGET_BATCH_CELLS // 64

    def test_width_estimate_prefers_statistics(self):
        database = skewed_join_database(big=400, small=40)
        model = CostModel(database)
        declared = model.estimate_width(RelationRef("events"))
        assert declared == 4.0  # the scheme universe
        database.analyze()
        observed = CostModel(database).estimate_width(RelationRef("events"))
        assert observed == pytest.approx(3.0)  # every variant carries 3 attrs

    def test_plan_carries_adaptive_size_and_override(self, source):
        expression = Selection(RelationRef("employees"),
                               Comparison("salary", ">", 0.0))
        plan = PhysicalPlanner(source=source).plan(expression)
        assert plan.batch_size is not None
        assert MIN_BATCH_SIZE <= plan.batch_size <= MAX_BATCH_SIZE
        pinned = PhysicalPlanner(source=source).plan(expression, batch_size=7)
        assert pinned.batch_size == 7
        row_plan = PhysicalPlanner(source=source, vectorize=False).plan(expression)
        assert row_plan.batch_size is None  # row default applies at execution

    def test_database_batch_size_passthrough(self, employee_database):
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 0.0))
        plan = employee_database.plan(query, batch_size=5)
        assert plan.batch_size == 5
        result = employee_database.execute(query, batch_size=5)
        adaptive = employee_database.execute(query)
        assert result.tuples == adaptive.tuples
        assert "batch_size=" in employee_database.explain(query)

    def test_plan_cache_keyed_on_batch_size(self, employee_database):
        """A plan built (and sized) for one batch size must not be reused for
        another — the PR 3 cache reused it regardless of the request."""
        employee_database.analyze()  # accurate estimates → no feedback re-plan
        executor = employee_database.physical_executor
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 3.0))
        employee_database.execute(query)
        misses = executor.cache_misses
        employee_database.execute(query, batch_size=32)
        assert executor.cache_misses == misses + 1
        assert employee_database.plan(query, batch_size=32).batch_size == 32
        hits = executor.cache_hits
        employee_database.execute(query, batch_size=32)
        employee_database.execute(query)
        assert executor.cache_hits == hits + 2


class TestSamplingAnalyze:
    def events_database(self, big=5000):
        database = Database(enforce_constraints=False)
        from repro.workloads.events import events_scheme
        table = database.create_table("events", events_scheme(), key=["event_id"])
        table.insert_many(generate_events(big, rare_every=100))
        return database

    def test_reservoir_sample_counts_and_bounds(self):
        sample, total = reservoir_sample(range(1000), 64, seed=7)
        assert total == 1000 and len(sample) == 64
        assert set(sample) <= set(range(1000))
        again, _ = reservoir_sample(range(1000), 64, seed=7)
        assert sample == again  # deterministic under one seed

    def test_reservoir_smaller_input_is_exact(self):
        sample, total = reservoir_sample(range(10), 64)
        assert total == 10 and sample == list(range(10))

    def test_gee_estimator(self):
        # All-singleton sample: scale by sqrt(n/r).
        assert estimate_ndv(100, 100, 100, 400) == 200
        # No singletons: the sample already saw every heavy value.
        assert estimate_ndv(3, 0, 1000, 100000) == 3
        # Clamped into [d, n].
        assert estimate_ndv(10, 10, 10, 10) == 10

    def test_sampled_analyze_scales_to_true_cardinality(self):
        database = self.events_database()
        statistics = database.analyze("events", sample_size=1000)
        assert statistics.sampled and statistics.sample_rows == 1000
        assert statistics.row_count == 5000  # the sampling pass still counts exactly
        # The 1% audit tag frequency survives the scale-up approximately.
        audit_fraction = statistics.guard_selectivity(["clearance"])
        assert abs(audit_fraction - 0.01) < 0.02
        # kind has 3 heavy values -> GEE keeps the exact small NDV;
        # event_id is unique -> GEE scales well above the sample size.
        assert statistics.ndv("kind") == 3
        assert 1000 < statistics.ndv("event_id") <= 5000
        presence = statistics.attribute("payload").presence
        assert abs(presence - 0.99) < 0.03

    def test_one_shot_iterable_below_threshold_reads_once_and_exactly(self):
        from repro.stats import analyze_table
        rows = iter(_tuples({"a": 1}, {"a": 2, "b": 3}, {"a": 2}))
        statistics = analyze_table(rows, sample_size=100)
        assert not statistics.sampled
        assert statistics.row_count == 3
        assert statistics.ndv("a") == 2
        assert statistics.attribute("b").present_count == 1

    def test_tables_below_threshold_stay_exact(self):
        database = self.events_database(big=200)
        statistics = database.analyze("events", sample_size=1000)
        assert not statistics.sampled and statistics.sample_rows is None
        assert statistics.row_count == 200
        assert statistics.ndv("event_id") == 200

    def test_sampled_statistics_drive_the_planner(self):
        database = skewed_join_database(big=2000, small=200, rare_every=100)
        database.analyze(sample_size=500)
        query = NaturalJoin(
            Selection(RelationRef("events"), Comparison("kind", "=", "audit")),
            RelationRef("sessions"), on=["event_id"])
        assert isinstance(database.plan(query, optimize=False).root, IndexLookupJoin)

    def test_sampled_flag_survives_serialization(self):
        database = self.events_database(big=2000)
        database.analyze(sample_size=500)
        loaded = loads_database(dumps_database(database))
        restored = loaded.stats("events")
        assert restored is not None and restored.sampled
        assert restored.row_count == 2000


class TestAutoAnalyze:
    def small_database(self, **kwargs):
        database = Database(enforce_constraints=False, **kwargs)
        from repro.workloads.events import events_scheme
        database.create_table("events", events_scheme(), key=["event_id"])
        database.insert_many("events", generate_events(50))
        return database

    def test_off_by_default(self):
        database = self.small_database()
        database.analyze("events")
        for event_id in range(51, 70):
            database.insert("events", {"event_id": event_id, "kind": "click",
                                       "payload": 1})
        assert not database.statistics.is_fresh("events")

    def test_re_analyze_after_ten_percent_mutations(self):
        database = self.small_database(auto_analyze=True)
        database.analyze("events")
        for event_id in range(51, 55):  # 4 mutations: below the 10% threshold
            database.insert("events", {"event_id": event_id, "kind": "click",
                                       "payload": 1})
        assert not database.statistics.is_fresh("events")
        database.insert("events", {"event_id": 55, "kind": "click", "payload": 1})
        assert database.statistics.is_fresh("events")  # 5th mutation re-analyzed
        assert database.stats("events").row_count == 55

    def test_never_analyzed_tables_are_left_alone(self):
        database = self.small_database(auto_analyze=True)
        for event_id in range(51, 80):
            database.insert("events", {"event_id": event_id, "kind": "view",
                                       "payload": 2})
        assert database.stats("events") is None

    def test_auto_analyze_reuses_sample_size(self):
        database = self.small_database(auto_analyze=True)
        database.insert_many("events", generate_events(3000)[50:])
        database.analyze("events", sample_size=400)
        for event_id in range(3001, 3301):  # exactly the 10% threshold
            database.insert("events", {"event_id": event_id, "kind": "click",
                                       "payload": 1})
        statistics = database.stats("events")
        assert database.statistics.is_fresh("events")
        assert statistics.sampled and statistics.sample_rows == 400
