"""Tests for the workload generators."""

import pytest

from repro.core.inference import discover_explicit_ad
from repro.engine import Table
from repro.model.tuples import FlexTuple
from repro.workloads import (
    address_definition,
    address_dependency,
    address_scheme,
    employee_definition,
    employee_dependency,
    employee_scheme,
    generate_addresses,
    generate_employees,
    instance_for_dependency,
    random_explicit_ad,
    random_flexible_scheme,
    random_instance,
)


class TestEmployeeWorkload:
    def test_valid_generation_conforms(self):
        dependency = employee_dependency()
        scheme = employee_scheme()
        for values in generate_employees(100, seed=1):
            tup = FlexTuple(values)
            assert scheme.admits(tup.attributes)
            assert dependency.check_tuple(tup)

    def test_invalid_fraction_violates_dependency_but_not_scheme(self):
        dependency = employee_dependency()
        scheme = employee_scheme()
        invalid = 0
        for values in generate_employees(100, invalid_fraction=1.0, seed=2):
            tup = FlexTuple(values)
            assert scheme.admits(tup.attributes)
            if not dependency.check_tuple(tup):
                invalid += 1
        assert invalid == 100

    def test_partial_invalid_fraction(self):
        dependency = employee_dependency()
        tuples = [FlexTuple(v) for v in generate_employees(200, invalid_fraction=0.3, seed=3)]
        invalid = sum(1 for t in tuples if not dependency.check_tuple(t))
        assert 30 <= invalid <= 90

    def test_generation_is_deterministic(self):
        assert generate_employees(10, seed=4) == generate_employees(10, seed=4)
        assert generate_employees(10, seed=4) != generate_employees(10, seed=5)

    def test_ids_are_unique(self):
        values = generate_employees(50, seed=6, start_id=100)
        ids = [v["emp_id"] for v in values]
        assert len(set(ids)) == 50 and min(ids) == 100

    def test_invalid_fraction_bounds(self):
        with pytest.raises(ValueError):
            generate_employees(1, invalid_fraction=2.0)

    def test_definition_loads_into_engine(self):
        table = Table(employee_definition())
        table.insert_many(generate_employees(20, seed=7))
        assert len(table) == 20


class TestAddressWorkload:
    def test_addresses_conform_to_scheme_and_dependency(self):
        scheme = address_scheme()
        dependency = address_dependency()
        for values in generate_addresses(100, seed=8):
            tup = FlexTuple(values)
            assert scheme.admits(tup.attributes)
            assert dependency.check_tuple(tup)

    def test_every_structural_variant_occurs(self):
        tuples = [FlexTuple(v) for v in generate_addresses(200, seed=9)]
        assert any("po_box" in t for t in tuples)
        assert any("street" in t and "house_number" in t for t in tuples)
        assert any("street" in t and "house_number" not in t for t in tuples)
        assert any("email" in t for t in tuples)
        assert any("fax_number" in t for t in tuples)

    def test_definition_loads_into_engine(self):
        table = Table(address_definition())
        table.insert_many(generate_addresses(30, seed=10))
        assert len(table) == 30


class TestRandomGenerators:
    def test_random_scheme_is_wellformed(self):
        for seed in range(4):
            scheme = random_flexible_scheme(seed=seed)
            assert scheme.count_variants() >= 1
            for combo in scheme.dnf():
                assert scheme.admits(combo)

    def test_random_ead_structure(self):
        dependency = random_explicit_ad(variant_count=4, attributes_per_variant=2, seed=0)
        assert len(dependency.variants) == 4
        assert dependency.is_disjoint()

    def test_random_ead_with_shared_attributes_overlaps(self):
        dependency = random_explicit_ad(variant_count=3, attributes_per_variant=2,
                                        shared_attributes=1, seed=0)
        assert not dependency.is_disjoint()

    def test_random_instance_respects_scheme(self):
        scheme = random_flexible_scheme(seed=2)
        for tup in random_instance(scheme, count=50, seed=3):
            assert scheme.admits(tup.attributes)

    def test_instance_for_dependency_valid(self):
        dependency = random_explicit_ad(seed=4)
        tuples = instance_for_dependency(dependency, count=60, seed=5)
        assert all(dependency.check_tuple(t) for t in tuples)
        # the declared dependency is discoverable from the generated instance
        reconstructed = discover_explicit_ad(tuples, dependency.lhs, dependency.rhs)
        assert {frozenset(v.attributes.names) for v in reconstructed.variants} <= \
               {frozenset(v.attributes.names) for v in dependency.variants}

    def test_instance_for_dependency_invalid_fraction(self):
        dependency = random_explicit_ad(seed=6)
        tuples = instance_for_dependency(dependency, count=100, invalid_fraction=1.0, seed=7)
        assert any(not dependency.check_tuple(t) for t in tuples)
