"""Tests for dependency discovery over instances."""

import pytest

from repro.core.dependencies import ad, fd
from repro.core.inference import (
    discover_ads,
    discover_explicit_ad,
    discover_fds,
    maximal_ad_rhs,
    maximal_fd_rhs,
)
from repro.errors import DependencyError
from repro.model.attributes import attrset
from repro.model.tuples import FlexTuple
from repro.workloads.employees import employee_dependency, generate_employees


@pytest.fixture
def employee_instance():
    return [FlexTuple(t) for t in generate_employees(80, seed=13)]


class TestMaximalRhs:
    def test_ad_rhs(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1, a=2), FlexTuple(k=2, b=1)]
        rhs = maximal_ad_rhs(tuples, attrset(["k"]), attrset(["a", "b"]))
        assert rhs == attrset(["a", "b"])

    def test_ad_rhs_drops_unstable_attribute(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1)]
        rhs = maximal_ad_rhs(tuples, attrset(["k"]), attrset(["a"]))
        assert rhs == attrset([])

    def test_fd_rhs_requires_equal_values(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1, a=2)]
        assert maximal_fd_rhs(tuples, attrset(["k"]), attrset(["a"])) == attrset([])
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1, a=1)]
        assert maximal_fd_rhs(tuples, attrset(["k"]), attrset(["a"])) == attrset(["a"])


class TestDiscoverAds:
    def test_finds_the_jobtype_dependency(self, employee_instance):
        discovered = discover_ads(employee_instance, max_lhs=1)
        jobtype_ads = [d for d in discovered if d.lhs == attrset(["jobtype"])]
        assert jobtype_ads
        assert employee_dependency().rhs.issubset(jobtype_ads[0].rhs)

    def test_discovered_dependencies_hold(self, employee_instance):
        for dependency in discover_ads(employee_instance, max_lhs=2):
            assert dependency.holds_in(employee_instance)

    def test_no_false_positive_for_violating_instance(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1, b=1)]
        discovered = discover_ads(tuples, max_lhs=1)
        assert not any(d.lhs == attrset(["k"]) and ("a" in d.rhs or "b" in d.rhs)
                       for d in discovered)

    def test_trivial_dependencies_excluded_by_default(self):
        tuples = [FlexTuple(k=1, a=1)]
        for dependency in discover_ads(tuples, max_lhs=1):
            assert not dependency.rhs.issubset(dependency.lhs)


class TestDiscoverFds:
    def test_key_like_attribute(self):
        tuples = [FlexTuple(id=i, v=i * 10) for i in range(5)]
        discovered = discover_fds(tuples, max_lhs=1)
        assert any(d.lhs == attrset(["id"]) and "v" in d.rhs for d in discovered)

    def test_discovered_fds_hold(self, employee_instance):
        for dependency in discover_fds(employee_instance, max_lhs=1):
            assert dependency.holds_in(employee_instance)

    def test_non_functional_attribute_not_reported(self):
        tuples = [FlexTuple(k=1, v=1), FlexTuple(k=1, v=2)]
        assert not any("v" in d.rhs for d in discover_fds(tuples, max_lhs=1))


class TestDiscoverExplicitAd:
    def test_reconstructs_the_jobtype_ead(self, employee_instance):
        reference = employee_dependency()
        reconstructed = discover_explicit_ad(employee_instance, ["jobtype"], reference.rhs)
        assert reconstructed.lhs == reference.lhs
        by_attrs = {frozenset(v.attributes.names) for v in reconstructed.variants}
        expected = {frozenset(v.attributes.names) for v in reference.variants}
        assert by_attrs == expected

    def test_reconstructed_ead_validates_original_instance(self, employee_instance):
        reconstructed = discover_explicit_ad(employee_instance, ["jobtype"])
        assert reconstructed.holds_in(employee_instance)

    def test_conflicting_instance_rejected(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=1, b=1)]
        with pytest.raises(DependencyError):
            discover_explicit_ad(tuples, ["k"])

    def test_instance_without_variants_rejected(self):
        tuples = [FlexTuple(k=1), FlexTuple(k=2)]
        with pytest.raises(DependencyError):
            discover_explicit_ad(tuples, ["k"])

    def test_values_outside_variants_map_to_empty(self):
        tuples = [FlexTuple(k=1, a=1), FlexTuple(k=2)]
        dependency = discover_explicit_ad(tuples, ["k"], ["a"])
        assert dependency.required_attributes(FlexTuple(k=2)) == attrset([])
        assert dependency.required_attributes(FlexTuple(k=1)) == attrset(["a"])
