"""End-to-end integration tests spanning several subsystems."""

import pytest

from repro.algebra import (
    Evaluator,
    Extension,
    OuterUnion,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import Comparison
from repro.baselines import NullPaddedTable
from repro.core.closure import implies
from repro.core.inference import discover_ads, discover_explicit_ad
from repro.core.subtyping import derive_subtype_family
from repro.embedding import translate_scheme
from repro.engine import Database
from repro.er import (
    EntityType,
    Specialization,
    SpecializationSubclass,
    horizontal_decomposition,
    specialization_to_flexible_relation,
    vertical_decomposition,
)
from repro.errors import DependencyViolation
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.model.tuples import FlexTuple
from repro.types import RecordType, is_record_subtype
from repro.workloads.employees import employee_definition, employee_dependency, generate_employees


class TestErToEngineToQueries:
    """ER design → flexible relation + AD → engine → optimized queries."""

    def _build_database(self):
        entity = EntityType(
            "vehicle",
            {
                "vin": IntDomain(),
                "brand": StringDomain(),
                "kind": EnumDomain(["car", "truck", "motorcycle"]),
            },
            key=["vin"],
        )
        specialization = Specialization(entity, ["kind"], [
            SpecializationSubclass("car", {"kind": "car"},
                                   {"doors": IntDomain(), "trunk_volume": FloatDomain()}),
            SpecializationSubclass("truck", {"kind": "truck"},
                                   {"payload": FloatDomain(), "axles": IntDomain()}),
            SpecializationSubclass("motorcycle", {"kind": "motorcycle"},
                                   {"engine_cc": IntDomain()}),
        ])
        mapping = specialization_to_flexible_relation(specialization)
        database = Database()
        table = mapping.create_table(database, name="vehicles")
        table.insert_many([
            {"vin": 1, "brand": "ax", "kind": "car", "doors": 4, "trunk_volume": 0.5},
            {"vin": 2, "brand": "bx", "kind": "truck", "payload": 12.0, "axles": 3},
            {"vin": 3, "brand": "cx", "kind": "motorcycle", "engine_cc": 600},
            {"vin": 4, "brand": "dx", "kind": "car", "doors": 2, "trunk_volume": 0.3},
        ])
        return database, mapping

    def test_dependency_enforcement_from_er_design(self):
        database, _ = self._build_database()
        with pytest.raises(DependencyViolation):
            database.insert("vehicles", {"vin": 9, "brand": "zz", "kind": "car", "engine_cc": 1000})

    def test_guard_elimination_from_er_design(self):
        database, _ = self._build_database()
        expr = TypeGuardNode(
            Selection(RelationRef("vehicles"), Comparison("kind", "=", "car")), ["doors"]
        )
        result, report = database.execute_with_report(expr, optimize=True)
        assert report.changed
        assert {t["vin"] for t in result} == {1, 4}

    def test_subtype_family_round_trip(self):
        _, mapping = self._build_database()
        family = mapping.subtype_family()
        assert set(family.subtype_names()) == {"car", "truck", "motorcycle"}
        no_kind = RecordType("anonymous", {"brand": StringDomain()})
        assert family.classify_candidate(no_kind) == "lost-connection"

    def test_embedding_round_trip(self):
        _, mapping = self._build_database()
        translation = translate_scheme(mapping.scheme, mapping.dependency, type_name="vehicle")
        record = translation.record_type
        assert record.tag_field == "kind"
        assert record.accepts(FlexTuple(vin=1, brand="ax", kind="car", doors=4, trunk_volume=0.5))
        assert not record.accepts(FlexTuple(vin=1, brand="ax", kind="car", engine_cc=5))


class TestDecompositionAndQueriesAgree:
    """Horizontal decomposition + tagged outer union behaves like the single relation."""

    def _database_with_fragments(self):
        database = Database()
        definition = employee_definition()
        employees = database.create_table("employees", definition.scheme,
                                          domains=definition.domains, key=definition.key,
                                          dependencies=definition.dependencies)
        employees.insert_many(generate_employees(40, seed=41))
        decomposition = horizontal_decomposition(employees, employee_dependency())
        for name, tuples in decomposition.fragments.items():
            fragment_table = database.create_table(
                "frag_{}".format(name.replace(" ", "_")), definition.scheme,
                domains=definition.domains,
            )
            fragment_table.insert_many(tuples)
        return database, decomposition

    def test_outer_union_of_fragments_equals_base_relation(self):
        database, decomposition = self._database_with_fragments()
        names = ["frag_{}".format(n.replace(" ", "_")) for n in decomposition.fragment_names()]
        expression = RelationRef(names[0])
        for name in names[1:]:
            expression = OuterUnion(expression, RelationRef(name))
        restored = database.execute(expression)
        base = database.execute(RelationRef("employees"))
        assert restored.tuples == base.tuples

    def test_selection_on_fragments_prunes_branches(self):
        database, decomposition = self._database_with_fragments()
        secretaries = Extension(RelationRef("frag_secretary"), "source", "secretary")
        salesmen = Extension(RelationRef("frag_salesman"), "source", "salesman")
        query = Selection(OuterUnion(secretaries, salesmen), Comparison("source", "=", "secretary"))
        optimized, report = database.execute_with_report(query, optimize=True)
        unoptimized = database.execute(query, optimize=False)
        assert report.changed
        assert optimized.tuples == unoptimized.tuples
        assert optimized.stats.total_work < unoptimized.stats.total_work

    def test_vertical_decomposition_joins_back_inside_engine(self):
        database = Database()
        definition = employee_definition()
        employees = database.create_table("employees", definition.scheme,
                                          domains=definition.domains, key=definition.key,
                                          dependencies=definition.dependencies)
        employees.insert_many(generate_employees(25, seed=43))
        decomposition = vertical_decomposition(employees, employee_dependency(), key=["emp_id"])
        assert decomposition.restore() == employees.tuples


class TestDiscoveryOnLegacyData:
    """Mining dependencies from a NULL-padded legacy table and migrating it."""

    def test_migration_pipeline(self):
        definition = employee_definition()
        legacy = NullPaddedTable(definition.scheme.attributes, employee_dependency())
        legacy.insert_many([FlexTuple(v) for v in generate_employees(60, seed=47)])

        heterogeneous = legacy.to_tuples()
        mined = discover_explicit_ad(heterogeneous, ["jobtype"],
                                     employee_dependency().rhs)
        database = Database()
        table = database.create_table("migrated", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=[mined])
        table.insert_many(heterogeneous)
        assert len(table) == len(heterogeneous)
        # the mined dependency implies (and is implied by) the designed one on this data
        designed = employee_dependency()
        assert implies([mined], designed.to_ad())
        assert implies([designed], mined.to_ad())

    def test_discovered_ads_enable_guard_elimination(self):
        definition = employee_definition()
        tuples = [FlexTuple(v) for v in generate_employees(60, seed=53)]
        mined = discover_explicit_ad(tuples, ["jobtype"], employee_dependency().rhs)
        database = Database()
        table = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=[mined])
        table.insert_many(tuples)
        expr = TypeGuardNode(
            Selection(RelationRef("employees"), Comparison("jobtype", "=", "secretary")),
            ["typing_speed"],
        )
        _, report = database.execute_with_report(expr, optimize=True)
        assert report.changed


class TestSubtypingEndToEnd:
    def test_projection_of_query_result_loses_the_subtype_connection(self, employee_database):
        # Querying employees and projecting jobtype away yields tuples typed only by
        # <salary, ...>; the family flags such a supertype as lost-connection.
        definition = employee_database.catalog.definition("employees")
        family = derive_subtype_family(
            definition.scheme.attributes,
            employee_dependency(),
            domains=definition.domains,
        )
        expr = Projection(RelationRef("employees"), ["name", "salary"])
        result = employee_database.execute(expr)
        assert all(t.attributes == attrset(["name", "salary"]) for t in result)
        candidate = RecordType("projected", {"name": StringDomain(), "salary": FloatDomain()})
        assert family.classify_candidate(candidate) == "lost-connection"
        for name in family.subtype_names():
            assert is_record_subtype(family.subtype(name), candidate)
