"""Tests for the algebra expression AST and its evaluator."""

import pytest

from repro.algebra import (
    Difference,
    EvaluationResult,
    Evaluator,
    Extension,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import Comparison, TruePredicate
from repro.errors import AlgebraError
from repro.model.attributes import attrset
from repro.model.relation import FlexibleRelation
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple


@pytest.fixture
def source():
    """Two small base relations addressed by name."""
    people = FlexibleRelation(
        FlexibleScheme(2, 3, ["pid", "name", "nickname"]),
        validate=False,
        name="people",
    )
    people.insert_many([
        {"pid": 1, "name": "ada"},
        {"pid": 2, "name": "bob", "nickname": "b"},
        {"pid": 3, "name": "cyd"},
    ])
    cities = FlexibleRelation(FlexibleScheme.relational(["cid", "city"]), validate=False, name="cities")
    cities.insert_many([{"cid": 10, "city": "ulm"}, {"cid": 20, "city": "bonn"}])
    orders = FlexibleRelation(FlexibleScheme.relational(["pid", "item"]), validate=False, name="orders")
    orders.insert_many([{"pid": 1, "item": "book"}, {"pid": 2, "item": "pen"},
                        {"pid": 1, "item": "lamp"}])
    return {"people": people, "cities": cities, "orders": orders}


def evaluate(expression, source):
    return Evaluator(source).evaluate(expression)


class TestLeavesAndErrors:
    def test_relation_ref(self, source):
        result = evaluate(RelationRef("people"), source)
        assert len(result) == 3

    def test_unknown_relation(self, source):
        with pytest.raises(AlgebraError):
            evaluate(RelationRef("missing"), source)

    def test_no_source(self):
        with pytest.raises(AlgebraError):
            evaluate(RelationRef("people"), None)

    def test_empty_name_rejected(self):
        with pytest.raises(AlgebraError):
            RelationRef("")


class TestUnaryOperators:
    def test_selection(self, source):
        result = evaluate(Selection(RelationRef("people"), Comparison("pid", ">", 1)), source)
        assert {t["pid"] for t in result} == {2, 3}

    def test_selection_none_predicate_is_true(self, source):
        assert len(evaluate(Selection(RelationRef("people"), None), source)) == 3

    def test_type_guard(self, source):
        result = evaluate(TypeGuardNode(RelationRef("people"), ["nickname"]), source)
        assert {t["pid"] for t in result} == {2}

    def test_projection_keeps_existing_attributes(self, source):
        result = evaluate(Projection(RelationRef("people"), ["name", "nickname"]), source)
        assert FlexTuple(name="ada") in result
        assert FlexTuple(name="bob", nickname="b") in result

    def test_projection_needs_attributes(self, source):
        with pytest.raises(AlgebraError):
            Projection(RelationRef("people"), [])

    def test_projection_eliminates_duplicates(self, source):
        result = evaluate(Projection(RelationRef("orders"), ["pid"]), source)
        assert len(result) == 2

    def test_extension(self, source):
        result = evaluate(Extension(RelationRef("cities"), "country", "de"), source)
        assert all(t["country"] == "de" for t in result)

    def test_extension_single_attribute_only(self, source):
        with pytest.raises(AlgebraError):
            Extension(RelationRef("cities"), ["a", "b"], 1)

    def test_rename(self, source):
        result = evaluate(Rename(RelationRef("cities"), {"city": "town"}), source)
        assert all("town" in t and "city" not in t for t in result)

    def test_rename_needs_mapping(self, source):
        with pytest.raises(AlgebraError):
            Rename(RelationRef("cities"), {})

    def test_fluent_construction(self, source):
        expression = RelationRef("people").select(Comparison("pid", "=", 2)).project(["name"])
        result = evaluate(expression, source)
        assert result.tuples == {FlexTuple(name="bob")}


class TestBinaryOperators:
    def test_product(self, source):
        result = evaluate(Product(RelationRef("people"), RelationRef("cities")), source)
        assert len(result) == 6

    def test_union_mixes_shapes(self, source):
        result = evaluate(Union(RelationRef("people"), RelationRef("cities")), source)
        assert len(result) == 5

    def test_outer_union_is_plain_union_on_flexible_relations(self, source):
        plain = evaluate(Union(RelationRef("people"), RelationRef("cities")), source)
        outer = evaluate(OuterUnion(RelationRef("people"), RelationRef("cities")), source)
        assert plain.tuples == outer.tuples

    def test_difference(self, source):
        minus = Difference(RelationRef("people"),
                           Selection(RelationRef("people"), Comparison("pid", "=", 1)))
        result = evaluate(minus, source)
        assert {t["pid"] for t in result} == {2, 3}

    def test_natural_join(self, source):
        result = evaluate(NaturalJoin(RelationRef("people"), RelationRef("orders")), source)
        assert len(result) == 3
        assert all(t.is_defined_on(["pid", "name", "item"]) for t in result)

    def test_natural_join_with_explicit_attributes(self, source):
        join = NaturalJoin(RelationRef("people"), RelationRef("orders"), on=["pid"])
        assert len(evaluate(join, source)) == 3

    def test_multiway_join_keeps_unmatched_master_tuples(self, source):
        join = MultiwayJoin([RelationRef("people"), RelationRef("orders")], on=["pid"])
        result = evaluate(join, source)
        # pid 3 has no order but stays
        assert any(t["pid"] == 3 and "item" not in t for t in result)
        assert any(t["pid"] == 1 and t.get("item") == "book" for t in result)

    def test_multiway_join_needs_two_inputs(self, source):
        with pytest.raises(AlgebraError):
            MultiwayJoin([RelationRef("people")], on=["pid"])

    def test_multiway_join_needs_join_attributes(self, source):
        with pytest.raises(AlgebraError):
            MultiwayJoin([RelationRef("people"), RelationRef("orders")], on=[])


class TestTreeRebuilding:
    def test_with_children_replaces_child(self, source):
        original = Selection(RelationRef("people"), Comparison("pid", "=", 1))
        replaced = original.with_children([RelationRef("orders")])
        assert isinstance(replaced, Selection)
        assert replaced.child.name == "orders"
        assert replaced.predicate is original.predicate

    def test_leaf_with_children_rejects_children(self):
        with pytest.raises(AlgebraError):
            RelationRef("people").with_children([RelationRef("x")])

    def test_pretty_renders_tree(self, source):
        expression = RelationRef("people").select(TruePredicate()).project(["name"])
        rendered = expression.pretty()
        assert "project" in rendered and "select" in rendered and "people" in rendered


class TestExecutionStats:
    def test_counters_accumulate(self, source):
        expression = RelationRef("people").select(Comparison("pid", ">", 0)).guard(["nickname"])
        result = evaluate(expression, source)
        stats = result.stats
        assert stats.tuples_scanned >= 3
        assert stats.predicate_evaluations == 3
        assert stats.guard_checks == 3
        assert stats.operators_executed == 3
        assert stats.total_work > 0
        assert stats.as_dict()["tuples_produced"] == len(result)

    def test_join_pairs_counted(self, source):
        result = evaluate(Product(RelationRef("people"), RelationRef("cities")), source)
        assert result.stats.join_pairs_considered == 6

    def test_result_helpers(self, source):
        result = evaluate(RelationRef("cities"), source)
        assert {"cid": 10, "city": "ulm"} in result
        assert attrset(["cid", "city"]) in result.attribute_combinations()
        assert "EvaluationResult" in repr(result)

    def test_database_source(self, employee_database):
        result = evaluate(RelationRef("employees"), employee_database)
        assert len(result) == 60
