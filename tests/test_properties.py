"""Property-based tests (hypothesis) on the core data structures and invariants.

The central properties:

* soundness of the axiom systems — anything syntactically derivable holds in every
  (randomly generated) satisfying relation;
* agreement of syntactic and semantic implication (the completeness direction via
  the appendix construction);
* consistency of the lazy scheme-membership test with the materialized DNF;
* Theorem 4.3 propagation rules hold empirically on random instances;
* decompositions along an AD are lossless;
* closure monotonicity and idempotence.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.closure import attribute_closure, functional_closure, implies
from repro.core.dependencies import AttributeDependency, FunctionalDependency
from repro.core.implication import random_satisfying_relation, semantically_implies
from repro.core.inference import discover_explicit_ad
from repro.core.propagation import propagate_projection, propagate_selection, propagate_tagged_union
from repro.er.decomposition import horizontal_decomposition, vertical_decomposition
from repro.model.attributes import AttributeSet, attrset
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.workloads.generators import instance_for_dependency, random_explicit_ad

#: a small fixed universe keeps the search space meaningful but tractable
UNIVERSE = ["A", "B", "C", "D"]

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def subset_strategy(universe=UNIVERSE, min_size=0):
    return st.sets(st.sampled_from(universe), min_size=min_size, max_size=len(universe))


def ad_strategy():
    return st.builds(
        AttributeDependency,
        subset_strategy(min_size=1),
        subset_strategy(),
    )


def fd_strategy():
    return st.builds(
        FunctionalDependency,
        subset_strategy(min_size=1),
        subset_strategy(),
    )


def dependency_set_strategy():
    return st.lists(st.one_of(ad_strategy(), fd_strategy()), min_size=0, max_size=4)


class TestAxiomSoundness:
    @given(deps=dependency_set_strategy(), lhs=subset_strategy(min_size=1), seed=st.integers(0, 1000))
    def test_derivable_ads_hold_in_random_models(self, deps, lhs, seed):
        closure = attribute_closure(lhs, deps, combined=True)
        candidate = AttributeDependency(lhs, closure)
        assert implies(deps, candidate)
        relation = random_satisfying_relation(deps, universe=UNIVERSE, size=12,
                                              rng=random.Random(seed))
        assert candidate.holds_in(relation)

    @given(deps=dependency_set_strategy(), lhs=subset_strategy(min_size=1), seed=st.integers(0, 1000))
    def test_derivable_fds_hold_in_random_models(self, deps, lhs, seed):
        closure = functional_closure(lhs, deps)
        candidate = FunctionalDependency(lhs, closure)
        relation = random_satisfying_relation(deps, universe=UNIVERSE, size=12,
                                              rng=random.Random(seed))
        assert candidate.holds_in(relation)

    @given(deps=dependency_set_strategy(), candidate=ad_strategy())
    def test_syntactic_and_semantic_implication_agree(self, deps, candidate):
        assert implies(deps, candidate) == semantically_implies(deps, candidate)

    @given(deps=dependency_set_strategy(), lhs=subset_strategy(min_size=1))
    def test_subsumption_functional_closure_inside_attribute_closure(self, deps, lhs):
        assert functional_closure(lhs, deps).issubset(attribute_closure(lhs, deps))

    @given(deps=dependency_set_strategy(), lhs=subset_strategy(min_size=1),
           extra=subset_strategy())
    def test_closure_monotone_in_lhs(self, deps, lhs, extra):
        small = attribute_closure(lhs, deps)
        large = attribute_closure(attrset(lhs) | attrset(extra), deps)
        # Monotonicity holds for the *functional* part; for the AD part it holds
        # because every dependency applicable under lhs stays applicable under lhs ∪ extra.
        assert small.issubset(large | attrset(lhs))

    @given(deps=dependency_set_strategy(), lhs=subset_strategy(min_size=1))
    def test_reflexivity_lhs_always_in_closure(self, deps, lhs):
        assert attrset(lhs).issubset(attribute_closure(lhs, deps))
        assert attrset(lhs).issubset(functional_closure(lhs, deps))


class TestSchemeProperties:
    @given(
        base=st.integers(min_value=1, max_value=3),
        groups=st.integers(min_value=1, max_value=2),
        per_group=st.integers(min_value=2, max_value=3),
        seed=st.integers(0, 100),
    )
    def test_dnf_and_admits_agree(self, base, groups, per_group, seed):
        from repro.workloads.generators import random_flexible_scheme

        scheme = random_flexible_scheme(base_attributes=base, variant_groups=groups,
                                        attributes_per_group=per_group, seed=seed)
        combos = scheme.dnf()
        for combo in combos:
            assert scheme.admits(combo)
        assert scheme.count_variants() == len(combos)

    @given(
        seed=st.integers(0, 100),
        drop=st.integers(min_value=0, max_value=3),
    )
    def test_admits_rejects_mutilated_combinations(self, seed, drop):
        from repro.workloads.generators import random_flexible_scheme

        scheme = random_flexible_scheme(seed=seed)
        combos = sorted(scheme.dnf(), key=lambda c: c.names)
        combo = combos[seed % len(combos)]
        names = list(combo.names)
        removed = names[: min(drop, len(names))]
        mutilated = attrset([n for n in names if n not in removed])
        assert scheme.admits(mutilated) == (mutilated in combos)


class TestDependencyProperties:
    @given(variant_count=st.integers(2, 4), per_variant=st.integers(1, 3),
           seed=st.integers(0, 100), count=st.integers(5, 40))
    def test_generated_instances_satisfy_their_ead(self, variant_count, per_variant, seed, count):
        dependency = random_explicit_ad(variant_count=variant_count,
                                        attributes_per_variant=per_variant, seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        assert dependency.holds_in(tuples)
        assert dependency.to_ad().holds_in(tuples)

    @given(variant_count=st.integers(2, 4), seed=st.integers(0, 100), count=st.integers(10, 40))
    def test_discovery_roundtrip(self, variant_count, seed, count):
        dependency = random_explicit_ad(variant_count=variant_count, seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        reconstructed = discover_explicit_ad(tuples, dependency.lhs, dependency.rhs)
        assert reconstructed.holds_in(tuples)
        # every reconstructed variant is one of the declared variants
        declared = {frozenset(v.attributes.names) for v in dependency.variants}
        assert {frozenset(v.attributes.names) for v in reconstructed.variants} <= declared

    @given(variant_count=st.integers(2, 3), seed=st.integers(0, 50), count=st.integers(10, 30),
           keep=st.sets(st.integers(0, 5), min_size=1, max_size=4))
    def test_projection_propagation_holds_empirically(self, variant_count, seed, count, keep):
        dependency = random_explicit_ad(variant_count=variant_count, seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        all_attributes = sorted({a.name for t in tuples for a in t.attributes})
        kept = attrset([all_attributes[i % len(all_attributes)] for i in keep])
        projected = [t.project_existing(kept) for t in tuples]
        for propagated in propagate_projection([dependency.to_ad()], kept):
            assert propagated.holds_in(projected)

    @given(seed=st.integers(0, 50), count=st.integers(5, 30))
    def test_tagged_union_propagation_holds_empirically(self, seed, count):
        dependency = random_explicit_ad(seed=seed)
        left = instance_for_dependency(dependency, count=count, seed=seed)
        right = instance_for_dependency(dependency, count=count, seed=seed + 1)
        union = [t.extend(tag="l") for t in left] + [t.extend(tag="r") for t in right]
        for propagated in propagate_tagged_union([dependency.to_ad()], [dependency.to_ad()], "tag"):
            assert propagated.holds_in(union)

    @given(seed=st.integers(0, 50), count=st.integers(5, 30), threshold=st.integers(0, 1000))
    def test_selection_propagation_holds_empirically(self, seed, count, threshold):
        dependency = random_explicit_ad(seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        selected = [t for t in tuples if t["id"] <= threshold]
        for propagated in propagate_selection([dependency.to_ad()]):
            assert propagated.holds_in(selected)


class TestDecompositionProperties:
    @given(variant_count=st.integers(2, 4), seed=st.integers(0, 100), count=st.integers(5, 50))
    def test_horizontal_decomposition_is_lossless(self, variant_count, seed, count):
        dependency = random_explicit_ad(variant_count=variant_count, seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        decomposition = horizontal_decomposition(tuples, dependency)
        assert decomposition.is_lossless(tuples)

    @given(variant_count=st.integers(2, 4), seed=st.integers(0, 100), count=st.integers(5, 50))
    def test_vertical_decomposition_is_lossless(self, variant_count, seed, count):
        dependency = random_explicit_ad(variant_count=variant_count, seed=seed)
        tuples = instance_for_dependency(dependency, count=count, seed=seed)
        decomposition = vertical_decomposition(tuples, dependency, key=["id"])
        assert decomposition.is_lossless(tuples)


class TestSerializationProperties:
    @given(
        base=st.integers(min_value=1, max_value=3),
        groups=st.integers(min_value=1, max_value=2),
        seed=st.integers(0, 100),
    )
    def test_scheme_round_trip(self, base, groups, seed):
        from repro.engine.serialization import scheme_from_dict, scheme_to_dict
        from repro.workloads.generators import random_flexible_scheme

        scheme = random_flexible_scheme(base_attributes=base, variant_groups=groups, seed=seed)
        restored = scheme_from_dict(scheme_to_dict(scheme))
        assert restored == scheme
        assert restored.dnf() == scheme.dnf()

    @given(variant_count=st.integers(2, 4), per_variant=st.integers(1, 3),
           shared=st.integers(0, 1), seed=st.integers(0, 100))
    def test_explicit_ad_round_trip(self, variant_count, per_variant, shared, seed):
        from repro.engine.serialization import dependency_from_dict, dependency_to_dict

        dependency = random_explicit_ad(variant_count=variant_count,
                                        attributes_per_variant=per_variant,
                                        shared_attributes=shared, seed=seed)
        restored = dependency_from_dict(dependency_to_dict(dependency))
        assert restored == dependency
        tuples = instance_for_dependency(dependency, count=15, seed=seed)
        assert restored.holds_in(tuples)


class TestTupleProperties:
    @given(values=st.dictionaries(st.sampled_from(UNIVERSE), st.integers(0, 5),
                                  min_size=1, max_size=4),
           keep=subset_strategy())
    def test_projection_is_idempotent(self, values, keep):
        tup = FlexTuple(values)
        once = tup.project_existing(keep)
        twice = once.project_existing(keep)
        assert once == twice
        assert once.attributes == (tup.attributes & attrset(keep))

    @given(left=st.dictionaries(st.sampled_from(["A", "B"]), st.integers(0, 3), min_size=0),
           right=st.dictionaries(st.sampled_from(["C", "D"]), st.integers(0, 3), min_size=0))
    def test_merge_of_disjoint_tuples_is_union(self, left, right):
        merged = FlexTuple(left).merge(FlexTuple(right))
        assert merged.attributes == attrset(list(left) + list(right))
