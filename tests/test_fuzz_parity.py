"""Differential fuzz-parity harness: random trees, three engines, one answer.

A seeded generator grows random algebra trees over small workload tables using
**every** operator the engine knows — the classic relational core *and* the
analytic additions (``Aggregate``, ``Sort``, ``Limit``, scalar
``SubqueryExtension``).  Each tree is executed through the naive set evaluator,
the row engine and the vectorized batch engine via
:func:`test_exec_parity.assert_parity`, which asserts identical result sets,
identical ``ExecutionStats`` totals and identical per-operator counters
between the row and batch runs.  Error outcomes must agree on *rejection*
(every engine raises) but not on the class: a random tree can carry several
faulty operators at once, and which fault surfaces first depends on pull
order — implementation-defined across engines.  The curated corpus in
``test_exec_parity.py`` still pins exact error classes for single-fault trees.

The CI budget is fixed: ``SEEDS × TREES_PER_SEED`` = 500 trees under pinned
seeds, so a red run is reproducible bit-for-bit.  On the first failing tree
the harness *shrinks* — it repeatedly descends into any child subtree that
still fails parity — and reports the minimal failing expression's ``pretty()``
form plus the seed metadata needed to replay it.

Intentionally adversarial generator choices:

* subqueries are ~70% well-formed scalars (``Limit(Projection(E, [a]), 1)``
  or a global count aggregate, both guaranteed ≤/== 1 tuple × 1 attribute)
  and ~30% arbitrary subtrees, so the scalar-arity *error* paths are fuzzed
  for class parity too;
* extension attributes sometimes collide with real table attributes
  (TupleError parity) and ``sum``/``avg`` run over non-numeric columns
  (AlgebraError parity);
* batch sizes are drawn from {1, 3, 17, 256} so chunk boundaries move.
"""

import os
import random

import pytest

from test_exec_parity import _outcome, assert_parity

from repro.algebra import (
    Aggregate,
    Difference,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    PresencePredicate,
    TruePredicate,
)
from repro.algebra import Evaluator
from repro.errors import ReproError
from repro.model.tuples import FlexTuple
from repro.workloads.analytics import generate_orders
from repro.workloads.employees import generate_employees

#: the fixed CI budget — SEEDS × TREES_PER_SEED random trees, pinned seeds;
#: REPRO_FUZZ_SEED=<n> narrows the run to that one seed (reproducing a red
#: CI run locally without paying for the other nine)
SEEDS = ([int(os.environ["REPRO_FUZZ_SEED"])]
         if os.environ.get("REPRO_FUZZ_SEED") else range(10))
TREES_PER_SEED = 50

#: where a failing tree's shrunk reproduction is written (CI uploads it)
FUZZ_ARTIFACT = os.environ.get("REPRO_FUZZ_ARTIFACT", "fuzz-failure.txt")

#: maximum tree depth handed to the generator
MAX_DEPTH = 4

AGGREGATE_FUNCS = ("count", "count_attr", "sum", "min", "max", "avg")
BATCH_SIZES = (1, 3, 17, 256)


# -- random tree generator -------------------------------------------------------------------


def _random_predicate(rng, attributes, values):
    kind = rng.randrange(6)
    attribute = rng.choice(attributes)
    value = rng.choice(values)
    if kind == 0:
        return Comparison(attribute, rng.choice(["=", "<", ">", "<=", ">=", "!="]), value)
    if kind == 1:
        return PresencePredicate([attribute, rng.choice(attributes)])
    if kind == 2:
        return And(Comparison(attribute, ">", value),
                   Comparison(rng.choice(attributes), "<", rng.choice(values)))
    if kind == 3:
        return Or(Comparison(attribute, "=", value),
                  Comparison(rng.choice(attributes), "=", rng.choice(values)))
    if kind == 4:
        return Not(Comparison(attribute, "=", value))
    return TruePredicate()


def _random_specs(rng, attributes, group_by):
    """1–3 aggregate specs with generated output names that cannot collide."""
    specs = []
    for index in range(rng.randrange(1, 4)):
        func = rng.choice(AGGREGATE_FUNCS)
        output = "fz{}".format(index)
        if output in group_by:  # pragma: no cover - outputs never look like attrs
            continue
        if func == "count":
            specs.append(("count", None, output))
        elif func == "count_attr":
            specs.append(("count", rng.choice(attributes), output))
        else:
            specs.append((func, rng.choice(attributes), output))
    return tuple(specs)


def _random_sort_keys(rng, attributes):
    keys = rng.sample(attributes, rng.randrange(1, 3))
    return tuple("-" + key if rng.random() < 0.5 else key for key in keys)


def _random_subquery(rng, names, attributes, values, depth):
    """~70% guaranteed-scalar subqueries, ~30% arbitrary (error-path fuzzing)."""
    child = _random_expression(rng, names, attributes, values, depth)
    draw = rng.random()
    if draw < 0.35:
        return Limit(Projection(child, [rng.choice(attributes)]), 1)
    if draw < 0.70:
        return Aggregate(child, specs=(("count", None, "c"),))
    return child


def _random_expression(rng, names, attributes, values, depth):
    if depth <= 0 or rng.random() < 0.22:
        return RelationRef(rng.choice(names))
    kind = rng.randrange(14)
    child = lambda: _random_expression(rng, names, attributes, values, depth - 1)
    if kind == 0:
        return Selection(child(), _random_predicate(rng, attributes, values))
    if kind == 1:
        return TypeGuardNode(child(), rng.sample(attributes, rng.randrange(1, 3)))
    if kind == 2:
        return Projection(child(), rng.sample(attributes, rng.randrange(1, 4)))
    if kind == 3:
        return Union(child(), child())
    if kind == 4:
        return OuterUnion(child(), child())
    if kind == 5:
        return Difference(child(), child())
    if kind == 6:
        on = rng.sample(attributes, rng.randrange(1, 3)) if rng.random() < 0.5 else None
        return NaturalJoin(child(), child(), on=on)
    if kind == 7:
        return MultiwayJoin([child(), child()], on=rng.sample(attributes, 1))
    if kind == 8:
        # sometimes collides with a real attribute → TupleError parity
        attribute = rng.choice(attributes) if rng.random() < 0.25 else \
            "tag{}".format(rng.randrange(4))
        return Extension(child(), attribute, rng.choice(values))
    if kind == 9:
        mapping = {rng.choice(attributes): "rn{}".format(rng.randrange(3))}
        return Rename(child(), mapping)
    if kind == 10:
        group_by = tuple(rng.sample(attributes, rng.randrange(0, 3)))
        specs = _random_specs(rng, attributes, group_by)
        if not group_by and not specs:  # pragma: no cover - specs never empty
            specs = (("count", None, "fz0"),)
        return Aggregate(child(), group_by=group_by, specs=specs)
    if kind == 11:
        return Sort(child(), _random_sort_keys(rng, attributes))
    if kind == 12:
        inner = child()
        if rng.random() < 0.6:
            inner = Sort(inner, _random_sort_keys(rng, attributes))
        return Limit(inner, rng.randrange(0, 9))
    attribute = rng.choice(attributes) if rng.random() < 0.2 else \
        "sub{}".format(rng.randrange(3))
    return SubqueryExtension(
        child(), attribute,
        _random_subquery(rng, names, attributes, values, depth - 1))


# -- shrinker --------------------------------------------------------------------------------


def _parity_failure(expression, source, batch_size):
    """The parity AssertionError for this tree, or None if it passes."""
    try:
        assert_parity(expression, source, batch_size=batch_size,
                      strict_error_class=False)
    except AssertionError as error:
        return error
    except ReproError as error:
        # a plan-time rejection escapes assert_parity's per-execution capture;
        # parity still holds iff the naive evaluator rejects the tree too
        naive, _ = _outcome(lambda: Evaluator(source).evaluate(expression))
        if naive[0] == "error":
            return None
        return AssertionError(
            "plan-time {} but naive outcome {}".format(type(error).__name__, naive))
    return None


def _shrink(expression, source, batch_size):
    """Greedily descend into any child subtree that still fails parity."""
    while True:
        for child in expression.children:
            if _parity_failure(child, source, batch_size) is not None:
                expression = child
                break
        else:
            return expression


def _check_tree(expression, source, batch_size, seed, index):
    failure = _parity_failure(expression, source, batch_size)
    if failure is None:
        return
    minimal = _shrink(expression, source, batch_size)
    report = (
        "fuzz parity failure (seed={}, tree={}, batch_size={})\n"
        "reproduce with: REPRO_FUZZ_SEED={} pytest tests/test_fuzz_parity.py\n"
        "minimal failing expression:\n{}\n\noriginal failure:\n{}".format(
            seed, index, batch_size, seed, minimal.pretty(), failure))
    try:
        # written before pytest.fail so CI can upload it as an artifact even
        # though the failure text also lands in the test output
        with open(FUZZ_ARTIFACT, "w") as handle:
            handle.write(report + "\n")
    except OSError:
        pass
    pytest.fail(report)


# -- fixed fuzzing corpus --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fuzz_source():
    """Two small workload tables: employee variants + skewed analytic orders."""
    return {
        "employees": {FlexTuple(**row) for row in generate_employees(28, seed=11)},
        "orders": {FlexTuple(**row)
                   for row in generate_orders(30, regions=4, rare_every=7, seed=5)},
    }


ATTRIBUTES = [
    "emp_id", "name", "salary", "jobtype", "typing_speed", "foreign_languages",
    "order_id", "region", "channel", "amount", "coupon", "store_id",
]
VALUES = [1, 7, 25, 4000.0, 250, "secretary", "salesman", "r0", "r1",
          "online", "store", None]


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_parity_budget(seed, fuzz_source):
    """TREES_PER_SEED random trees per seed through all three engines."""
    rng = random.Random(7000 + seed)
    names = ["employees", "orders"]
    for index in range(TREES_PER_SEED):
        expression = _random_expression(rng, names, ATTRIBUTES, VALUES,
                                        depth=MAX_DEPTH)
        _check_tree(expression, fuzz_source, rng.choice(BATCH_SIZES),
                    seed, index)


def test_shrinker_reports_the_minimal_subtree(fuzz_source):
    """The shrinker descends to the smallest child that still fails.

    A deliberately 'failing' predicate: a tree whose root passes parity but
    is declared failing by a stub keeps the root; a stub that fails on a
    child descends into it.  We exercise the real ``_shrink`` with a fake
    failure predicate via monkeypatching-free indirection: sum over the
    non-numeric ``name`` raises AlgebraError in *all* engines (error parity),
    so parity holds and nothing shrinks — while an artificial always-fails
    probe shows descent terminates at a leaf.
    """
    tree = Union(
        Selection(RelationRef("employees"), TruePredicate()),
        Aggregate(RelationRef("orders"), specs=(("count", None, "c"),)),
    )
    # real predicate: healthy tree → no failure, nothing to shrink
    assert _parity_failure(tree, fuzz_source, 7) is None

    # descent probe: every subtree "fails", so shrinking must reach a leaf
    def descend(expression):
        while True:
            for child in expression.children:
                expression = child
                break
            else:
                return expression

    minimal = descend(tree)
    assert isinstance(minimal, RelationRef)
    assert minimal.pretty().strip() in ("employees", "orders")
