"""Tests for the schema-design advisor."""

import pytest

from repro.core.dependencies import ad, ead, fd
from repro.engine import TableDefinition
from repro.er import advise, dependency_preservation, redundant_dependencies
from repro.model.domains import EnumDomain, IntDomain
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_definition


class TestRedundantDependencies:
    def test_projection_of_declared_dependency_is_redundant(self):
        deps = [ad("k", ["a", "b"]), ad("k", ["a"])]
        assert redundant_dependencies(deps) == [deps[1]]

    def test_independent_dependencies_are_kept(self):
        deps = [ad("k", ["a"]), ad("j", ["b"]), fd("k", ["j"])]
        assert redundant_dependencies(deps) == []

    def test_fd_implied_by_transitivity_is_redundant(self):
        deps = [fd("a", "b"), fd("b", "c"), fd("a", "c")]
        assert redundant_dependencies(deps) == [deps[2]]


class TestDependencyPreservation:
    def test_horizontal_fragments_preserve_the_jobtype_dependency(self, jobtype_ead):
        base = ["emp_id", "name", "salary", "jobtype"]
        fragments = [base + list(variant.attributes.names) for variant in jobtype_ead.variants]
        preserved, lost = dependency_preservation(fragments, [jobtype_ead])
        assert preserved and not lost

    def test_fragment_without_the_determinant_loses_the_dependency(self, jobtype_ead):
        fragments = [["emp_id", "typing_speed", "foreign_languages"],
                     ["emp_id", "products", "sales_commission", "programming_languages"]]
        preserved, lost = dependency_preservation(fragments, [jobtype_ead])
        assert not preserved and lost == [jobtype_ead]

    def test_fd_projection_semantics(self):
        deps = [fd("id", ["a", "b"])]
        preserved, _ = dependency_preservation([["id", "a"], ["id", "b"]], deps)
        assert preserved
        preserved, lost = dependency_preservation([["a", "b"]], deps)
        assert not preserved and lost == deps


class TestAdvise:
    def test_employee_definition_is_clean(self):
        report = advise(employee_definition())
        assert report.clean
        assert report.redundant == []
        assert len(report.specializations) == 1
        advice = report.specializations[0]
        assert advice.disjoint is False           # 'products' is shared
        assert advice.total is True               # all three jobtypes covered
        assert advice.needs_artificial_determinant is False
        assert advice.horizontal_preserves and advice.vertical_preserves
        assert advice.expected_null_cells_per_tuple == 3.0

    def test_summary_mentions_the_findings(self):
        summary = advise(employee_definition()).summary()
        assert "no redundant dependencies" in summary
        assert "specialization on {jobtype}" in summary
        assert "NULL cells per tuple" in summary

    def test_redundant_dependency_is_reported(self):
        definition = employee_definition()
        definition.dependencies.append(ad(["jobtype"], ["typing_speed"]))
        report = advise(definition)
        assert not report.clean
        assert report.redundant == [definition.dependencies[-1]]

    def test_multi_attribute_determinant_flags_embedding_obstacle(self, maiden_name_ead):
        scheme = FlexibleScheme(3, 3, ["sex", "marital_status",
                                       FlexibleScheme(0, 1, ["maiden_name"])])
        definition = TableDefinition(
            "persons", scheme,
            domains={"sex": EnumDomain(["f", "m"]),
                     "marital_status": EnumDomain(["single", "married", "widowed"])},
            dependencies=[maiden_name_ead],
        )
        report = advise(definition)
        advice = report.specializations[0]
        assert advice.needs_artificial_determinant
        assert not report.clean
        assert "artificial determinant" in report.summary()
        # only (f, married) and (f, widowed) are covered out of six combinations
        assert advice.total is False

    def test_totality_unknown_without_finite_domains(self, maiden_name_ead):
        scheme = FlexibleScheme(3, 3, ["sex", "marital_status",
                                       FlexibleScheme(0, 1, ["maiden_name"])])
        definition = TableDefinition("persons", scheme, dependencies=[maiden_name_ead])
        advice = advise(definition).specializations[0]
        assert advice.total is None
        assert "total: unknown" in advise(definition).summary()
