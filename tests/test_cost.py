"""Tests for the static cost model and remaining expression-level behaviours."""

import pytest

from repro.algebra import (
    Difference,
    EmptyRelation,
    Evaluator,
    Extension,
    MultiwayJoin,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import Comparison, FalsePredicate, TruePredicate
from repro.errors import OptimizerError
from repro.model.attributes import attrset
from repro.optimizer.cost import CostEstimate, estimate_cost, measured_cost


class TestEstimateCost:
    def test_base_relation(self, employee_database):
        estimate = estimate_cost(RelationRef("employees"), employee_database)
        assert estimate.cardinality == 60 and estimate.work == 60

    def test_unknown_relation_estimates_zero(self, employee_database):
        assert estimate_cost(RelationRef("missing"), employee_database).cardinality == 0

    def test_empty_relation(self, employee_database):
        estimate = estimate_cost(EmptyRelation(), employee_database)
        assert estimate.cardinality == 0 and estimate.work == 0

    def test_selection_reduces_cardinality_and_adds_work(self, employee_database):
        base = estimate_cost(RelationRef("employees"), employee_database)
        selected = estimate_cost(Selection(RelationRef("employees"), TruePredicate()),
                                 employee_database)
        assert selected.cardinality < base.cardinality
        assert selected.work == base.work + base.cardinality

    def test_guard_projection_extension_rename(self, employee_database):
        for node in (
            TypeGuardNode(RelationRef("employees"), ["typing_speed"]),
            Projection(RelationRef("employees"), ["name"]),
            Extension(RelationRef("employees"), "tag", 1),
            Rename(RelationRef("employees"), {"name": "label"}),
        ):
            estimate = estimate_cost(node, employee_database)
            assert estimate.work > 60

    def test_product_and_join(self, employee_database):
        product = estimate_cost(Product(RelationRef("employees"), RelationRef("employees")),
                                employee_database)
        join = estimate_cost(NaturalJoin(RelationRef("employees"), RelationRef("employees")),
                             employee_database)
        assert product.cardinality == 3600
        assert join.cardinality < product.cardinality
        assert product.work > 3600

    def test_union_and_difference(self, employee_database):
        union = estimate_cost(Union(RelationRef("employees"), RelationRef("employees")),
                              employee_database)
        difference = estimate_cost(Difference(RelationRef("employees"), RelationRef("employees")),
                                   employee_database)
        assert union.cardinality == 120
        assert difference.cardinality == 60

    def test_multiway_join(self, employee_database):
        node = MultiwayJoin([RelationRef("employees"), RelationRef("employees"),
                             RelationRef("employees")], on=["emp_id"])
        estimate = estimate_cost(node, employee_database)
        assert estimate.cardinality >= 60 and estimate.work >= 180

    def test_unknown_node_rejected(self, employee_database):
        class Strange:
            pass

        with pytest.raises(OptimizerError):
            estimate_cost(Strange(), employee_database)

    def test_repr(self):
        assert "cardinality" in repr(CostEstimate(1.0, 2.0))


class TestMeasuredCost:
    def test_empty_relation_costs_nothing(self, employee_database):
        stats = measured_cost(EmptyRelation(), employee_database)
        assert stats.total_work == 0 and stats.tuples_produced == 0

    def test_false_selection_still_scans(self, employee_database):
        stats = measured_cost(Selection(RelationRef("employees"), FalsePredicate()),
                              employee_database)
        assert stats.predicate_evaluations == 60
        assert stats.tuples_produced == 0


class TestRenameDependencies:
    def test_rename_carries_dependencies_over(self, employee_database):
        node = Rename(RelationRef("employees"), {"jobtype": "role", "typing_speed": "wpm"})
        dependencies = node.known_ads(employee_database)
        assert any(d.lhs == attrset(["role"]) and "wpm" in d.rhs for d in dependencies)

    def test_renamed_dependencies_hold_in_result(self, employee_database):
        node = Rename(RelationRef("employees"), {"jobtype": "role"})
        result = Evaluator(employee_database).evaluate(node)
        for dependency in node.known_ads(employee_database):
            assert dependency.holds_in(result.tuples)

    def test_rename_established_equalities(self, employee_database):
        node = Rename(Selection(RelationRef("employees"), Comparison("jobtype", "=", "secretary")),
                      {"jobtype": "role"})
        assert node.established_equalities() == {"role": "secretary"}
