"""Tests for the observability layer (PR 6): Q-error math, tracing spans and
events, metrics aggregation, the slow-query log, and EXPLAIN ANALYZE parity.

EXPLAIN ANALYZE must be *honest*: the annotated tree comes from a real
execution whose tuples and counters are identical to a plain ``execute`` of
the same expression, in both row and batch modes.  The Q-error edge cases pin
down the definition the adaptive layer (ROADMAP item 4) will rely on.
"""

import json
import math

import pytest

from repro.algebra import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.obs import (
    Counter,
    Histogram,
    JsonTraceSink,
    MaxGauge,
    MetricsRegistry,
    NOOP_SPAN,
    SlowQueryLog,
    Tracer,
    plan_nodes,
    q_error,
)
from repro.workloads.star import star_join_database, star_join_query


@pytest.fixture()
def star_database():
    database = star_join_database(fact_rows=600, rare_rows=200, rare_every=20)
    database.analyze()
    return database


def small_query():
    return NaturalJoin(
        Selection(RelationRef("dim_rare"), Comparison("kind", "=", "rare")),
        RelationRef("fact"), on=["dr"])


# -- Q-error -------------------------------------------------------------------------------


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric_in_direction(self):
        assert q_error(10, 1000) == q_error(1000, 10) == 100.0

    def test_always_at_least_one(self):
        assert q_error(3.0, 4.0) == pytest.approx(4.0 / 3.0)
        assert q_error(4.0, 3.0) == pytest.approx(4.0 / 3.0)

    def test_no_estimate_is_none(self):
        assert q_error(None, 50) is None

    def test_both_zero_is_perfect(self):
        # Predicting an empty result that came out empty is a perfect estimate.
        assert q_error(0, 0) == 1.0

    def test_zero_actual_nonzero_estimate_is_inf(self):
        assert math.isinf(q_error(25, 0))

    def test_zero_estimate_nonzero_actual_is_inf(self):
        assert math.isinf(q_error(0, 25))

    def test_negative_estimate_degrades_to_inf(self):
        assert math.isinf(q_error(-1, 10))


# -- tracing -------------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_hands_out_the_noop_span(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.span("anything", attr=1) is NOOP_SPAN
        tracer.event("ignored")  # records nothing, raises nothing

    def test_spans_nest_and_carry_attributes(self):
        tracer = Tracer()
        sink = tracer.attach()
        with tracer.span("outer", depth=0):
            with tracer.span("inner") as inner:
                inner.set(rows=7)
        tracer.detach()
        spans = {record["name"]: record for record in sink.spans()}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["attributes"] == {"rows": 7}
        assert spans["outer"]["attributes"] == {"depth": 0}
        assert spans["inner"]["duration"] >= 0.0
        # children finish (and are recorded) before their parents
        assert sink.records[0]["name"] == "inner"

    def test_events_attach_to_the_open_span(self):
        tracer = Tracer()
        sink = tracer.attach()
        with tracer.span("work") as span:
            tracer.event("milestone", step=1)
        tracer.detach()
        (event,) = sink.events()
        assert event["span"] == span.span_id
        assert event["attributes"] == {"step": 1}

    def test_detach_disables_and_returns_the_sink(self):
        tracer = Tracer()
        sink = tracer.attach()
        assert tracer.detach() is sink
        assert not tracer.enabled
        with tracer.span("after"):
            pass
        assert len(sink.records) == 0

    def test_dump_writes_valid_json(self, tmp_path):
        tracer = Tracer()
        sink = tracer.attach()
        with tracer.span("s"):
            tracer.event("e")
        tracer.detach()
        path = sink.dump(str(tmp_path / "trace.json"))
        with open(path) as handle:
            records = json.load(handle)
        assert [r["type"] for r in records] == ["event", "span"]


class TestQueryLifecycleTrace:
    def test_query_trace_covers_the_lifecycle(self, star_database):
        sink = star_database.tracer.attach()
        star_database.execute(small_query(), optimize=True)
        star_database.tracer.detach()
        names = [record["name"] for record in sink.records]
        for expected in ("query.execute", "rewrite", "plan", "physical-plan",
                         "statistics-lookup", "plan-cache-miss", "execute"):
            assert expected in names, names
        # the planner span nests under the database's plan span
        spans = {r["name"]: r for r in sink.spans()}
        assert spans["physical-plan"]["parent"] == spans["plan"]["id"]
        assert spans["rewrite"]["parent"] == spans["query.execute"]["id"]

    def test_plan_cache_hit_and_miss_events(self, star_database):
        query = small_query()
        star_database.execute(query)  # populate the cache untraced
        sink = star_database.tracer.attach()
        star_database.execute(query)
        star_database.tracer.detach()
        names = [record["name"] for record in sink.events()]
        assert "plan-cache-hit" in names
        assert "plan-cache-miss" not in names

    def test_join_order_search_span(self, star_database):
        sink = star_database.tracer.attach()
        star_database.execute(star_join_query(), optimize=False)
        star_database.tracer.detach()
        (span,) = sink.named("join-order-search")
        assert span["attributes"]["relations"] == 6
        assert span["attributes"]["subsets_enumerated"] > 0

    def test_analyze_and_auto_analyze_events(self):
        database = star_join_database(fact_rows=50, rare_rows=30, rare_every=10)
        database.statistics.auto_analyze = True
        database.analyze()
        sink = database.tracer.attach()
        database.analyze("fact")
        for i in range(10_000, 10_030):
            database.insert("fact", {"fact_id": i, "ds": 1, "dr": 1,
                                     "da": 1, "db": 1, "dc": 1})
        database.tracer.detach()
        assert any(event["attributes"].get("table") == "fact"
                   and not event["attributes"]["auto"]
                   for event in sink.named("analyze"))
        auto = sink.named("auto-analyze")
        assert auto and auto[0]["attributes"]["mutations"] >= auto[0]["attributes"]["threshold"]
        assert any(event["attributes"].get("auto")
                   for event in sink.named("analyze"))


# -- metrics -------------------------------------------------------------------------------


class TestInstruments:
    def test_counter_and_max_gauge(self):
        counter, gauge = Counter(), MaxGauge()
        counter.add()
        counter.add(4)
        assert counter.as_dict() == 5
        gauge.observe(2.0)
        gauge.observe(None)
        gauge.observe(9.0)
        gauge.observe(3.0)
        assert gauge.as_dict() == {"max": 9.0, "observations": 3}

    def test_histogram_buckets_and_quantiles(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 3.0, 50.0, 1000.0):
            histogram.observe(value)
        snapshot = histogram.as_dict()
        assert snapshot["count"] == 5
        assert snapshot["min"] == 0.5 and snapshot["max"] == 1000.0
        assert snapshot["buckets"] == {"1.0": 1, "10.0": 2, "100.0": 1, "inf": 1}
        assert histogram.quantile(0.5) == 10.0
        # the overflow bucket reports the observed maximum
        assert histogram.quantile(0.99) == 1000.0
        assert Histogram(bounds=(1.0,)).quantile(0.5) is None

    def test_registry_reuses_and_type_checks(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")
        registry.counter("a").add(2)
        assert registry.snapshot() == {"a": 2}


class TestDatabaseMetrics:
    def test_metrics_aggregate_across_repeated_queries(self, star_database):
        query = small_query()
        before = star_database.metrics()["metrics"]
        assert before.get("queries.executed", 0) == 0
        for _ in range(3):
            result = star_database.execute(query)
        snapshot = star_database.metrics()
        metrics = snapshot["metrics"]
        assert metrics["queries.executed"] == 3
        assert metrics["rows.produced"] == 3 * len(result.tuples)
        assert metrics["rows.scanned"] > 0
        assert metrics["query.seconds"]["count"] == 3
        assert metrics["plan.batch_size"]["count"] == 3
        # one plan miss, then two hits
        assert snapshot["plan_cache"]["hits"] >= 2
        assert snapshot["plan_cache"]["hit_rate"] == pytest.approx(
            snapshot["plan_cache"]["hits"]
            / (snapshot["plan_cache"]["hits"] + snapshot["plan_cache"]["misses"]))

    def test_worst_q_error_per_node_kind(self, star_database):
        star_database.execute(small_query())
        metrics = star_database.metrics()["metrics"]
        qerror_keys = [key for key in metrics if key.startswith("qerror.")]
        assert qerror_keys
        for key in qerror_keys:
            assert metrics[key]["max"] >= 1.0

    def test_metrics_snapshot_is_json_serializable(self, star_database):
        star_database.execute(small_query())
        json.dumps(star_database.metrics())


# -- slow-query log ------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_behavior(self):
        log = SlowQueryLog(threshold=0.5, capacity=2)
        assert log.observe("q1", "batch", 0.4999, 10, []) is None
        assert len(log) == 0 and log.total == 0
        entry = log.observe("q2", "batch", 0.5, 10, [("scan", 1.0)])
        assert entry is not None and len(log) == 1 and log.total == 1

    def test_capacity_evicts_but_total_counts(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for index in range(5):
            log.observe("q{}".format(index), "row", 1.0, 1, [])
        assert len(log) == 2 and log.total == 5
        assert [entry.expression for entry in log.entries()] == ["q3", "q4"]

    def test_records_top_3_q_error_nodes_worst_first(self):
        log = SlowQueryLog(threshold=0.0)
        nodes = [("a", 2.0), ("b", None), ("c", 50.0), ("d", 7.0), ("e", 3.0)]
        entry = log.observe("q", "batch", 1.0, 1, nodes)
        assert entry.q_error_nodes == [("c", 50.0), ("d", 7.0), ("e", 3.0)]

    def test_database_slow_log_catches_slow_queries(self, star_database):
        star_database.slow_query_log.threshold = 0.0  # everything is "slow"
        star_database.execute(small_query())
        (entry,) = star_database.slow_query_log.entries()
        assert entry.mode == "batch"
        assert entry.rows > 0
        assert entry.q_error_nodes  # estimate quality travels with the entry
        assert star_database.metrics()["slow_queries"]["total"] == 1

    def test_fast_queries_stay_out_of_the_log(self, star_database):
        star_database.slow_query_log.threshold = 1e9
        star_database.execute(small_query())
        assert star_database.slow_query_log.entries() == []


# -- EXPLAIN ANALYZE -----------------------------------------------------------------------


class TestExplainAnalyze:
    @pytest.mark.parametrize("mode", ["batch", "row"])
    def test_parity_with_execute(self, star_database, mode):
        """The annotated tree executes to identical results and counters."""
        query = star_join_query()
        report = star_database.explain_analyze(query, optimize=False, mode=mode)
        plain = star_database.execute(query, optimize=False, mode=mode)
        assert report.result.tuples == plain.tuples
        assert report.result.stats.as_dict() == plain.stats.as_dict()

    @pytest.mark.parametrize("mode", ["batch", "row"])
    def test_every_node_is_annotated(self, star_database, mode):
        report = star_database.explain_analyze(small_query(), optimize=False,
                                               mode=mode)
        lines = str(report).splitlines()
        assert lines[0].startswith("mode={}".format(mode))
        annotated = [line for line in lines if "actual_rows=" in line]
        assert len(annotated) == len(plan_nodes(report.plan))
        for line in annotated:
            assert "est_rows=" in line and "q=" in line
            assert "time=" in line and "batches=" in line

    def test_actual_rows_match_operator_stats(self, star_database):
        report = star_database.explain_analyze(small_query(), optimize=False)
        root_stats = report.result.context.operator_stats[0]
        assert root_stats.rows_out == len(report.result.tuples)
        assert "actual_rows={}".format(root_stats.rows_out) in str(report)

    def test_q_errors_exposed_per_node(self, star_database):
        report = star_database.explain_analyze(small_query(), optimize=False)
        assert len(report.q_errors) == len(plan_nodes(report.plan))
        assert all(value is None or value >= 1.0
                   for _label, value in report.q_errors)
        assert report.worst_q_error() >= 1.0

    def test_stale_statistics_show_up_as_q_error(self, star_database):
        """Growing a table after ANALYZE mis-estimates — Q-error exposes it."""
        fresh = star_database.explain_analyze(small_query(), optimize=False)
        assert fresh.worst_q_error() < 2.0  # analyzed: estimates are close
        # ANALYZE, then grow dim_rare behind the statistics' back.
        star_database.analyze("dim_rare")
        for i in range(5_000, 5_400):
            star_database.insert("dim_rare", {"dr": i, "kind": "rare",
                                              "audit_level": i % 3})
        stale = star_database.explain_analyze(small_query(), optimize=False)
        assert stale.result.tuples == fresh.result.tuples  # results unchanged
        assert stale.worst_q_error() > fresh.worst_q_error()

    def test_explain_analyze_feeds_metrics(self, star_database):
        star_database.explain_analyze(small_query(), optimize=False)
        assert star_database.metrics()["metrics"]["queries.executed"] == 1

    def test_wall_seconds_collected_per_operator(self, star_database):
        report = star_database.explain_analyze(small_query(), optimize=False)
        stats = report.result.context.operator_stats
        assert sum(op.wall_seconds for op in stats) > 0.0
        # the root's inclusive time dominates any child's
        assert stats[0].wall_seconds == max(op.wall_seconds for op in stats)
