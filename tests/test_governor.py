"""The resource governor: deadlines, cancellation, budgets, spill, admission.

Four layers under test:

* the primitives — :class:`CancelToken`/:class:`Deadline` semantics, the
  CRC-framed spill segments, ``AggregateAccumulator.merge_states``;
* the spill algorithms — for sort, hash aggregation and the grace hash join
  the budgeted execution must produce **exactly** the unbudgeted results, in
  both the row and the batch engine, across the workload's MISSING/NULL
  edge cases;
* the database integration — ``timeout=``/``cancel_token=``/
  ``memory_budget=`` on :meth:`Database.execute`, the termination taxonomy,
  and the observability contract: terminated queries count under their
  reason, never under ``queries.executed``, and leave a slow-query-log entry
  naming the reason (satellite: no double counting);
* admission control — concurrency cap, bounded queue, shed, per-class
  timeouts, circuit breaker lifecycle and retry backoff, all under injected
  clocks so nothing sleeps.
"""

import os
import pickle

import pytest

from repro.algebra import (
    Aggregate,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
)
from repro.algebra.analytic import AggregateAccumulator, AggregateSpec
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.errors import (
    AdmissionRejected,
    CatalogError,
    CircuitOpen,
    GovernorError,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    SpillError,
)
from repro.exec import PhysicalExecutor
from repro.governor import (
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    Deadline,
    QueryGovernor,
    RetryPolicy,
    SpillManager,
)
from repro.model.batches import MISSING
from repro.workloads.analytics import analytics_database

MODES = ("row", "batch")


def vectorize_of(mode):
    return mode == "batch"


@pytest.fixture(scope="module")
def orders_database():
    return analytics_database(count=2500, seed=13)


# -- cancellation primitives -----------------------------------------------------------------


class TestCancelToken:
    def test_deadline_expires_with_injected_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.expired()
        now[0] = 5.1
        assert deadline.expired()
        token = CancelToken(deadline=deadline)
        with pytest.raises(QueryTimeout) as info:
            token.check()
        assert info.value.timeout == 5.0

    def test_cancel_carries_the_reason(self):
        token = CancelToken()
        token.check()  # not yet cancelled
        token.cancel("client disconnected")
        with pytest.raises(QueryCancelled, match="client disconnected"):
            token.check()

    def test_timeout_is_a_cancellation(self):
        # one unwind path: handlers for QueryCancelled also catch timeouts
        assert issubclass(QueryTimeout, QueryCancelled)
        assert issubclass(QueryCancelled, GovernorError)

    def test_chaos_hook_fires_after_n_checks(self):
        token = CancelToken(fire_after_checks=2)
        token.check()
        token.check()
        with pytest.raises(QueryCancelled, match="boundary 2"):
            token.check()
        assert token.checks == 3

    def test_counting_token_counts_boundaries(self, orders_database):
        token = CancelToken()
        orders_database.execute(RelationRef("orders"), cancel_token=token)
        assert token.checks > 0


# -- spill segments --------------------------------------------------------------------------


class TestSpillSegments:
    def test_round_trip_preserves_records_and_missing(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        segment = manager.create_segment("unit")
        records = [{"a": 1}, {"a": MISSING, "b": None}, (1, [2.5, "x"])]
        segment.extend(records)
        segment.finish()
        out = list(segment)
        assert out[0] == {"a": 1}
        assert out[1]["a"] is MISSING  # identity survives pickling
        assert out[2] == (1, [2.5, "x"])
        manager.cleanup()
        assert not os.listdir(str(tmp_path))

    def test_read_before_finish_is_an_error(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        segment = manager.create_segment("unit")
        segment.append({"a": 1})
        with pytest.raises(SpillError, match="before finish"):
            list(segment)
        manager.cleanup()

    def test_corrupted_payload_raises_spill_error(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        segment = manager.create_segment("unit")
        segment.extend({"a": i} for i in range(2000))
        segment.finish()
        with open(segment.path, "r+b") as handle:
            handle.seek(40)
            handle.write(b"\xff\xff\xff\xff")
        with pytest.raises(SpillError):
            list(segment)
        manager.cleanup()

    def test_missing_pickle_identity(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING


# -- accumulator state merging ---------------------------------------------------------------


class TestMergeStates:
    def _accumulator(self):
        return AggregateAccumulator((
            AggregateSpec("count", None, "n"),
            AggregateSpec("count", "x", "nx"),
            AggregateSpec("sum", "x", "sx"),
            AggregateSpec("avg", "x", "ax"),
            AggregateSpec("min", "x", "mn"),
            AggregateSpec("max", "x", "mx"),
        ))

    @pytest.mark.parametrize("split", [1, 3, 5])
    def test_merged_slices_equal_one_pass(self, split):
        rows = [{"x": 1}, {"x": 2.5}, {"x": None}, {}, {"x": -3},
                {"x": 0.5}, {"x": None}, {"x": 7}]
        accumulator = self._accumulator()
        whole = accumulator.new_state()
        for row in rows:
            accumulator.update(whole, row)
        merged = accumulator.new_state()
        for start in range(0, len(rows), split):
            part = accumulator.new_state()
            for row in rows[start:start + split]:
                accumulator.update(part, row)
            accumulator.merge_states(merged, part)
        assert accumulator.finalize(merged) == accumulator.finalize(whole)

    def test_merging_absent_attribute_keeps_it_absent(self):
        accumulator = self._accumulator()
        a = accumulator.new_state()
        b = accumulator.new_state()
        accumulator.update(a, {})
        accumulator.update(b, {})
        accumulator.merge_states(a, b)
        out = accumulator.finalize(a)
        assert out == {"n": 2, "nx": 0}  # sum/avg/min/max stay absent


# -- spill parity through the executor -------------------------------------------------------


def spill_corpus():
    """(expression, must_spill) pairs: the small-state entries prove a
    budgeted-but-fitting query stays in memory with identical results."""
    orders = RelationRef("orders")
    return {
        "aggregate": (Aggregate(
            orders, group_by=("order_id",),
            specs=(("sum", "amount"), "count", ("avg", "amount"),
                   ("min", "amount"), ("max", "amount"))), True),
        "aggregate_sparse_groups": (Aggregate(
            orders, group_by=("region",),
            specs=(("sum", "amount"), ("count", "amount"))), False),
        "global_aggregate": (Aggregate(
            orders, specs=(("sum", "amount"), "count")), False),
        "sort": (Sort(Selection(orders, Comparison("amount", ">", 50)),
                      keys=("amount", "order_id")), True),
        "sort_by_region": (Sort(orders, keys=("region", "order_id")), True),
        "join": (NaturalJoin(
            orders,
            Rename(Projection(orders, ["order_id", "region"]),
                   {"region": "r2"}),
            on=["order_id"]), True),
        "join_skewed_key": (NaturalJoin(
            Projection(orders, ["region", "channel"]),
            Rename(Projection(orders, ["order_id", "region"]),
                   {"order_id": "oid2"}),
            on=["region"]), True),
    }


class TestSpillParity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("name", sorted(spill_corpus()))
    def test_budgeted_equals_unbudgeted(self, orders_database, mode, name):
        expression, must_spill = spill_corpus()[name]
        executor = PhysicalExecutor(orders_database,
                                    vectorize=vectorize_of(mode))
        baseline = executor.execute(expression)
        governor = QueryGovernor(memory_budget=15_000)
        try:
            governed = executor.execute(expression, governor=governor)
            if must_spill:
                assert governor.spilled, (
                    "budget of 15000B over this workload must force a spill "
                    "({} / {})".format(name, mode))
            assert set(governed.tuples) == set(baseline.tuples)
            # ExecutionStats totals stay identical: spilling changes where
            # state lives, not what is counted
            assert governed.stats.as_dict() == baseline.stats.as_dict()
        finally:
            governor.finish()

    @pytest.mark.parametrize("mode", MODES)
    def test_sort_order_survives_spilling(self, orders_database, mode):
        expression = spill_corpus()["sort"][0]
        executor = PhysicalExecutor(orders_database,
                                    vectorize=vectorize_of(mode))
        baseline = executor.execute(expression)
        governor = QueryGovernor(memory_budget=10_000)
        try:
            governed = executor.execute(expression, governor=governor)
            assert list(governed.tuples) == list(baseline.tuples)
        finally:
            governor.finish()

    @pytest.mark.parametrize("mode", MODES)
    def test_under_budget_query_never_touches_disk(self, orders_database,
                                                   mode, tmp_path):
        expression = spill_corpus()["aggregate_sparse_groups"][0]
        executor = PhysicalExecutor(orders_database,
                                    vectorize=vectorize_of(mode))
        governor = QueryGovernor(memory_budget=50_000_000,
                                 spill_directory=str(tmp_path))
        try:
            executor.execute(expression, governor=governor)
            assert not governor.spilled
            assert not os.listdir(str(tmp_path))
        finally:
            governor.finish()

    @pytest.mark.parametrize("mode", MODES)
    def test_spill_files_are_cleaned_up(self, orders_database, mode, tmp_path):
        expression = spill_corpus()["aggregate"][0]
        executor = PhysicalExecutor(orders_database,
                                    vectorize=vectorize_of(mode))
        governor = QueryGovernor(memory_budget=15_000,
                                 spill_directory=str(tmp_path))
        try:
            executor.execute(expression, governor=governor)
            assert governor.spilled
        finally:
            governor.finish()
        assert not os.listdir(str(tmp_path))

    @pytest.mark.parametrize("mode", MODES)
    def test_spilled_peak_is_bounded(self, orders_database, mode):
        # the reference peak is the *row* engine's unspilled footprint: the
        # spiller holds row-form group states in both engines, whereas the
        # batch engine's unspilled columnar accumulator is already several
        # times smaller — comparing across representations would make the
        # bound meaningless
        expression = spill_corpus()["aggregate"][0]
        row_baseline = PhysicalExecutor(
            orders_database, vectorize=False).execute(expression)
        peak0 = max(s["peak_bytes"] for s in row_baseline.operator_report())
        executor = PhysicalExecutor(orders_database,
                                    vectorize=vectorize_of(mode))
        governor = QueryGovernor(memory_budget=peak0 // 4)
        try:
            governed = executor.execute(expression, governor=governor)
            peak1 = max(s["peak_bytes"] for s in governed.operator_report())
            assert peak1 < peak0 / 2
            assert set(governed.tuples) == set(row_baseline.tuples)
        finally:
            governor.finish()


class TestFailFast:
    @pytest.mark.parametrize("mode", MODES)
    def test_spill_disabled_fails_fast(self, orders_database, mode):
        expression = spill_corpus()["aggregate"][0]
        with pytest.raises(MemoryBudgetExceeded) as info:
            orders_database.execute(expression, mode=mode,
                                    memory_budget=10_000, spill=False)
        assert info.value.budget_bytes == 10_000
        assert info.value.held_bytes > 10_000
        assert "aggregate" in info.value.operator

    @pytest.mark.parametrize("mode", MODES)
    def test_non_spillable_operator_fails_fast_despite_spill(
            self, orders_database, mode):
        # a data-dependent natural join (on=None) has no spill form: even
        # with spilling enabled, a blown budget must fail fast
        expression = NaturalJoin(
            RelationRef("orders"),
            Rename(Projection(RelationRef("orders"), ["order_id", "region"]),
                   {"region": "r2"}))
        with pytest.raises(MemoryBudgetExceeded):
            orders_database.execute(expression, mode=mode,
                                    memory_budget=10_000, spill=True)

    @pytest.mark.parametrize("mode", MODES)
    def test_product_fails_fast(self, orders_database, mode):
        # the big side goes on the right: Product materializes its right
        # input, so 2500 distinct order ids must be held at once
        expression = Product(
            Projection(RelationRef("orders"), ["region"]),
            Rename(Projection(RelationRef("orders"), ["order_id"]),
                   {"order_id": "oid2"}))
        with pytest.raises(MemoryBudgetExceeded):
            orders_database.execute(expression, mode=mode, memory_budget=5_000)


# -- database integration --------------------------------------------------------------------


class TestDatabaseGovernance:
    def test_timeout_raises_and_is_observed(self, orders_database):
        registry = orders_database.metrics_registry
        executed = registry.counter("queries.executed").value
        timeouts = registry.counter("queries.timeout").value
        with pytest.raises(QueryTimeout):
            orders_database.execute(spill_corpus()["aggregate"][0],
                                    timeout=0.000001)
        assert registry.counter("queries.timeout").value == timeouts + 1
        assert registry.counter("queries.executed").value == executed
        entry = orders_database.slow_query_log.entries()[-1]
        assert entry.note == "terminated: timeout"

    def test_cancel_token_fires_and_is_observed(self, orders_database):
        registry = orders_database.metrics_registry
        executed = registry.counter("queries.executed").value
        cancelled = registry.counter("queries.cancelled").value
        token = CancelToken()
        token.cancel("user pressed ^C")
        with pytest.raises(QueryCancelled, match="user pressed"):
            orders_database.execute(RelationRef("orders"), cancel_token=token)
        assert registry.counter("queries.cancelled").value == cancelled + 1
        assert registry.counter("queries.executed").value == executed
        entry = orders_database.slow_query_log.entries()[-1]
        assert entry.note == "terminated: cancelled"

    def test_memory_exceeded_is_observed(self, orders_database):
        registry = orders_database.metrics_registry
        before = registry.counter("queries.memory_exceeded").value
        with pytest.raises(MemoryBudgetExceeded):
            orders_database.execute(spill_corpus()["aggregate"][0],
                                    memory_budget=10_000, spill=False)
        assert registry.counter("queries.memory_exceeded").value == before + 1
        entry = orders_database.slow_query_log.entries()[-1]
        assert entry.note == "terminated: memory_exceeded"

    def test_each_termination_counts_exactly_once(self, orders_database):
        """Satellite: timeout/cancel/shed entries never double-count."""
        registry = orders_database.metrics_registry
        log_total = orders_database.slow_query_log.total
        timeouts = registry.counter("queries.timeout").value
        cancelled = registry.counter("queries.cancelled").value
        with pytest.raises(QueryTimeout):
            orders_database.execute(spill_corpus()["aggregate"][0],
                                    timeout=0.000001)
        # a timeout is raised as a cancellation subclass but must be counted
        # only under queries.timeout, and exactly one log entry appears
        assert registry.counter("queries.timeout").value == timeouts + 1
        assert registry.counter("queries.cancelled").value == cancelled
        assert orders_database.slow_query_log.total == log_total + 1

    def test_spilling_query_succeeds_and_counts_as_executed(self):
        database = analytics_database(count=2500, seed=13)
        registry = database.metrics_registry
        executed = registry.counter("queries.executed").value
        result = database.execute(spill_corpus()["aggregate"][0],
                                  memory_budget=15_000)
        baseline = database.execute(spill_corpus()["aggregate"][0])
        assert set(result.tuples) == set(baseline.tuples)
        assert registry.counter("queries.executed").value == executed + 2
        assert registry.counter("spill.segments").value > 0
        assert registry.counter("spill.records").value > 0
        assert registry.counter("spill.events").value > 0

    def test_spill_counters_reach_prometheus_export(self):
        database = analytics_database(count=2500, seed=13)
        database.execute(spill_corpus()["aggregate"][0], memory_budget=15_000)
        text = database.prometheus_metrics()
        assert "repro_spill_segments_total" in text
        assert "repro_spill_records_total" in text

    def test_database_wide_defaults_apply(self):
        from repro.workloads.analytics import (
            generate_orders,
            orders_domains,
            orders_scheme,
        )

        database = Database(query_timeout=0.000001)
        database.create_table("t", orders_scheme(), domains=orders_domains(),
                              key=["order_id"])
        database.insert_many("t", generate_orders(50, seed=1))
        with pytest.raises(QueryTimeout):
            database.execute(Sort(RelationRef("t"), keys=("order_id",)))
        # per-query override wins over the database default
        result = database.execute(RelationRef("t"), timeout=30.0)
        assert len(result.tuples) == 50

    def test_naive_executor_rejects_governance(self, orders_database):
        with pytest.raises(CatalogError, match="naive evaluator"):
            orders_database.execute(RelationRef("orders"), executor="naive",
                                    timeout=1.0)
        with pytest.raises(CatalogError, match="naive evaluator"):
            orders_database.execute(RelationRef("orders"), executor="naive",
                                    memory_budget=1000)

    def test_ungoverned_execution_has_no_governor(self, orders_database):
        result = orders_database.execute(RelationRef("orders"))
        assert result.context.governor is None


# -- admission control -----------------------------------------------------------------------


class TestAdmission:
    def test_slots_then_queue_then_shed(self):
        now = [0.0]
        controller = AdmissionController(max_concurrent=2, queue_limit=0,
                                         clock=lambda: now[0])
        first = controller.admit()
        second = controller.admit()
        with pytest.raises(AdmissionRejected, match="queue full"):
            controller.admit()
        controller.complete(first)
        third = controller.admit()
        assert controller.active == 2
        controller.complete(second)
        controller.complete(third)
        assert controller.active == 0
        assert controller.admitted_total == 3
        assert controller.shed_total == 1

    def test_complete_is_idempotent(self):
        controller = AdmissionController(max_concurrent=1)
        ticket = controller.admit()
        controller.complete(ticket)
        controller.complete(ticket)
        assert controller.active == 0

    def test_class_timeouts(self):
        controller = AdmissionController(
            class_timeouts={"interactive": 0.5, "batch": 60.0})
        assert controller.timeout_for("interactive") == 0.5
        assert controller.timeout_for("batch") == 60.0
        assert controller.timeout_for("default") is None

    def test_breaker_trips_half_opens_and_closes(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=lambda: now[0])
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()
        now[0] = 10.5
        assert breaker.allow()  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 5.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_open_breaker_sheds_with_circuit_open(self):
        now = [0.0]
        controller = AdmissionController(max_concurrent=4,
                                         failure_threshold=1,
                                         breaker_reset=30.0,
                                         clock=lambda: now[0])
        ticket = controller.admit()
        controller.complete(ticket, success=False)
        with pytest.raises(CircuitOpen):
            controller.admit()
        assert isinstance(CircuitOpen("x"), AdmissionRejected)

    def test_retry_policy_backs_off_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise AdmissionRejected("shed")
            return "ok"

        import random as random_module
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             jitter=0.5, sleep=sleeps.append,
                             rng=random_module.Random(42))
        assert policy.run(flaky) == "ok"
        assert policy.attempts == 3
        assert len(sleeps) == 2
        assert 0.1 <= sleeps[0] <= 0.15   # base × (1 + jitter·U[0,1))
        assert 0.2 <= sleeps[1] <= 0.3    # doubled
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_retry_policy_exhausts_and_reraises(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0,
                             sleep=lambda s: None)

        def always_shed():
            raise AdmissionRejected("shed")

        with pytest.raises(AdmissionRejected):
            policy.run(always_shed)
        assert policy.attempts == 2

    def test_database_sheds_and_observes(self):
        database = analytics_database(count=200, seed=5)
        database.admission = AdmissionController(
            max_concurrent=0, queue_limit=0,
            registry=database.metrics_registry)
        registry = database.metrics_registry
        executed = registry.counter("queries.executed").value
        with pytest.raises(AdmissionRejected):
            database.execute(RelationRef("orders"))
        assert registry.counter("queries.shed").value == 1
        assert registry.counter("admission.shed").value == 1
        assert registry.counter("queries.executed").value == executed
        entry = database.slow_query_log.entries()[-1]
        assert entry.note == "terminated: shed"
        assert database.metrics()["admission"]["shed_total"] == 1

    def test_database_admits_and_releases(self):
        database = analytics_database(count=200, seed=5)
        database.admission = AdmissionController(
            max_concurrent=2, registry=database.metrics_registry)
        database.execute(RelationRef("orders"))
        assert database.admission.active == 0
        assert database.admission.admitted_total == 1
        assert database.admission.breaker.state == "closed"

    def test_class_timeout_governs_the_query(self):
        database = analytics_database(count=2500, seed=5)
        database.admission = AdmissionController(
            max_concurrent=4, class_timeouts={"interactive": 0.000001},
            registry=database.metrics_registry)
        with pytest.raises(QueryTimeout):
            database.execute(spill_corpus()["aggregate"][0],
                             query_class="interactive")
        assert database.admission.active == 0
        # engine-side timeout feeds the breaker as a failure
        assert database.admission.breaker.consecutive_failures == 1
        # an unclassified query is not affected
        result = database.execute(RelationRef("orders"))
        assert len(result.tuples) == 2500

    def test_client_cancel_is_not_a_breaker_failure(self):
        database = analytics_database(count=200, seed=5)
        database.admission = AdmissionController(
            max_concurrent=4, registry=database.metrics_registry)
        token = CancelToken()
        token.cancel("client went away")
        with pytest.raises(QueryCancelled):
            database.execute(RelationRef("orders"), cancel_token=token)
        assert database.admission.breaker.consecutive_failures == 0
        assert database.admission.active == 0
