"""The analytic rewrite rules: soundness, guards, termination, planner wiring.

Every positive case asserts both the *shape* of the rewritten tree and
result-equivalence against the naive evaluator; every guard case asserts the
rule declines.  The planner tests prove the rules reach a fixpoint inside
``Planner.optimize`` (which runs all of ``DEFAULT_RULES`` to quiescence).
"""

import pytest

from repro.algebra import (
    Aggregate,
    Evaluator,
    Limit,
    Projection,
    RelationRef,
    Rename,
    Sort,
    Union,
)
from repro.algebra.predicates import Comparison
from repro.algebra.expressions import Selection
from repro.model.tuples import FlexTuple
from repro.optimizer import (
    Planner,
    eliminate_noop_sorts,
    push_aggregate_into_unions,
    push_aggregate_past_rename,
    push_limit_into_unions,
)
from repro.optimizer.planner import DEFAULT_RULES


@pytest.fixture(scope="module")
def source():
    rows_a = {FlexTuple(id=i, g="g{}".format(i % 3), x=i * 3 % 17)
              for i in range(20)}
    rows_b = {FlexTuple(id=i + 100, g="g{}".format(i % 4), x=i * 5 % 13)
              for i in range(15)}
    # a few variant rows: no g (⊥-group routing) or no x (absent aggregation input)
    rows_b |= {FlexTuple(id=200, x=99), FlexTuple(id=201, g="g0"), FlexTuple(id=202)}
    return {"a": rows_a, "b": rows_b}


def assert_equivalent(expression, rewritten, source):
    evaluator = Evaluator(source)
    assert evaluator.evaluate(expression).tuples \
        == evaluator.evaluate(rewritten).tuples


class TestEliminateNoopSorts:
    def test_sort_below_aggregate_is_dropped(self, source):
        expr = Aggregate(Sort(RelationRef("a"), ("x",)),
                         group_by=("g",), specs=("count",))
        rewritten, report = eliminate_noop_sorts(expr)
        assert report.changed
        assert isinstance(rewritten, Aggregate)
        assert isinstance(rewritten.child, RelationRef)
        assert_equivalent(expr, rewritten, source)

    def test_consecutive_sorts_collapse_to_the_outer(self, source):
        expr = Sort(Sort(RelationRef("a"), ("x",)), ("-g",))
        rewritten, report = eliminate_noop_sorts(expr)
        assert report.changed
        assert isinstance(rewritten, Sort) and rewritten.keys == expr.keys
        assert isinstance(rewritten.child, RelationRef)
        assert_equivalent(expr, rewritten, source)

    def test_sort_feeding_a_limit_is_kept(self, source):
        expr = Limit(Sort(RelationRef("a"), ("x",)), 3)
        _, report = eliminate_noop_sorts(expr)
        assert not report.changed


class TestPushLimitIntoUnions:
    def test_bare_limit_is_pushed_into_both_branches(self, source):
        expr = Limit(Union(RelationRef("a"), RelationRef("b")), 4)
        rewritten, report = push_limit_into_unions(expr)
        assert report.changed
        assert isinstance(rewritten, Limit) and rewritten.count == 4
        union = rewritten.child
        assert isinstance(union, Union)
        assert isinstance(union.left, Limit) and isinstance(union.right, Limit)
        assert_equivalent(expr, rewritten, source)

    def test_sorted_limit_carries_its_keys_into_the_branches(self, source):
        expr = Limit(Sort(Union(RelationRef("a"), RelationRef("b")),
                          ("-x", "id")), 5)
        rewritten, report = push_limit_into_unions(expr)
        assert report.changed
        keys = expr.child.keys  # the coerced SortKey tuple of the original
        # outer shape: Limit(Sort(Union(Limit(Sort(A)), Limit(Sort(B)))))
        assert isinstance(rewritten, Limit)
        outer_sort = rewritten.child
        assert isinstance(outer_sort, Sort) and outer_sort.keys == keys
        for branch in outer_sort.child.children:
            assert isinstance(branch, Limit) and branch.count == 5
            assert isinstance(branch.child, Sort)
            assert branch.child.keys == keys
        assert_equivalent(expr, rewritten, source)

    def test_already_pushed_form_is_a_fixpoint(self, source):
        expr = Limit(Union(RelationRef("a"), RelationRef("b")), 4)
        once, _ = push_limit_into_unions(expr)
        twice, report = push_limit_into_unions(once)
        assert not report.changed and twice is once

    def test_limit_over_non_union_is_untouched(self, source):
        expr = Limit(RelationRef("a"), 4)
        _, report = push_limit_into_unions(expr)
        assert not report.changed


class TestPushAggregateIntoUnions:
    def test_min_max_aggregation_is_pushed(self, source):
        expr = Aggregate(Union(RelationRef("a"), RelationRef("b")),
                         group_by=("g",),
                         specs=(("min", "x"), ("max", "x")))
        rewritten, report = push_aggregate_into_unions(expr)
        assert report.changed
        assert isinstance(rewritten, Aggregate)
        union = rewritten.child
        assert isinstance(union, Union)
        assert isinstance(union.left, Aggregate) and isinstance(union.right, Aggregate)
        # the outer refold reads the partial outputs, keeping their names
        assert tuple(spec.attribute for spec in rewritten.specs) \
            == tuple(spec.output for spec in rewritten.specs)
        assert_equivalent(expr, rewritten, source)

    def test_non_idempotent_specs_are_not_pushed(self, source):
        for specs in (("count",), (("sum", "x"),), (("min", "x"), ("avg", "x"))):
            expr = Aggregate(Union(RelationRef("a"), RelationRef("b")),
                             group_by=("g",), specs=specs)
            _, report = push_aggregate_into_unions(expr)
            assert not report.changed

    def test_pushed_form_is_a_fixpoint(self, source):
        expr = Aggregate(Union(RelationRef("a"), RelationRef("b")),
                         group_by=("g",), specs=(("min", "x"),))
        once, _ = push_aggregate_into_unions(expr)
        _, report = push_aggregate_into_unions(once)
        assert not report.changed

    def test_bottom_group_routing_composes_through_the_push(self, source):
        """Rows lacking g partial-aggregate into a ⊥ row that re-routes to ⊥."""
        expr = Aggregate(Union(RelationRef("a"), RelationRef("b")),
                         group_by=("g",), specs=(("max", "x"),))
        rewritten, report = push_aggregate_into_unions(expr)
        assert report.changed
        result = Evaluator(source).evaluate(rewritten).tuples
        bottom = [tup for tup in result if "g" not in tup]
        assert len(bottom) == 1 and bottom[0]["max_x"] == 99


class TestPushAggregatePastRename:
    def _tree(self, mapping, group_by=("grp",), specs=(("count", None, "n"),)):
        return Aggregate(
            Rename(Projection(RelationRef("a"), ["id", "g", "x"]), mapping),
            group_by=group_by, specs=specs)

    def test_injective_rename_is_deferred_to_the_group_rows(self, source):
        expr = self._tree({"g": "grp", "id": "ident"},
                          specs=(("count", None, "n"), ("min", "ident", "lo")))
        rewritten, report = push_aggregate_past_rename(expr)
        assert report.changed
        assert isinstance(rewritten, Rename)
        assert rewritten.mapping == {"g": "grp"}
        inner = rewritten.child
        assert isinstance(inner, Aggregate) and inner.group_by == ("g",)
        assert isinstance(inner.child, Projection)
        assert_equivalent(expr, rewritten, source)

    def test_rename_of_unread_attributes_disappears(self, source):
        expr = self._tree({"id": "ident"}, group_by=("g",))
        rewritten, report = push_aggregate_past_rename(expr)
        assert report.changed
        # nothing the aggregate reads was renamed → no outer rename at all
        assert isinstance(rewritten, Aggregate) and rewritten.group_by == ("g",)
        assert_equivalent(expr, rewritten, source)

    def test_non_injective_rename_vetoes_the_push(self, source):
        # g and x both map to "v": tuples may collapse before aggregation
        expr = self._tree({"g": "v", "x": "v"}, group_by=("v",))
        _, report = push_aggregate_past_rename(expr)
        assert not report.changed

    def test_reading_an_attribute_outside_the_image_vetoes_the_push(self, source):
        expr = self._tree({"g": "grp"}, group_by=("grp", "missing"))
        _, report = push_aggregate_past_rename(expr)
        assert not report.changed

    def test_output_name_colliding_with_inner_group_vetoes_the_push(self, source):
        expr = self._tree({"g": "grp"}, specs=(("count", None, "g"),))
        _, report = push_aggregate_past_rename(expr)
        assert not report.changed

    def test_rename_without_projection_below_is_untouched(self, source):
        expr = Aggregate(Rename(RelationRef("a"), {"g": "grp"}),
                         group_by=("grp",), specs=("count",))
        _, report = push_aggregate_past_rename(expr)
        assert not report.changed


class TestPlannerIntegration:
    def test_all_four_rules_are_default(self):
        for rule in (eliminate_noop_sorts, push_limit_into_unions,
                     push_aggregate_into_unions, push_aggregate_past_rename):
            assert rule in DEFAULT_RULES

    def test_planner_reaches_a_fixpoint_on_a_combined_tree(self, employee_database):
        expr = Limit(
            Sort(
                Aggregate(
                    Sort(Selection(RelationRef("employees"),
                                   Comparison("salary", ">", 0)), ("name",)),
                    group_by=("jobtype",), specs=(("max", "salary"),)),
                ("-max_salary",)),
            2)
        planner = Planner(catalog=employee_database)
        optimized, report = planner.optimize(expr)
        assert report.changed  # at least the no-op sort under γ is gone
        evaluator = Evaluator(employee_database)
        assert evaluator.evaluate(expr).tuples \
            == evaluator.evaluate(optimized).tuples
        # quiescent: a second pass finds nothing
        _, again = planner.optimize(optimized)
        assert not again.changed
