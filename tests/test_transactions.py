"""Tests for table snapshots and database transactions."""

import pytest

from repro.engine import Database, Table
from repro.errors import DependencyViolation, KeyViolation
from repro.workloads.employees import employee_definition, generate_employees


@pytest.fixture
def database():
    database = Database()
    definition = employee_definition()
    table = database.create_table("employees", definition.scheme, domains=definition.domains,
                                  key=definition.key, dependencies=definition.dependencies)
    table.insert_many(generate_employees(10, seed=71))
    return database


def _valid_employee(emp_id):
    return {"emp_id": emp_id, "name": "new", "salary": 3000.0, "jobtype": "secretary",
            "typing_speed": 70, "foreign_languages": "english"}


def _invalid_employee(emp_id):
    return {"emp_id": emp_id, "name": "bad", "salary": 3000.0, "jobtype": "salesman",
            "typing_speed": 70, "foreign_languages": "english"}


class TestTableSnapshots:
    def test_snapshot_restore_round_trip(self, database):
        table = database.table("employees")
        before = table.snapshot()
        table.insert(_valid_employee(100))
        assert len(table) == 11
        table.restore(before)
        assert len(table) == 10

    def test_restore_rebuilds_indexes(self, database):
        table = database.table("employees")
        before = table.snapshot()
        table.insert(_valid_employee(100))
        table.restore(before)
        # key index no longer contains emp_id 100, so re-inserting must succeed
        table.insert(_valid_employee(100))
        # and duplicates are still detected after the rebuild
        with pytest.raises(KeyViolation):
            table.insert({**_valid_employee(100), "name": "other"})


class TestTransactions:
    def test_commit_keeps_changes(self, database):
        with database.transaction():
            database.insert("employees", _valid_employee(200))
            database.insert("employees", _valid_employee(201))
        assert len(database.table("employees")) == 12

    def test_rollback_on_violation(self, database):
        with pytest.raises(DependencyViolation):
            with database.transaction():
                database.insert("employees", _valid_employee(300))
                database.insert("employees", _invalid_employee(301))
        assert len(database.table("employees")) == 10
        assert not any(t["emp_id"] == 300 for t in database.table("employees"))

    def test_rollback_on_any_exception(self, database):
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(400))
                raise RuntimeError("abort")
        assert len(database.table("employees")) == 10

    def test_rollback_covers_updates_and_deletes(self, database):
        table = database.table("employees")
        victim = next(iter(table))
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.delete(victim)
                raise RuntimeError("abort")
        assert victim in table

    def test_nested_use_is_sequential(self, database):
        with database.transaction():
            database.insert("employees", _valid_employee(500))
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(501))
                raise RuntimeError("abort")
        ids = {t["emp_id"] for t in database.table("employees")}
        assert 500 in ids and 501 not in ids

    def test_transaction_returns_database(self, database):
        with database.transaction() as handle:
            assert handle is database
