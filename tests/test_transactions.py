"""Tests for table snapshots and database transactions."""

import pytest

from repro.engine import Database, Table
from repro.errors import DependencyViolation, KeyViolation
from repro.workloads.employees import employee_definition, generate_employees


@pytest.fixture
def database():
    database = Database()
    definition = employee_definition()
    table = database.create_table("employees", definition.scheme, domains=definition.domains,
                                  key=definition.key, dependencies=definition.dependencies)
    table.insert_many(generate_employees(10, seed=71))
    return database


def _valid_employee(emp_id):
    return {"emp_id": emp_id, "name": "new", "salary": 3000.0, "jobtype": "secretary",
            "typing_speed": 70, "foreign_languages": "english"}


def _invalid_employee(emp_id):
    return {"emp_id": emp_id, "name": "bad", "salary": 3000.0, "jobtype": "salesman",
            "typing_speed": 70, "foreign_languages": "english"}


class TestTableSnapshots:
    def test_snapshot_restore_round_trip(self, database):
        table = database.table("employees")
        before = table.snapshot()
        table.insert(_valid_employee(100))
        assert len(table) == 11
        table.restore(before)
        assert len(table) == 10

    def test_restore_rebuilds_indexes(self, database):
        table = database.table("employees")
        before = table.snapshot()
        table.insert(_valid_employee(100))
        table.restore(before)
        # key index no longer contains emp_id 100, so re-inserting must succeed
        table.insert(_valid_employee(100))
        # and duplicates are still detected after the rebuild
        with pytest.raises(KeyViolation):
            table.insert({**_valid_employee(100), "name": "other"})


class TestTransactions:
    def test_commit_keeps_changes(self, database):
        with database.transaction():
            database.insert("employees", _valid_employee(200))
            database.insert("employees", _valid_employee(201))
        assert len(database.table("employees")) == 12

    def test_rollback_on_violation(self, database):
        with pytest.raises(DependencyViolation):
            with database.transaction():
                database.insert("employees", _valid_employee(300))
                database.insert("employees", _invalid_employee(301))
        assert len(database.table("employees")) == 10
        assert not any(t["emp_id"] == 300 for t in database.table("employees"))

    def test_rollback_on_any_exception(self, database):
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(400))
                raise RuntimeError("abort")
        assert len(database.table("employees")) == 10

    def test_rollback_covers_updates_and_deletes(self, database):
        table = database.table("employees")
        victim = next(iter(table))
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.delete(victim)
                raise RuntimeError("abort")
        assert victim in table

    def test_nested_use_is_sequential(self, database):
        with database.transaction():
            database.insert("employees", _valid_employee(500))
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(501))
                raise RuntimeError("abort")
        ids = {t["emp_id"] for t in database.table("employees")}
        assert 500 in ids and 501 not in ids

    def test_transaction_returns_database(self, database):
        with database.transaction() as handle:
            assert handle is database


class TestRollbackVersionRestore:
    """Rollback rewinds the planning-relevant side state it churned."""

    def test_statistics_version_restored(self, database):
        database.analyze()
        version = database.statistics_version
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(700))
                raise RuntimeError("abort")
        assert database.statistics_version == version
        assert database.statistics.is_fresh("employees")

    def test_feedback_version_restored(self, database):
        feedback = database.cardinality_feedback
        feedback.record(("test", "fp"), database.statistics_version,
                        ["employees"], 42)
        version = feedback.version
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(701))
                raise RuntimeError("abort")
        assert feedback.version == version

    def test_observations_from_inside_the_transaction_are_dropped(self, database):
        feedback = database.cardinality_feedback
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(702))
                feedback.record(("txn", "fp"), database.statistics_version,
                                ["employees"], 7)
                raise RuntimeError("abort")
        # the rolled-back statistics version will be handed out again for a
        # different state; the observation keyed under it must not survive
        assert feedback.lookup(("txn", "fp"), database.statistics_version + 1) is None

    def test_statistics_collected_inside_are_dropped(self, database):
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(703))
                database.analyze("employees")
                raise RuntimeError("abort")
        assert database.stats("employees") is None

    def test_plans_cached_before_stay_valid(self, database):
        from repro.algebra.expressions import RelationRef

        database.analyze()
        database.execute(RelationRef("employees"))
        hits_before = database.physical_executor.cache_hits
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(704))
                raise RuntimeError("abort")
        database.execute(RelationRef("employees"))
        assert database.physical_executor.cache_hits == hits_before + 1

    def test_plans_cached_inside_are_evicted(self, database):
        from repro.algebra.expressions import RelationRef

        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert("employees", _valid_employee(705))
                database.analyze("employees")   # bumps the statistics version
                database.execute(RelationRef("employees"))
                cached_inside = len(database.physical_executor.cache)
                raise RuntimeError("abort")
        assert len(database.physical_executor.cache) < cached_inside

    def test_tables_created_inside_are_emptied_not_dropped(self, database):
        from repro.model.scheme import FlexibleScheme

        with pytest.raises(RuntimeError):
            with database.transaction():
                database.create_table("scratch", FlexibleScheme(1, 1, ["x"]))
                database.insert("scratch", {"x": 1})
                raise RuntimeError("abort")
        assert "scratch" in database.tables()       # DDL survives
        assert len(database.table("scratch")) == 0  # its DML does not
