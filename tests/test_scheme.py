"""Tests for flexible schemes: construction, DNF unfolding, lazy membership."""

import pytest

from repro.errors import SchemeError
from repro.model.attributes import attrset
from repro.model.scheme import FlexibleScheme, UnfoldedScheme, relational_scheme


class TestConstruction:
    def test_relational_scheme(self):
        scheme = FlexibleScheme.relational(["A", "B", "C"])
        assert scheme.at_least == scheme.at_most == 3
        assert scheme.is_relational

    def test_disjoint_union(self):
        scheme = FlexibleScheme.disjoint_union(["C", "D"])
        assert (scheme.at_least, scheme.at_most) == (1, 1)

    def test_non_disjoint_union(self):
        scheme = FlexibleScheme.non_disjoint_union(["E", "F", "G"])
        assert (scheme.at_least, scheme.at_most) == (1, 3)

    def test_nested_three_tuple_shorthand(self):
        scheme = FlexibleScheme(2, 2, ["A", (1, 1, ["C", "D"])])
        assert scheme.attributes == attrset(["A", "C", "D"])

    def test_rejects_empty_components(self):
        with pytest.raises(SchemeError):
            FlexibleScheme(0, 0, [])

    def test_rejects_negative_lower_bound(self):
        with pytest.raises(SchemeError):
            FlexibleScheme(-1, 1, ["A"])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(SchemeError):
            FlexibleScheme(2, 1, ["A", "B"])

    def test_rejects_upper_bound_above_component_count(self):
        with pytest.raises(SchemeError):
            FlexibleScheme(1, 3, ["A", "B"])

    def test_rejects_duplicate_attributes_across_components(self):
        with pytest.raises(SchemeError):
            FlexibleScheme(2, 2, ["A", FlexibleScheme(1, 1, ["A", "B"])])

    def test_rejects_non_integer_bounds(self):
        with pytest.raises(SchemeError):
            FlexibleScheme("1", 1, ["A"])

    def test_attributes_collect_nested(self):
        scheme = FlexibleScheme(2, 2, ["A", FlexibleScheme(1, 1, ["B", "C"])])
        assert scheme.attributes == attrset(["A", "B", "C"])


class TestExample1:
    """The scheme and DNF of Example 1 of the paper."""

    def test_dnf_has_exactly_14_combinations(self, example1_scheme, example1_dnf):
        unfolded = {frozenset(a.name for a in combo) for combo in example1_scheme.dnf()}
        assert unfolded == example1_dnf

    def test_count_variants(self, example1_scheme):
        assert example1_scheme.count_variants() == 14

    def test_admits_matches_dnf(self, example1_scheme, example1_dnf):
        for combo in example1_dnf:
            assert example1_scheme.admits(combo)

    def test_rejects_combinations_outside_dnf(self, example1_scheme):
        assert not example1_scheme.admits(["A", "B"])            # no union member
        assert not example1_scheme.admits(["A", "B", "C", "D"])  # both disjoint variants
        assert not example1_scheme.admits(["A", "C", "E"])       # missing unconditioned B
        assert not example1_scheme.admits(["A", "B", "C", "E", "Z"])  # unknown attribute


class TestLazyMembership:
    def test_admits_agrees_with_dnf_on_random_schemes(self):
        from repro.workloads.generators import random_flexible_scheme
        from itertools import combinations

        for seed in range(5):
            scheme = random_flexible_scheme(base_attributes=2, variant_groups=2,
                                            attributes_per_group=2, seed=seed)
            dnf = {frozenset(a.name for a in combo) for combo in scheme.dnf()}
            universe = [a.name for a in scheme.attributes]
            for size in range(1, len(universe) + 1):
                for combo in combinations(universe, size):
                    assert scheme.admits(combo) == (frozenset(combo) in dnf)

    def test_optional_nested_component(self):
        scheme = FlexibleScheme(3, 3, ["A", "B", FlexibleScheme(0, 2, ["C", "D"])])
        assert scheme.admits(["A", "B"])
        assert scheme.admits(["A", "B", "C"])
        assert scheme.admits(["A", "B", "C", "D"])
        assert not scheme.admits(["A", "C"])

    def test_dnf_contains_base_combo_for_optional_component(self):
        scheme = FlexibleScheme(3, 3, ["A", "B", FlexibleScheme(0, 2, ["C", "D"])])
        combos = {frozenset(a.name for a in c) for c in scheme.dnf()}
        assert frozenset({"A", "B"}) in combos

    def test_deeply_nested(self):
        inner = FlexibleScheme(1, 1, ["X", "Y"])
        middle = FlexibleScheme(1, 2, ["C", inner])
        scheme = FlexibleScheme(2, 2, ["A", middle])
        assert scheme.admits(["A", "C"])
        assert scheme.admits(["A", "X"])
        assert scheme.admits(["A", "C", "Y"])
        assert not scheme.admits(["A", "X", "Y"])
        assert not scheme.admits(["A"])


class TestStructuralOperations:
    def test_project_keeps_requested_attributes(self, example1_scheme):
        projected = example1_scheme.project(["A", "B", "C", "D"])
        assert projected.attributes == attrset(["A", "B", "C", "D"])
        assert projected.admits(["A", "B", "C"])

    def test_project_to_nothing_rejected(self, example1_scheme):
        with pytest.raises(SchemeError):
            example1_scheme.project(["Z"])

    def test_extend_relational(self):
        scheme = relational_scheme(["A", "B"]).extend(["C"])
        assert scheme.admits(["A", "B", "C"])
        assert not scheme.admits(["A", "B"])

    def test_extend_rejects_existing_attribute(self):
        with pytest.raises(SchemeError):
            relational_scheme(["A"]).extend(["A"])

    def test_extend_variant_scheme(self, example1_scheme):
        extended = example1_scheme.extend(["tag"])
        assert extended.admits(["A", "B", "C", "E", "tag"])
        assert not extended.admits(["A", "B", "C", "E"])

    def test_product_of_disjoint_schemes(self):
        left = relational_scheme(["A"])
        right = relational_scheme(["B"])
        product = left.product(right)
        assert product.admits(["A", "B"])
        assert not product.admits(["A"])

    def test_product_rejects_overlap(self):
        with pytest.raises(SchemeError):
            relational_scheme(["A"]).product(relational_scheme(["A", "B"]))

    def test_outer_union_disjoint(self):
        left = relational_scheme(["A"])
        right = relational_scheme(["B"])
        union = left.outer_union(right)
        assert union.admits(["A"]) and union.admits(["B"])
        assert not union.admits(["A", "B"])

    def test_outer_union_overlapping(self):
        left = relational_scheme(["A", "B"])
        right = relational_scheme(["A", "C"])
        union = left.outer_union(right)
        assert union.admits(["A", "B"]) and union.admits(["A", "C"])
        assert not union.admits(["A", "B", "C"])


class TestEqualityAndDisplay:
    def test_structural_equality(self):
        first = FlexibleScheme(2, 2, ["A", FlexibleScheme(1, 1, ["B", "C"])])
        second = FlexibleScheme(2, 2, ["A", FlexibleScheme(1, 1, ["C", "B"])])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_bounds(self):
        assert FlexibleScheme(1, 2, ["A", "B"]) != FlexibleScheme(2, 2, ["A", "B"])

    def test_repr_shows_three_tuple(self):
        assert repr(relational_scheme(["A", "B"])).startswith("<2, 2, {")


class TestUnfoldedScheme:
    def test_membership(self):
        scheme = UnfoldedScheme({frozenset(attrset(["A", "B"]).as_frozenset()),
                                 frozenset(attrset(["A", "C"]).as_frozenset())})
        assert scheme.admits(["A", "B"]) and scheme.admits(["A", "C"])
        assert not scheme.admits(["A"])

    def test_count_variants(self):
        scheme = UnfoldedScheme({frozenset(attrset(["A"]).as_frozenset())})
        assert scheme.count_variants() == 1

    def test_rejects_empty(self):
        with pytest.raises(SchemeError):
            UnfoldedScheme(set())
