"""Differential tests: the physical engine must equal the naive evaluator.

The naive set evaluator in :mod:`repro.algebra.evaluator` is the reference
implementation.  For randomized expression trees over the workload generators —
including guard/variant-record edge cases — the physical executor must produce
exactly the same tuple sets (and raise the same error class where the algebra
rejects an operation, e.g. merging disagreeing tuples).

Every check runs the whole corpus through **both** physical modes: the row
engine and the vectorized batch engine (compiled predicates, column arrays,
lazy merged join output), so the batch path is differentially verified against
the naive evaluator too.  On success the row and batch executions must also
report **identical ExecutionStats totals** — vectorization amortizes the
bookkeeping, it never changes what is counted — and the whole-plan corpus in
:class:`TestWholePlanVectorization` additionally pins down ``plan.mode``:
every operator shape (unions, difference, extension, rename, products,
multiway joins, variant records missing join attributes, empty inputs) must
lower to ``"batch"``, with only the documented row fallbacks
(data-dependent ``on=None`` joins, provably tiny nested-loop inputs)
reporting ``"mixed"``.
"""

import random

import pytest

from repro.algebra import (
    Aggregate,
    Difference,
    EmptyRelation,
    Evaluator,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    PresencePredicate,
    TruePredicate,
)
from repro.errors import ReproError
from repro.exec import PhysicalExecutor, PhysicalPlanner
from repro.model.tuples import FlexTuple
from repro.workloads.employees import VARIANTS_BY_JOBTYPE, generate_employees
from repro.workloads.generators import (
    instance_for_dependency,
    random_explicit_ad,
    random_flexible_scheme,
    random_instance,
)


def _outcome(thunk):
    """Run a query path, capturing the tuple set and the result, or the error class."""
    try:
        result = thunk()
        return ("ok", result.tuples), result
    except ReproError as error:
        return ("error", type(error)), None


def _operator_stats_rows(result):
    """Per-operator ``(label, rows_in, rows_out, invocations)`` in plan order.

    The batch forms of operators without a parameterized ``label()`` override
    fall back to their class ``name`` ("batch-merge-union" vs "merge-union"),
    so the mode prefix is stripped before comparing — the *numbers* must match
    exactly between row and batch executions.
    """
    rows = []
    for op in result.context.operator_stats:
        label = op.label
        if label.startswith("batch-"):
            label = label[len("batch-"):]
        rows.append((label, op.rows_in, op.rows_out, op.invocations))
    return rows


def assert_parity(expression, source, batch_size=7, expected_mode=None,
                  strict_error_class=True):
    """Physical execution — row mode AND the vectorized batch mode — agrees
    with the naive evaluator on the result (or on the raised error class), and
    the row and batch runs count identical ExecutionStats totals *and*
    identical per-operator rows_in/rows_out/invocations.  With
    ``expected_mode`` the vectorized plan's ``mode`` is pinned down too.

    ``strict_error_class=False`` (used by the fuzz harness) accepts error
    outcomes whose *classes* differ: a random tree can contain several faulty
    operators, and which fault surfaces first depends on evaluation order —
    bottom-up in the naive evaluator, pull-driven in the pipelined engines —
    which is implementation-defined.  Both sides must still reject; an
    ok-vs-error split is always a failure."""
    naive, _ = _outcome(lambda: Evaluator(source).evaluate(expression))
    result_by_mode = {}
    for vectorize in (False, True):
        plan = PhysicalPlanner(source=source, vectorize=vectorize).plan(expression)
        physical, result = _outcome(lambda: plan.execute(source, batch_size=batch_size))
        agrees = physical == naive or (
            not strict_error_class
            and physical[0] == "error" and naive[0] == "error"
        )
        assert agrees, "physical[{}] {} != naive {}\nplan:\n{}".format(
            plan.mode, physical[0], naive[0], plan.explain()
        )
        if vectorize and expected_mode is not None:
            assert plan.mode == expected_mode, plan.explain()
        result_by_mode[vectorize] = result
    row_result, batch_result = result_by_mode[False], result_by_mode[True]
    if row_result is not None and batch_result is not None:
        assert row_result.stats.as_dict() == batch_result.stats.as_dict(), (
            "row and batch executions disagree on the work counters"
        )
        assert _operator_stats_rows(row_result) == _operator_stats_rows(batch_result), (
            "row and batch executions disagree on the per-operator counters"
        )


# -- fixed sources -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def employee_source():
    """Employees (variant records!) plus an assignments relation sharing emp_id."""
    employees = {FlexTuple(row) for row in generate_employees(80, seed=42)}
    assignments = {
        FlexTuple({"emp_id": emp_id, "project": "p{}".format(emp_id % 5)})
        for emp_id in range(1, 61)
    }
    return {"employees": employees, "assignments": assignments}


# -- hand-picked guard / variant edge cases ----------------------------------------------


class TestVariantEdgeCases:
    def test_scan_guard_drops_variant_records(self, employee_source):
        for jobtype, attributes in VARIANTS_BY_JOBTYPE.items():
            assert_parity(TypeGuardNode(RelationRef("employees"), attributes),
                          employee_source)

    def test_join_skips_tuples_lacking_join_attributes(self, employee_source):
        # typing_speed exists only on secretaries: the join attribute set is the
        # full attribute intersection, so nothing but secretaries can pair up.
        secretaries = Projection(RelationRef("employees"), ["emp_id", "typing_speed"])
        assert_parity(NaturalJoin(RelationRef("employees"), secretaries), employee_source)

    def test_join_on_narrower_attributes_raises_on_disagreement(self, employee_source):
        # Joining on emp_id only while both sides carry (different) salaries must
        # raise the same error in both engines when a merge disagrees.
        raised = Rename(
            Projection(RelationRef("employees"), ["emp_id", "salary"]),
            {"salary": "pay"},
        )
        doubled = Extension(
            Projection(RelationRef("employees"), ["emp_id"]), "salary", -1.0
        )
        assert_parity(NaturalJoin(doubled, Projection(RelationRef("employees"),
                                                      ["emp_id", "salary"]),
                                  on=["emp_id"]),
                      employee_source)
        assert_parity(NaturalJoin(raised, RelationRef("employees"), on=["emp_id"]),
                      employee_source)

    def test_multiway_join_preserves_masters_without_partners(self, employee_source):
        fragment = Projection(
            TypeGuardNode(RelationRef("employees"), ["typing_speed"]),
            ["emp_id", "typing_speed"],
        )
        master = Projection(RelationRef("employees"), ["emp_id", "name", "jobtype"])
        assert_parity(MultiwayJoin([master, fragment], on=["emp_id"]), employee_source)

    def test_projection_drops_empty_tuples(self, employee_source):
        assert_parity(Projection(RelationRef("employees"), ["sales_commission"]),
                      employee_source)

    def test_rename_can_collapse_tuples(self, employee_source):
        assert_parity(
            Rename(Projection(RelationRef("employees"), ["jobtype"]),
                   {"jobtype": "kind"}),
            employee_source,
        )

    def test_difference_union_and_empty(self, employee_source):
        secretaries = Selection(RelationRef("employees"),
                                Comparison("jobtype", "=", "secretary"))
        assert_parity(Difference(RelationRef("employees"), secretaries), employee_source)
        assert_parity(Union(secretaries, EmptyRelation()), employee_source)
        assert_parity(OuterUnion(secretaries,
                                 Selection(RelationRef("employees"),
                                           Comparison("jobtype", "=", "salesman"))),
                      employee_source)

    def test_guarded_predicate_on_missing_attribute_is_false(self, employee_source):
        assert_parity(Selection(RelationRef("employees"),
                                Comparison("typing_speed", ">", 0)),
                      employee_source)
        assert_parity(Selection(RelationRef("employees"),
                                Not(PresencePredicate(["typing_speed"]))),
                      employee_source)


class TestWholePlanVectorization:
    """Every operator shape must lower to a pure-batch plan (mode == "batch"),
    produce the naive result, and count exactly what the row engine counts —
    the whole-plan follow-up to PR 3's hot-path-only vectorization."""

    def test_union_of_heterogeneous_selections(self, employee_source):
        assert_parity(
            OuterUnion(
                Selection(RelationRef("employees"),
                          Comparison("jobtype", "=", "secretary")),
                Selection(RelationRef("employees"),
                          Comparison("jobtype", "=", "salesman"))),
            employee_source, expected_mode="batch")
        assert_parity(Union(RelationRef("employees"), RelationRef("assignments")),
                      employee_source, expected_mode="batch")

    def test_difference(self, employee_source):
        assert_parity(
            Difference(RelationRef("employees"),
                       Selection(RelationRef("employees"),
                                 Comparison("salary", ">", 4000.0))),
            employee_source, expected_mode="batch")

    def test_extension_and_rename(self, employee_source):
        assert_parity(
            Extension(Rename(Projection(RelationRef("employees"),
                                        ["emp_id", "jobtype"]),
                             {"jobtype": "kind"}),
                      "source", "hr"),
            employee_source, expected_mode="batch")

    def test_extension_collision_raises_in_both_modes(self, employee_source):
        assert_parity(Extension(RelationRef("employees"), "salary", 0.0),
                      employee_source, expected_mode="batch")

    def test_product(self, employee_source):
        assert_parity(
            Product(Projection(RelationRef("employees"), ["emp_id"]),
                    Projection(RelationRef("assignments"), ["project"])),
            employee_source, expected_mode="batch")

    def test_multiway_join_with_variant_fragments(self, employee_source):
        master = Projection(RelationRef("employees"), ["emp_id", "name", "jobtype"])
        fragments = [
            Projection(TypeGuardNode(RelationRef("employees"), [attr]),
                       ["emp_id", attr])
            for attr in ("typing_speed", "sales_commission")
        ]
        assert_parity(MultiwayJoin([master] + fragments, on=["emp_id"]),
                      employee_source, expected_mode="batch")

    def test_join_with_variant_records_missing_join_attribute(self, employee_source):
        # typing_speed exists only on secretaries; everything else is guarded
        # out of the hash build via the presence bitmap.
        assert_parity(
            NaturalJoin(RelationRef("employees"),
                        Projection(RelationRef("employees"),
                                   ["emp_id", "typing_speed"]),
                        on=["emp_id", "typing_speed"]),
            employee_source, expected_mode="batch")

    def test_empty_inputs_stay_batch(self, employee_source):
        assert_parity(Union(Selection(RelationRef("employees"),
                                      Comparison("salary", ">", 4000.0)),
                            EmptyRelation()),
                      employee_source, expected_mode="batch")
        assert_parity(Difference(EmptyRelation(), RelationRef("employees")),
                      employee_source, expected_mode="batch")

    def test_whole_realistic_plan_is_batch(self, employee_source):
        """The paper's restoration shape: outer union over heterogeneous
        variants, an n-way multiway join, a tag extension — one batch plan."""
        master = OuterUnion(
            Selection(RelationRef("employees"),
                      Comparison("jobtype", "=", "secretary")),
            Selection(RelationRef("employees"),
                      Comparison("jobtype", "=", "software engineer")))
        fragment = Projection(RelationRef("employees"), ["emp_id", "salary"])
        query = Extension(
            MultiwayJoin([master, fragment, RelationRef("assignments")],
                         on=["emp_id"]),
            "restored", True)
        assert_parity(query, employee_source, expected_mode="batch")

    def test_data_dependent_join_still_falls_back_to_row(self, employee_source):
        # on=None: the shared attributes depend on the data, no batch form.
        assert_parity(NaturalJoin(RelationRef("employees"),
                                  RelationRef("assignments")),
                      employee_source, expected_mode="mixed")


class TestAnalyticOperatorParity:
    """Aggregation, sorting, top-k and scalar-subquery extension must agree
    across all three engines, lower to pure-batch plans, and count identical
    per-operator rows_in/rows_out/invocations between the two physical modes."""

    def test_group_by_variant_attribute_routes_bottom_group(self, employee_source):
        # typing_speed exists only on secretaries: everyone else lands in the
        # ⊥ group (output row without the attribute).
        assert_parity(
            Aggregate(RelationRef("employees"), group_by=("typing_speed",),
                      specs=("count", ("min", "salary"))),
            employee_source, expected_mode="batch")

    def test_aggregate_over_heterogeneous_union(self, employee_source):
        assert_parity(
            Aggregate(Union(RelationRef("employees"), RelationRef("assignments")),
                      group_by=("jobtype",),
                      specs=("count", ("count", "salary"), ("sum", "salary"),
                             ("min", "salary"), ("max", "salary"), ("avg", "salary"))),
            employee_source, expected_mode="batch")

    def test_global_aggregate_including_empty_input(self, employee_source):
        assert_parity(Aggregate(RelationRef("employees"),
                                specs=("count", ("avg", "salary"))),
                      employee_source, expected_mode="batch")
        assert_parity(Aggregate(EmptyRelation(),
                                specs=("count", ("max", "salary"))),
                      employee_source, expected_mode="batch")

    def test_sum_over_non_numeric_raises_in_all_engines(self, employee_source):
        assert_parity(Aggregate(RelationRef("employees"),
                                specs=(("sum", "name"),)),
                      employee_source, expected_mode="batch")

    def test_sorted_limit_fuses_and_agrees(self, employee_source):
        assert_parity(Limit(Sort(RelationRef("employees"),
                                 ["-salary", "emp_id"]), 7),
                      employee_source, expected_mode="batch")
        # NULL/absent sort last regardless of direction.
        assert_parity(Limit(Sort(RelationRef("employees"),
                                 ["typing_speed"]), 5),
                      employee_source, expected_mode="batch")

    def test_bare_limit_uses_canonical_order(self, employee_source):
        assert_parity(Limit(RelationRef("employees"), 3),
                      employee_source, expected_mode="batch")
        assert_parity(Limit(RelationRef("employees"), 0),
                      employee_source, expected_mode="batch")

    def test_large_limit_falls_back_to_sort_with_cutoff(self, employee_source):
        # k close to n prices the heap out (k² > n): the SortOp form runs.
        assert_parity(Limit(Sort(RelationRef("employees"), ["emp_id"]), 70),
                      employee_source, expected_mode="batch")

    def test_standalone_sort_is_set_identity(self, employee_source):
        assert_parity(Sort(RelationRef("employees"), ["salary"]),
                      employee_source, expected_mode="batch")

    def test_scalar_subquery_extension(self, employee_source):
        top = Aggregate(RelationRef("employees"), specs=(("max", "salary"),))
        assert_parity(SubqueryExtension(RelationRef("assignments"), "top_salary", top),
                      employee_source, expected_mode="batch")

    def test_scalar_subquery_arity_errors_agree(self, employee_source):
        # More than one tuple → AlgebraError in every engine.
        many = Projection(RelationRef("employees"), ["emp_id"])
        assert_parity(SubqueryExtension(RelationRef("assignments"), "x", many),
                      employee_source, expected_mode="batch")
        # More than one attribute → AlgebraError too.
        wide = Limit(Projection(RelationRef("employees"), ["emp_id", "salary"]), 1)
        assert_parity(SubqueryExtension(RelationRef("assignments"), "x", wide),
                      employee_source, expected_mode="batch")

    def test_empty_scalar_subquery_leaves_attribute_absent(self, employee_source):
        empty = Limit(EmptyRelation(), 1)
        assert_parity(SubqueryExtension(RelationRef("assignments"), "x", empty),
                      employee_source, expected_mode="batch")

    def test_extension_collision_with_subquery_value(self, employee_source):
        scalar = Limit(Projection(RelationRef("assignments"), ["project"]), 1)
        assert_parity(SubqueryExtension(RelationRef("assignments"), "project", scalar),
                      employee_source, expected_mode="batch")

    def test_aggregate_over_join_pipeline(self, employee_source):
        joined = NaturalJoin(RelationRef("employees"), RelationRef("assignments"),
                             on=["emp_id"])
        query = Limit(Sort(Aggregate(joined, group_by=("project",),
                                     specs=(("avg", "salary"), "count")),
                           ["-avg_salary"]), 3)
        assert_parity(query, employee_source, expected_mode="batch")


class TestAggregatePlanCacheRekey:
    """Aggregate plans must leave the plan cache when ANALYZE or DML shifts
    the versions baked into the cache key — stale group-count estimates must
    not pin a stale physical plan."""

    def _aggregate_query(self):
        return Aggregate(RelationRef("employees"), group_by=("jobtype",),
                         specs=("count", ("avg", "salary")))

    def test_steady_state_hits_the_cache(self, employee_database):
        executor = employee_database.physical_executor
        query = self._aggregate_query()
        employee_database.execute(query)   # may record group-count feedback
        employee_database.execute(query)   # re-plans under the new version once
        hits = executor.cache_hits
        misses = executor.cache_misses
        employee_database.execute(query)   # steady state: cache hit
        assert executor.cache_hits == hits + 1
        assert executor.cache_misses == misses

    def test_analyze_rekeys_aggregate_plans(self, employee_database):
        executor = employee_database.physical_executor
        query = self._aggregate_query()
        employee_database.execute(query)
        employee_database.execute(query)
        misses = executor.cache_misses
        employee_database.analyze()
        employee_database.execute(query)
        assert executor.cache_misses == misses + 1

    def test_dml_rekeys_aggregate_plans(self, employee_database):
        executor = employee_database.physical_executor
        query = self._aggregate_query()
        first = employee_database.execute(query)
        misses = executor.cache_misses
        new_id = 1 + max(tup["emp_id"] for tup in
                         employee_database.relation("employees"))
        employee_database.insert("employees", {
            "emp_id": new_id, "name": "zora", "salary": 9999.0,
            "jobtype": "secretary", "typing_speed": 99,
            "foreign_languages": "english"})
        second = employee_database.execute(query)
        assert executor.cache_misses > misses
        assert second.tuples != first.tuples  # the new row moved an aggregate


class TestEngineParity:
    def test_database_executor_switch_agrees(self, employee_database):
        query = NaturalJoin(
            Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0)),
            Projection(RelationRef("employees"), ["emp_id", "jobtype"]),
        )
        physical = employee_database.execute(query, executor="physical")
        naive = employee_database.execute(query, executor="naive")
        assert physical.tuples == naive.tuples

    def test_index_scan_matches_full_scan(self, employee_database):
        query = Selection(RelationRef("employees"), Comparison("emp_id", "=", 7))
        executor_with = PhysicalExecutor(employee_database, use_indexes=True)
        executor_without = PhysicalExecutor(employee_database, use_indexes=False)
        with_index = executor_with.execute(query)
        without_index = executor_without.execute(query)
        assert with_index.tuples == without_index.tuples
        assert with_index.stats.tuples_scanned < without_index.stats.tuples_scanned


# -- randomized differential sweep -----------------------------------------------------------


def _random_predicate(rng, attributes, values):
    kind = rng.randrange(6)
    attribute = rng.choice(attributes)
    value = rng.choice(values)
    if kind == 0:
        return Comparison(attribute, rng.choice(["=", "<", ">", "<=", ">=", "!="]), value)
    if kind == 1:
        return PresencePredicate([attribute, rng.choice(attributes)])
    if kind == 2:
        return And(Comparison(attribute, ">", value),
                   Comparison(rng.choice(attributes), "<", rng.choice(values)))
    if kind == 3:
        return Or(Comparison(attribute, "=", value),
                  Comparison(rng.choice(attributes), "=", rng.choice(values)))
    if kind == 4:
        return Not(Comparison(attribute, "=", value))
    return TruePredicate()


def _random_expression(rng, names, attributes, values, depth):
    if depth <= 0 or rng.random() < 0.25:
        return RelationRef(rng.choice(names))
    kind = rng.randrange(9)
    child = lambda: _random_expression(rng, names, attributes, values, depth - 1)
    if kind == 0:
        return Selection(child(), _random_predicate(rng, attributes, values))
    if kind == 1:
        return TypeGuardNode(child(), rng.sample(attributes, rng.randrange(1, 3)))
    if kind == 2:
        return Projection(child(), rng.sample(attributes, rng.randrange(1, 4)))
    if kind == 3:
        return Union(child(), child())
    if kind == 4:
        return OuterUnion(child(), child())
    if kind == 5:
        return Difference(child(), child())
    if kind == 6:
        on = rng.sample(attributes, rng.randrange(1, 3)) if rng.random() < 0.5 else None
        return NaturalJoin(child(), child(), on=on)
    if kind == 7:
        return MultiwayJoin([child(), child()], on=rng.sample(attributes, 1))
    return Extension(child(), "tag{}".format(rng.randrange(4)), rng.choice(values))


@pytest.mark.parametrize("seed", range(8))
def test_randomized_parity_over_generated_schemes(seed):
    rng = random.Random(1000 + seed)
    scheme = random_flexible_scheme(base_attributes=3, variant_groups=2,
                                    attributes_per_group=2, seed=seed)
    attributes = sorted(a.name for a in scheme.attributes)
    source = {
        "r1": set(random_instance(scheme, count=40, seed=seed)),
        "r2": set(random_instance(scheme, count=30, seed=seed + 50)),
    }
    for _ in range(12):
        expression = _random_expression(rng, ["r1", "r2"], attributes,
                                        list(range(10)), depth=3)
        assert_parity(expression, source, batch_size=rng.choice([1, 3, 16, 256]))


@pytest.mark.parametrize("seed", range(4))
def test_randomized_parity_over_dependency_instances(seed):
    """Variant-record instances generated from a random explicit AD."""
    rng = random.Random(2000 + seed)
    dependency = random_explicit_ad(variant_count=3, attributes_per_variant=2,
                                    shared_attributes=1, seed=seed)
    tuples = instance_for_dependency(dependency, base_attributes=("id",), count=50,
                                     invalid_fraction=0.2, seed=seed)
    attributes = sorted({a.name for tup in tuples for a in tup.attributes})
    source = {"r": set(tuples)}
    for _ in range(10):
        expression = _random_expression(rng, ["r"], attributes,
                                        ["kind-1", "kind-2", "kind-3", 1, 2, 3], depth=3)
        assert_parity(expression, source, batch_size=rng.choice([1, 5, 64]))


@pytest.mark.parametrize("seed", range(4))
def test_randomized_parity_over_employee_workload(seed, employee_source):
    rng = random.Random(3000 + seed)
    attributes = ["emp_id", "name", "salary", "jobtype", "typing_speed",
                  "foreign_languages", "products", "programming_languages",
                  "sales_commission", "project"]
    values = [1, 10, 25, 4000.0, 6000.0, "secretary", "salesman",
              "software engineer", "p1", "p3"]
    for _ in range(10):
        expression = _random_expression(rng, ["employees", "assignments"],
                                        attributes, values, depth=3)
        assert_parity(expression, employee_source, batch_size=rng.choice([1, 8, 256]))
