"""Tests for the axiom systems Å and Å*: derivations, proof traces, rule dropping."""

import pytest

from repro.core.axioms import (
    AXIOM_SYSTEM_AD,
    AXIOM_SYSTEM_COMBINED,
    AxiomSystem,
    chain_derives,
    derive,
    forward_chain,
)
from repro.core.closure import implies
from repro.core.dependencies import ad, ead, fd
from repro.errors import DerivationError
from repro.model.attributes import AttributeSet


class TestSystems:
    def test_pure_system_has_four_rules(self):
        assert len(AXIOM_SYSTEM_AD.rules) == 4
        assert "A1 projectivity" in AXIOM_SYSTEM_AD.rule_names()

    def test_combined_system_has_seven_rules(self):
        assert len(AXIOM_SYSTEM_COMBINED.rules) == 7
        assert "AF2 combined transitivity" in AXIOM_SYSTEM_COMBINED.rule_names()

    def test_without_removes_a_rule(self):
        reduced = AXIOM_SYSTEM_AD.without("A2 additivity")
        assert len(reduced.rules) == 3

    def test_without_unknown_rule_rejected(self):
        with pytest.raises(DerivationError):
            AXIOM_SYSTEM_AD.without("nonexistent")


class TestConstructiveDerivation:
    def test_reflexivity_only(self):
        trace = derive([], ad(["A", "B"], ["A"]), system=AXIOM_SYSTEM_AD)
        assert trace is not None
        assert trace.conclusion == ad(["A", "B"], ["A"])
        assert all("reflexivity" in rule for rule in trace.rules_used())

    def test_empty_rhs(self):
        trace = derive([], ad("A", []), system=AXIOM_SYSTEM_AD)
        assert trace is not None and trace.conclusion == ad("A", [])

    def test_projectivity_and_augmentation(self):
        trace = derive([ad("A", ["B", "C"])], ad(["A", "D"], "B"), system=AXIOM_SYSTEM_AD)
        assert trace is not None
        rules = trace.rules_used()
        assert any("projectivity" in rule for rule in rules)
        assert any("augmentation" in rule for rule in rules)

    def test_additivity(self):
        trace = derive([ad("A", "B"), ad("A", "C")], ad("A", ["B", "C"]), system=AXIOM_SYSTEM_AD)
        assert trace is not None
        assert any("additivity" in rule for rule in trace.rules_used())

    def test_non_derivable_returns_none(self):
        assert derive([ad("A", "B")], ad("B", "A"), system=AXIOM_SYSTEM_AD) is None
        assert derive([ad("A", "B"), ad("B", "C")], ad("A", "C"), system=AXIOM_SYSTEM_AD) is None

    def test_pascal_workaround_trace(self):
        trace = derive([fd(["S", "M"], "T"), ad("T", "N")], ad(["S", "M"], "N"))
        assert trace is not None
        assert any("combined transitivity" in rule for rule in trace.rules_used())

    def test_fd_derivation(self):
        trace = derive([fd("A", "B"), fd("B", "C")], fd("A", "C"))
        assert trace is not None
        assert any("transitivity" in rule for rule in trace.rules_used())

    def test_fd_not_derivable_in_pure_system(self):
        with pytest.raises(DerivationError):
            derive([fd("A", "B")], fd("A", "B"), system=AXIOM_SYSTEM_AD)

    def test_every_step_has_rule_and_conclusion(self):
        trace = derive([fd("A", "B"), ad("B", ["C", "D"])], ad("A", ["C", "D"]))
        assert len(trace) > 0
        for step in trace:
            assert step.rule and step.conclusion is not None

    def test_trace_agrees_with_closure_implication(self):
        dependency_sets = [
            [ad("A", "B")],
            [fd("A", "B"), ad("B", "C")],
            [ad(["A", "B"], "C"), fd("C", "D")],
        ]
        candidates = [ad("A", "B"), ad("A", "C"), ad(["A", "B"], "C"), ad("B", "A"),
                      ad(["A", "B"], ["C", "A"]), fd("A", "D")]
        for deps in dependency_sets:
            for candidate in candidates:
                derivable = derive(deps, candidate) is not None
                assert derivable == implies(deps, candidate)

    def test_ead_target_is_weakened(self, jobtype_ead):
        trace = derive([jobtype_ead], jobtype_ead.to_ad())
        assert trace is not None

    def test_repr_renders_steps(self):
        trace = derive([ad("A", "B")], ad("A", "B"), system=AXIOM_SYSTEM_AD)
        assert "derivation of" in repr(trace)


class TestForwardChaining:
    def test_chain_matches_closure_on_small_inputs(self):
        deps = [fd("A", "B"), ad("B", "C")]
        for candidate in (ad("A", "C"), ad("A", "B"), fd("A", "B"), ad("C", "B")):
            assert chain_derives(deps, candidate) == implies(deps, candidate)

    def test_left_augmentation_needed(self):
        deps = [ad("A", "B")]
        target = ad(["A", "C"], "B")
        assert chain_derives(deps, target, system=AXIOM_SYSTEM_AD)
        assert not chain_derives(deps, target,
                                 system=AXIOM_SYSTEM_AD.without("A4 left augmentation"))

    def test_additivity_needed(self):
        deps = [ad("A", "B"), ad("A", "C")]
        target = ad("A", ["B", "C"])
        assert chain_derives(deps, target, system=AXIOM_SYSTEM_AD)
        assert not chain_derives(deps, target, system=AXIOM_SYSTEM_AD.without("A2 additivity"))

    def test_projectivity_needed(self):
        deps = [ad("A", ["B", "C"])]
        target = ad("A", "B")
        assert chain_derives(deps, target, system=AXIOM_SYSTEM_AD)
        assert not chain_derives(deps, target, system=AXIOM_SYSTEM_AD.without("A1 projectivity"))

    def test_reflexivity_needed(self):
        target = ad(["A", "B"], "A")
        assert chain_derives([], target, system=AXIOM_SYSTEM_AD, universe=["A", "B"])
        assert not chain_derives([], target, system=AXIOM_SYSTEM_AD.without("A3 reflexivity"),
                                 universe=["A", "B"])

    def test_every_rule_of_pure_system_is_non_redundant(self):
        # For each rule there is a derivable target that the reduced system misses.
        witnesses = {
            "A1 projectivity": ([ad("A", ["B", "C"])], ad("A", "B")),
            "A2 additivity": ([ad("A", "B"), ad("A", "C")], ad("A", ["B", "C"])),
            "A3 reflexivity": ([], ad("A", "A")),
            "A4 left augmentation": ([ad("A", "B")], ad(["A", "C"], "B")),
        }
        for rule_name, (deps, target) in witnesses.items():
            assert chain_derives(deps, target, system=AXIOM_SYSTEM_AD,
                                 universe=["A", "B", "C"])
            assert not chain_derives(deps, target, system=AXIOM_SYSTEM_AD.without(rule_name),
                                     universe=["A", "B", "C"])

    def test_a3_and_a4_are_derivable_in_combined_system(self):
        # Section 4.2: reflexivity (A3) and left augmentation (A4) follow from Å*.
        assert chain_derives([], ad(["A", "B"], "A"),
                             system=AXIOM_SYSTEM_COMBINED, universe=["A", "B"])
        assert chain_derives([ad("A", "B")], ad(["A", "C"], "B"),
                             system=AXIOM_SYSTEM_COMBINED, universe=["A", "B", "C"])

    def test_combined_transitivity_is_non_redundant(self):
        deps = [fd("X", "A"), ad("A", "Y")]
        target = ad("X", "Y")
        assert chain_derives(deps, target, system=AXIOM_SYSTEM_COMBINED)
        assert not chain_derives(
            deps, target, system=AXIOM_SYSTEM_COMBINED.without("AF2 combined transitivity")
        )

    def test_subsumption_is_non_redundant(self):
        deps = [fd("A", "B")]
        target = ad("A", "B")
        assert chain_derives(deps, target, system=AXIOM_SYSTEM_COMBINED)
        assert not chain_derives(
            deps, target, system=AXIOM_SYSTEM_COMBINED.without("AF1 subsumption")
        )

    def test_forward_chain_reaches_fixpoint(self):
        closure_set = forward_chain([ad("A", "B")], universe=["A", "B"], system=AXIOM_SYSTEM_AD)
        assert ad("A", "B") in closure_set
        assert ad(["A", "B"], "B") in closure_set

    def test_forward_chain_cap_raises(self):
        with pytest.raises(DerivationError):
            forward_chain([ad("A", "B"), fd("B", "C"), ad("C", "D")],
                          universe=list("ABCDEFGH"), max_dependencies=10)
