"""Tests for the AD-driven optimizer: analysis, rewrites, planner, cost."""

import pytest

from repro.algebra import (
    EmptyRelation,
    Evaluator,
    Extension,
    OuterUnion,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import Comparison, FalsePredicate, PresencePredicate
from repro.errors import OptimizerError
from repro.model.attributes import attrset
from repro.optimizer import (
    Planner,
    QualifiedRelation,
    eliminate_contradictory_selections,
    eliminate_redundant_guards,
    estimate_cost,
    guaranteed_absent,
    guaranteed_present,
    measured_cost,
    prune_union_branches,
    qualification_excludes,
)
from repro.optimizer.planner import DEFAULT_RULES


def secretary_selection():
    return Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")


class TestAnalysis:
    def test_selection_forces_presence_of_predicate_attributes(self, employee_database):
        expr = Selection(RelationRef("employees"), secretary_selection())
        present = guaranteed_present(expr, employee_database)
        assert attrset(["salary", "jobtype"]).issubset(present)

    def test_dependency_implies_variant_attributes(self, employee_database):
        expr = Selection(RelationRef("employees"), secretary_selection())
        present = guaranteed_present(expr, employee_database)
        assert attrset(["typing_speed", "foreign_languages"]).issubset(present)

    def test_dependency_implies_absence_of_other_variants(self, employee_database):
        expr = Selection(RelationRef("employees"), secretary_selection())
        absent = guaranteed_absent(expr, employee_database)
        assert attrset(["sales_commission", "products", "programming_languages"]).issubset(absent)

    def test_unbound_determinant_implies_nothing(self, employee_database):
        expr = Selection(RelationRef("employees"), Comparison("salary", ">", 5000.0))
        assert "typing_speed" not in guaranteed_present(expr, employee_database)
        assert guaranteed_absent(expr, employee_database) == attrset([])

    def test_unmatched_determinant_value_implies_total_absence(self, employee_database):
        expr = Selection(RelationRef("employees"), Comparison("jobtype", "=", "pilot"))
        absent = guaranteed_absent(expr, employee_database)
        assert attrset(["typing_speed", "products", "sales_commission"]).issubset(absent)

    def test_projection_erases_structural_guarantee(self, employee_database):
        expr = Projection(Selection(RelationRef("employees"), secretary_selection()), ["name"])
        assert "jobtype" not in guaranteed_present(expr, employee_database)


class TestRedundantGuardElimination:
    """Example 4: the type guard on typing-speed after jobtype='secretary' is redundant."""

    def test_example4_guard_is_removed(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["typing_speed"])
        rewritten, report = eliminate_redundant_guards(expr, employee_database)
        assert report.changed
        assert isinstance(rewritten, Selection)

    def test_guard_on_unimplied_attribute_is_kept(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["sales_commission"])
        rewritten, report = eliminate_redundant_guards(expr, employee_database)
        assert not report.changed
        assert isinstance(rewritten, TypeGuardNode)

    def test_guard_without_selection_is_kept(self, employee_database):
        expr = TypeGuardNode(RelationRef("employees"), ["typing_speed"])
        _, report = eliminate_redundant_guards(expr, employee_database)
        assert not report.changed

    def test_guard_implied_by_another_guard_is_removed(self, employee_database):
        expr = TypeGuardNode(TypeGuardNode(RelationRef("employees"), ["typing_speed", "name"]),
                             ["typing_speed"])
        rewritten, report = eliminate_redundant_guards(expr, employee_database)
        assert report.changed
        assert isinstance(rewritten, TypeGuardNode)
        assert rewritten.attributes == attrset(["typing_speed", "name"])

    def test_rewrite_preserves_results(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["typing_speed"])
        rewritten, _ = eliminate_redundant_guards(expr, employee_database)
        evaluator = Evaluator(employee_database)
        assert evaluator.evaluate(expr).tuples == evaluator.evaluate(rewritten).tuples

    def test_rewrite_reduces_measured_work(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["typing_speed"])
        rewritten, _ = eliminate_redundant_guards(expr, employee_database)
        assert measured_cost(rewritten, employee_database).total_work \
            < measured_cost(expr, employee_database).total_work


class TestContradictionElimination:
    def test_guard_on_excluded_attribute_becomes_empty(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["sales_commission"])
        rewritten, report = eliminate_contradictory_selections(expr, employee_database)
        assert report.changed
        assert isinstance(rewritten, EmptyRelation)
        result = Evaluator(employee_database).evaluate(rewritten)
        assert len(result) == 0
        # the whole point of the empty leaf: the input relation is never scanned
        assert result.stats.tuples_scanned == 0

    def test_selection_requiring_excluded_attribute_becomes_empty(self, employee_database):
        inner = Selection(RelationRef("employees"), Comparison("jobtype", "=", "secretary"))
        expr = Selection(inner, Comparison("sales_commission", ">", 0.0))
        rewritten, report = eliminate_contradictory_selections(expr, employee_database)
        assert report.changed
        assert isinstance(rewritten, EmptyRelation)

    def test_equivalent_results(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["sales_commission"])
        rewritten, _ = eliminate_contradictory_selections(expr, employee_database)
        evaluator = Evaluator(employee_database)
        assert evaluator.evaluate(expr).tuples == evaluator.evaluate(rewritten).tuples

    def test_consistent_query_untouched(self, employee_database):
        expr = Selection(RelationRef("employees"), secretary_selection())
        _, report = eliminate_contradictory_selections(expr, employee_database)
        assert not report.changed


class TestUnionBranchPruning:
    def _fragmented_expression(self):
        secretaries = Extension(RelationRef("secretaries"), "jobtype", "secretary")
        salesmen = Extension(RelationRef("salesmen"), "jobtype", "salesman")
        return Selection(OuterUnion(secretaries, salesmen), Comparison("jobtype", "=", "secretary"))

    def test_contradicting_branch_is_pruned(self):
        rewritten, report = prune_union_branches(self._fragmented_expression(), None)
        assert report.changed
        assert isinstance(rewritten, Selection)
        assert isinstance(rewritten.child, Extension)
        assert rewritten.child.value == "secretary"

    def test_both_branches_pruned_gives_empty(self):
        left = Extension(RelationRef("a"), "jobtype", "x")
        right = Extension(RelationRef("b"), "jobtype", "y")
        expr = Selection(Union(left, right), Comparison("jobtype", "=", "z"))
        rewritten, report = prune_union_branches(expr, None)
        assert report.changed and isinstance(rewritten, EmptyRelation)

    def test_selection_without_equalities_keeps_union(self):
        left = Extension(RelationRef("a"), "jobtype", "x")
        right = Extension(RelationRef("b"), "jobtype", "y")
        expr = Selection(Union(left, right), Comparison("salary", ">", 0))
        _, report = prune_union_branches(expr, None)
        assert not report.changed


class TestQualifiedRelations:
    def test_exclusion(self):
        fragment = QualifiedRelation("secretaries", {"jobtype": "secretary"})
        assert fragment.excludes({"jobtype": "salesman"})
        assert not fragment.excludes({"jobtype": "secretary"})
        assert not fragment.excludes({"salary": 1})

    def test_qualification_excludes_function(self):
        assert qualification_excludes({"a": 1}, {"a": 2})
        assert not qualification_excludes({"a": 1}, {"b": 2})

    def test_to_expression(self):
        assert QualifiedRelation("x", {}).to_expression().name == "x"

    def test_relevant_fragments(self):
        from repro.optimizer.qualified_relations import relevant_fragments

        fragments = [QualifiedRelation("secretaries", {"jobtype": "secretary"}),
                     QualifiedRelation("salesmen", {"jobtype": "salesman"}),
                     QualifiedRelation("everyone", {})]
        relevant = relevant_fragments(fragments, {"jobtype": "secretary"})
        assert [f.name for f in relevant] == ["secretaries", "everyone"]

    def test_empty_relation_node_reports_no_dependencies(self, employee_database):
        assert EmptyRelation().known_dependencies(employee_database) == set()
        assert EmptyRelation().guaranteed_attributes() == attrset([])

    def test_empty_relation_evaluates_to_nothing(self, employee_database):
        result = Evaluator(employee_database).evaluate(EmptyRelation())
        assert len(result) == 0 and result.stats.total_work == 0


class TestPlanner:
    def test_planner_applies_example4_end_to_end(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["typing_speed"])
        planner = Planner(catalog=employee_database)
        optimized, report = planner.optimize(expr)
        assert report.changed
        evaluator = Evaluator(employee_database)
        assert evaluator.evaluate(expr).tuples == evaluator.evaluate(optimized).tuples

    def test_planner_reaches_fixpoint_on_plain_query(self, employee_database):
        expr = Selection(RelationRef("employees"), Comparison("salary", ">", 0))
        _, report = Planner(catalog=employee_database).optimize(expr)
        assert not report.changed

    def test_rule_ablation(self, employee_database):
        expr = TypeGuardNode(Selection(RelationRef("employees"), secretary_selection()),
                             ["typing_speed"])
        planner = Planner(catalog=employee_database, rules=[prune_union_branches])
        _, report = planner.optimize(expr)
        assert not report.changed

    def test_invalid_max_passes(self):
        with pytest.raises(OptimizerError):
            Planner(max_passes=0)

    def test_default_rules_exposed(self):
        assert eliminate_redundant_guards in DEFAULT_RULES


class TestCost:
    def test_estimate_scales_with_base_cardinality(self, employee_database):
        small = estimate_cost(RelationRef("employees"), employee_database)
        selected = estimate_cost(Selection(RelationRef("employees"), secretary_selection()),
                                 employee_database)
        assert selected.cardinality < small.cardinality
        assert selected.work > small.work

    def test_false_selection_estimates_zero_output(self, employee_database):
        expr = Selection(RelationRef("employees"), FalsePredicate())
        assert estimate_cost(expr, employee_database).cardinality == 0.0

    def test_measured_cost_matches_evaluator(self, employee_database):
        expr = Selection(RelationRef("employees"), secretary_selection())
        stats = measured_cost(expr, employee_database)
        assert stats.predicate_evaluations == 60
