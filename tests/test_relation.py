"""Tests for flexible relations (the bare mathematical object, not the engine)."""

import pytest

from repro.core.dependencies import AttributeDependency, FunctionalDependency
from repro.errors import TypeCheckError
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain, IntDomain
from repro.model.relation import FlexibleRelation
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple


@pytest.fixture
def simple_relation():
    scheme = FlexibleScheme(2, 2, ["A", FlexibleScheme(1, 1, ["B", "C"])])
    return FlexibleRelation(scheme, domains={"A": IntDomain()}, name="simple")


class TestInsertion:
    def test_insert_valid_tuple(self, simple_relation):
        simple_relation.insert({"A": 1, "B": 2})
        assert len(simple_relation) == 1

    def test_insert_accepts_flextuple(self, simple_relation):
        tup = FlexTuple(A=1, C=3)
        assert simple_relation.insert(tup) == tup

    def test_insert_rejects_bad_combination(self, simple_relation):
        with pytest.raises(TypeCheckError):
            simple_relation.insert({"A": 1, "B": 2, "C": 3})

    def test_insert_rejects_domain_violation(self, simple_relation):
        with pytest.raises(TypeCheckError):
            simple_relation.insert({"A": "not an int", "B": 2})

    def test_insert_many(self, simple_relation):
        simple_relation.insert_many([{"A": 1, "B": 1}, {"A": 2, "C": 2}])
        assert len(simple_relation) == 2

    def test_duplicates_collapse(self, simple_relation):
        simple_relation.insert({"A": 1, "B": 2})
        simple_relation.insert({"A": 1, "B": 2})
        assert len(simple_relation) == 1

    def test_validate_false_accepts_anything(self):
        scheme = FlexibleScheme.relational(["A"])
        relation = FlexibleRelation(scheme, validate=False)
        relation.insert({"Z": 1})
        assert len(relation) == 1

    def test_admits(self, simple_relation):
        assert simple_relation.admits({"A": 1, "B": 2})
        assert not simple_relation.admits({"A": 1})

    def test_initial_tuples_are_validated(self):
        scheme = FlexibleScheme.relational(["A"])
        with pytest.raises(TypeCheckError):
            FlexibleRelation(scheme, tuples=[{"B": 1}])


class TestMutation:
    def test_delete(self, simple_relation):
        tup = simple_relation.insert({"A": 1, "B": 2})
        assert simple_relation.delete(tup)
        assert len(simple_relation) == 0

    def test_delete_missing_returns_false(self, simple_relation):
        assert not simple_relation.delete({"A": 9, "B": 9})

    def test_clear(self, simple_relation):
        simple_relation.insert({"A": 1, "B": 2})
        simple_relation.clear()
        assert len(simple_relation) == 0

    def test_tuples_returns_copy(self, simple_relation):
        simple_relation.insert({"A": 1, "B": 2})
        snapshot = simple_relation.tuples
        snapshot.clear()
        assert len(simple_relation) == 1


class TestSatisfaction:
    def test_satisfies_ad(self):
        scheme = FlexibleScheme(2, 2, ["A", FlexibleScheme(0, 2, ["B", "C"])])
        relation = FlexibleRelation(scheme)
        relation.insert_many([{"A": 1, "B": 1}, {"A": 2, "C": 2}])
        assert relation.satisfies(AttributeDependency(["A"], ["B", "C"]))

    def test_violations_listed(self):
        scheme = FlexibleScheme(2, 2, ["A", FlexibleScheme(0, 2, ["B", "C"])])
        relation = FlexibleRelation(scheme)
        relation.insert_many([{"A": 1, "B": 1}, {"A": 1, "C": 2}])
        dependency = AttributeDependency(["A"], ["B", "C"])
        assert relation.violations([dependency]) == [dependency]
        assert not relation.satisfies_all([dependency])

    def test_satisfies_fd(self):
        scheme = FlexibleScheme.relational(["A", "B"])
        relation = FlexibleRelation(scheme, tuples=[{"A": 1, "B": 1}, {"A": 2, "B": 1}])
        assert relation.satisfies(FunctionalDependency(["A"], ["B"]))
        assert not relation.satisfies(FunctionalDependency(["B"], ["A"]))


class TestDerivedViews:
    def test_attribute_combinations(self, simple_relation):
        simple_relation.insert_many([{"A": 1, "B": 1}, {"A": 2, "C": 1}])
        assert simple_relation.attribute_combinations() == {attrset(["A", "B"]), attrset(["A", "C"])}

    def test_project_instance(self, simple_relation):
        simple_relation.insert_many([{"A": 1, "B": 1}, {"A": 2, "C": 1}])
        assert simple_relation.project_instance(["A"]) == {FlexTuple(A=1), FlexTuple(A=2)}

    def test_copy_is_independent(self, simple_relation):
        simple_relation.insert({"A": 1, "B": 1})
        clone = simple_relation.copy(name="clone")
        clone.insert({"A": 2, "C": 2})
        assert len(simple_relation) == 1 and len(clone) == 2

    def test_with_scheme_inherits_domains(self, simple_relation):
        derived = simple_relation.with_scheme(
            FlexibleScheme.relational(["A"]), tuples=[{"A": 5}], name="derived"
        )
        assert derived.domains["A"].name == "int"
