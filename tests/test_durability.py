"""Tests for the durability subsystem: WAL, recovery, checkpoints, faults.

The crash harness tests (``TestCrashHarness``) are the property-style core:
they kill a recorded workload at every WAL byte offset and assert that
recovery always lands exactly on a transaction boundary with every invariant
intact.  CI runs them on every push.
"""

import json
import os
import struct

import pytest

from repro.engine import Database
from repro.errors import KeyViolation
from repro.model.scheme import FlexibleScheme
from repro.storage import (
    CrashConsistencyError,
    FaultPlan,
    RecoveryError,
    WALError,
    WriteAheadLog,
    canonical_state,
    crash_at_every_offset,
    faulty_file_factory,
    read_frames,
    record_workload,
    replay_records,
    verify_database,
    wal_filename,
)
from repro.storage.checkpoint import SNAPSHOT_FILENAME
from repro.storage.wal import MAGIC, frame_record
from repro.workloads.employees import employee_definition, generate_employees


def _employee(emp_id, jobtype="secretary"):
    base = {"emp_id": emp_id, "name": "e{}".format(emp_id), "salary": 3000.0,
            "jobtype": jobtype}
    if jobtype == "secretary":
        base.update(typing_speed=70, foreign_languages="english")
    elif jobtype == "salesman":
        base.update(products="dbms", sales_commission=0.1)
    return base


def _create_employees(database):
    definition = employee_definition()
    return database.create_table(
        "employees", definition.scheme, domains=definition.domains,
        key=definition.key, dependencies=definition.dependencies)


def _simple_scheme():
    return FlexibleScheme(1, 2, ["k", "v"])


# -- WAL framing ----------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        records = [{"op": "insert", "table": "t", "values": {"k": i}, "txn": None}
                   for i in range(5)]
        image = MAGIC + b"".join(frame_record(r) for r in records)
        decoded, valid, torn = read_frames(image)
        assert decoded == records
        assert valid == len(image)
        assert torn is None

    def test_empty_image(self):
        assert read_frames(b"") == ([], 0, None)

    def test_magic_only(self):
        assert read_frames(MAGIC) == ([], len(MAGIC), None)

    def test_damaged_magic(self):
        records, valid, torn = read_frames(b"NOTALOG!" + frame_record({"op": "begin"}))
        assert records == [] and valid == 0
        assert "header" in torn[1]

    def test_short_frame_header(self):
        image = MAGIC + frame_record({"op": "begin", "txn": 1})
        records, valid, torn = read_frames(image + b"\x05")
        assert len(records) == 1
        assert valid == len(image)
        assert torn == (len(image), "short frame header")

    def test_short_payload(self):
        whole = frame_record({"op": "commit", "txn": 1})
        image = MAGIC + whole[:-3]
        records, valid, torn = read_frames(image)
        assert records == [] and valid == len(MAGIC)
        assert "short frame payload" in torn[1]

    def test_crc_mismatch(self):
        image = bytearray(MAGIC + frame_record({"op": "begin", "txn": 1}))
        image[-2] ^= 0xFF
        records, valid, torn = read_frames(bytes(image))
        assert records == [] and valid == len(MAGIC)
        assert "CRC" in torn[1]

    def test_implausible_length(self):
        image = MAGIC + struct.pack("<II", 1 << 30, 0)
        _records, valid, torn = read_frames(image)
        assert valid == len(MAGIC)
        assert "implausible" in torn[1]

    def test_non_object_payload_is_torn(self):
        payload = b"[1,2,3]"
        import zlib
        image = MAGIC + struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        records, _valid, torn = read_frames(image)
        assert records == []
        assert "record object" in torn[1]

    def test_everything_before_the_tear_is_kept(self):
        good = [{"op": "insert", "table": "t", "values": {"k": i}, "txn": None}
                for i in range(3)]
        image = MAGIC + b"".join(frame_record(r) for r in good)
        records, valid, torn = read_frames(image + frame_record({"op": "x"})[:7])
        assert records == good
        assert valid == len(image)
        assert torn is not None


class TestWriteAheadLog:
    def test_creates_file_with_magic(self, tmp_path):
        path = str(tmp_path / "wal")
        log = WriteAheadLog(path)
        log.close()
        with open(path, "rb") as handle:
            assert handle.read() == MAGIC

    def test_append_and_reread(self, tmp_path):
        path = str(tmp_path / "wal")
        log = WriteAheadLog(path)
        log.append({"op": "begin", "txn": 1})
        log.commit({"op": "commit", "txn": 1})
        log.close()
        with open(path, "rb") as handle:
            records, _valid, torn = read_frames(handle.read())
        assert [r["op"] for r in records] == ["begin", "commit"]
        assert torn is None

    def test_group_commit_defers_fsync(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal"), group_commit_window=60.0,
                            group_commit_max=4)
        synced = [log.commit({"op": "commit", "txn": i}) for i in range(1, 5)]
        # the fourth commit fills the batch and forces the single fsync
        assert synced == [False, False, False, True]
        assert log.fsyncs == 1 and log.commits == 4
        log.close()

    def test_flush_drains_pending_batch(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal"), group_commit_window=60.0,
                            group_commit_max=100)
        assert log.commit({"op": "commit", "txn": 1}) is False
        log.flush()
        assert log.pending_commits == 0 and log.fsyncs == 1
        log.close()

    def test_broken_log_refuses_appends(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal"),
                            file_factory=faulty_file_factory(
                                FaultPlan(always_fail_fsync=True)))
        with pytest.raises(IOError):
            log.commit({"op": "commit", "txn": 1})
        assert log.broken
        with pytest.raises(WALError):
            log.append({"op": "begin", "txn": 2})


# -- durable databases ------------------------------------------------------------------


class TestDurableDatabase:
    def test_round_trip_dml_and_ddl(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.insert("employees", _employee(1))
        database.insert("employees", _employee(2))
        database.table("employees").update(_employee(1), salary=4000.0)
        database.table("employees").delete(_employee(2))
        database.close()

        recovered = Database(durable_path=path)
        assert canonical_state(recovered) == {
            "employees": canonical_state(database)["employees"]}
        assert verify_database(recovered) == []
        recovered.close()

    def test_committed_transaction_survives(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        with database.transaction():
            database.insert("employees", _employee(1))
            database.insert("employees", _employee(2))
        database.close()
        recovered = Database(durable_path=path)
        assert len(recovered.table("employees")) == 2
        assert recovered.durability.recovery_report.transactions_applied == 1
        recovered.close()

    def test_aborted_transaction_leaves_no_trace(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.insert("employees", _employee(1))
        with pytest.raises(KeyViolation):
            with database.transaction():
                database.insert("employees", _employee(2))
                database.insert("employees", {**_employee(3), "emp_id": 1})
        assert len(database.table("employees")) == 1
        database.close()
        recovered = Database(durable_path=path)
        assert len(recovered.table("employees")) == 1
        assert recovered.durability.recovery_report.transactions_discarded >= 1
        recovered.close()

    def test_read_only_transaction_writes_nothing(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        size = database.durability.wal.size
        with database.transaction():
            assert len(database.table("employees")) == 0
        assert database.durability.wal.size == size  # lazy BEGIN: no records
        database.close()

    def test_drop_table_replays(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.create_table("scratch", _simple_scheme())
        database.insert("scratch", {"k": 1})
        database.drop_table("scratch")
        database.close()
        recovered = Database(durable_path=path)
        assert recovered.tables() == ["employees"]
        recovered.close()

    def test_analyze_replays_statistics(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.insert_many("employees", [_employee(i) for i in range(10)])
        database.analyze("employees")
        database.close()
        recovered = Database(durable_path=path)
        statistics = recovered.stats("employees")
        assert statistics is not None and statistics.row_count == 10
        recovered.close()

    def test_metrics_expose_durability_section(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"))
        section = database.metrics()["durability"]
        assert section["wal_epoch"] == 0
        assert section["last_recovery"]["records_read"] == 0
        database.close()

    def test_checkpoint_requires_durable_database(self):
        with pytest.raises(Exception):
            Database().checkpoint()

    def test_checkpoint_switches_epoch_and_bounds_replay(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.insert_many("employees", [_employee(i) for i in range(5)])
        database.checkpoint()
        assert database.durability.epoch == 1
        database.insert("employees", _employee(100))
        database.close()
        assert os.path.exists(os.path.join(path, wal_filename(1)))
        assert not os.path.exists(os.path.join(path, wal_filename(0)))
        recovered = Database(durable_path=path)
        report = recovered.durability.recovery_report
        assert report.checkpoint_loaded and report.wal_epoch == 1
        # only the post-checkpoint insert is replayed from the log
        assert report.operations_applied == 1
        assert len(recovered.table("employees")) == 6
        recovered.close()

    def test_auto_checkpoint_fires_on_threshold(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"),
                            checkpoint_every_bytes=512)
        database.create_table("t", _simple_scheme(), key=["k"])
        for i in range(50):
            database.insert("t", {"k": i, "v": i})
        assert database.durability.epoch > 0
        database.close()

    def test_no_auto_checkpoint_inside_transaction(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"),
                            checkpoint_every_bytes=64)
        database.create_table("t", _simple_scheme(), key=["k"])
        epoch_before = database.durability.epoch
        with database.transaction():
            for i in range(50):
                database.insert("t", {"k": i, "v": i})
            assert database.durability.epoch == epoch_before
        # the deferred checkpoint fires at commit
        assert database.durability.epoch > epoch_before
        database.close()

    def test_group_commit_amortizes_fsyncs(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"),
                            group_commit_window=60.0, group_commit_max=10)
        database.create_table("t", _simple_scheme(), key=["k"])
        for i in range(20):
            database.insert("t", {"k": i})
        wal = database.durability.wal
        assert wal.commits == 20
        assert wal.fsyncs < wal.commits / 2  # amortization actually happened
        database.close()


# -- recovery edge cases ------------------------------------------------------------------


class TestRecoveryEdgeCases:
    def test_empty_wal_file(self, tmp_path):
        path = str(tmp_path / "db")
        os.makedirs(path)
        open(os.path.join(path, wal_filename(0)), "wb").close()
        database = Database(durable_path=path)
        assert database.tables() == []
        database.close()

    def test_only_a_torn_begin(self, tmp_path):
        path = str(tmp_path / "db")
        os.makedirs(path)
        frame = frame_record({"op": "begin", "txn": 1})
        with open(os.path.join(path, wal_filename(0)), "wb") as handle:
            handle.write(MAGIC + frame[: len(frame) // 2])
        database = Database(durable_path=path)
        report = database.durability.recovery_report
        assert report.torn_reason is not None
        assert report.transactions_applied == 0
        # the torn tail was truncated away; the log is clean again
        assert database.durability.wal.size == len(MAGIC)
        database.close()

    def test_ddl_and_dml_in_one_transaction(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.create_table("t", _simple_scheme(), key=["k"])
                database.insert("t", {"k": 1})
                raise RuntimeError("boom")
        # live semantics: DDL survives the rollback, DML does not
        assert database.tables() == ["t"]
        assert len(database.table("t")) == 0
        database.close()
        recovered = Database(durable_path=path)
        assert recovered.tables() == ["t"]
        assert len(recovered.table("t")) == 0
        assert verify_database(recovered) == []
        recovered.close()

    def test_crash_after_snapshot_before_new_epoch_log(self, tmp_path):
        # Crash window two of the checkpoint protocol: the snapshot points at
        # epoch 1, but the crash hit before wal.000001 was created.
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        database.checkpoint()
        database.close()
        os.remove(os.path.join(path, wal_filename(1)))
        recovered = Database(durable_path=path)
        assert len(recovered.table("t")) == 1
        assert recovered.durability.epoch == 1
        recovered.close()

    def test_crash_before_stale_epoch_deleted(self, tmp_path):
        # Crash window three: the new epoch is live but the old epoch's file
        # survived; it must be ignored (and cleaned), never replayed on top.
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        database.checkpoint()
        database.close()
        stale = os.path.join(path, wal_filename(0))
        with open(stale, "wb") as handle:
            handle.write(MAGIC + frame_record(
                {"op": "insert", "table": "t", "values": {"k": 99}, "txn": None}))
        recovered = Database(durable_path=path)
        assert len(recovered.table("t")) == 1  # the stale epoch was not replayed
        assert not os.path.exists(stale)
        recovered.close()

    def test_double_recovery_is_idempotent(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        _create_employees(database)
        database.insert_many("employees", [_employee(i) for i in range(5)])
        with pytest.raises(KeyViolation):
            with database.transaction():
                database.insert("employees", _employee(50))
                database.insert("employees", {**_employee(51), "emp_id": 0})
        database.close()

        first = Database(durable_path=path)
        state = canonical_state(first)
        first.close()
        second = Database(durable_path=path)
        assert canonical_state(second) == state
        assert verify_database(second) == []
        second.close()

    def test_bit_flip_is_caught_by_crc(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        for i in range(5):
            database.insert("t", {"k": i})
        database.close()
        wal_path = os.path.join(path, wal_filename(0))
        with open(wal_path, "rb") as handle:
            image = bytearray(handle.read())
        image[len(image) // 2] ^= 0x10
        with open(wal_path, "wb") as handle:
            handle.write(bytes(image))
        recovered = Database(durable_path=path)
        report = recovered.durability.recovery_report
        assert report.torn_reason == "payload CRC mismatch"
        # the intact prefix was recovered and re-validates
        assert verify_database(recovered) == []
        recovered.close()

    def test_stray_txn_records_are_discarded(self, tmp_path):
        database = Database()
        database.create_table("t", _simple_scheme(), key=["k"])
        report = replay_records(database, [
            {"op": "insert", "table": "t", "values": {"k": 1}, "txn": 42},
        ])
        assert len(database.table("t")) == 0
        assert report.transactions_discarded == 1

    def test_unknown_record_op_is_an_error(self, tmp_path):
        database = Database()
        with pytest.raises(RecoveryError):
            replay_records(database, [{"op": "mystery"}])

    def test_corrupt_snapshot_raises_with_path(self, tmp_path):
        from repro.engine.serialization import SerializationError

        path = str(tmp_path / "db")
        os.makedirs(path)
        with open(os.path.join(path, SNAPSHOT_FILENAME), "w") as handle:
            json.dump({"checkpoint_format": 99}, handle)
        with pytest.raises(SerializationError, match="checkpoint_format"):
            Database(durable_path=path)


# -- fault injection ----------------------------------------------------------------------


class TestFaultInjection:
    def test_write_failure_breaks_log_and_memory_refuses(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        database.close()
        # reopen with a file that fails every write
        database = Database(
            durable_path=path,
            wal_file_factory=faulty_file_factory(FaultPlan(always_fail_writes=True)))
        with pytest.raises(IOError):
            database.insert("t", {"k": 2})
        assert len(database.table("t")) == 1  # memory refused the mutation too
        assert database.durability.wal.broken
        with pytest.raises(WALError):
            database.insert("t", {"k": 3})
        database.close()
        recovered = Database(durable_path=path)
        assert len(recovered.table("t")) == 1
        recovered.close()

    def test_torn_write_recovers_to_prefix(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        database.close()
        wal_size = os.path.getsize(os.path.join(path, wal_filename(0)))
        database = Database(
            durable_path=path,
            wal_file_factory=faulty_file_factory(
                FaultPlan(fail_after_bytes=20)))  # tear mid-frame
        with pytest.raises(IOError):
            database.insert("t", {"k": 2})
        database.close()
        recovered = Database(durable_path=path)
        assert len(recovered.table("t")) == 1
        assert verify_database(recovered) == []
        # recovery truncated the torn tail back off the file
        assert os.path.getsize(os.path.join(path, wal_filename(0))) == wal_size
        recovered.close()

    def test_fsync_failure_is_contained(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(
            durable_path=path,
            wal_file_factory=faulty_file_factory(FaultPlan(fail_fsync_at=3)))
        database.create_table("t", _simple_scheme(), key=["k"])  # fsync 1
        database.insert("t", {"k": 1})                           # fsync 2
        with pytest.raises(IOError):
            database.insert("t", {"k": 2})                       # fsync 3: boom
        assert database.durability.wal.broken
        database.close()
        recovered = Database(durable_path=path)
        # the flushed-but-unsynced record may or may not have survived; either
        # way the recovered state re-validates
        assert verify_database(recovered) == []
        assert len(recovered.table("t")) >= 1
        recovered.close()

    def test_injected_bit_flip_detected_at_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(
            durable_path=path,
            wal_file_factory=faulty_file_factory(FaultPlan(bit_flips={40: 0x20})))
        database.create_table("t", _simple_scheme(), key=["k"])
        for i in range(5):
            database.insert("t", {"k": i})
        database.close()
        recovered = Database(durable_path=path)
        assert recovered.durability.recovery_report.torn_reason is not None
        assert verify_database(recovered) == []
        recovered.close()


# -- lifecycle ----------------------------------------------------------------------------


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"))
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        assert not database.closed
        database.close()
        assert database.closed
        database.close()  # second close is a no-op, not an error
        assert database.closed

    def test_close_without_durability_is_safe(self):
        database = Database()
        database.close()
        database.close()
        assert database.closed

    def test_closed_wal_refuses_appends(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "db"))
        database.create_table("t", _simple_scheme(), key=["k"])
        database.close()
        with pytest.raises(WALError, match="closed"):
            database.durability.wal.append({"op": "insert"})

    def test_close_with_open_transaction_aborts_it(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        transaction = database.transaction()
        transaction.__enter__()
        database.insert("t", {"k": 2})
        assert database.durability.in_transaction
        database.close()
        assert not database.durability.in_transaction
        recovered = Database(durable_path=path)
        # the uncommitted insert was aborted by close, not replayed
        assert sorted(t["k"] for t in recovered.table("t").tuples) == [1]
        assert verify_database(recovered) == []
        recovered.close()

    def test_wal_error_carries_last_good_offset(self, tmp_path):
        path = str(tmp_path / "db")
        database = Database(durable_path=path)
        database.create_table("t", _simple_scheme(), key=["k"])
        database.insert("t", {"k": 1})
        database.close()
        intact = os.path.getsize(os.path.join(path, wal_filename(0)))
        database = Database(
            durable_path=path,
            wal_file_factory=faulty_file_factory(
                FaultPlan(fail_after_bytes=12)))
        with pytest.raises(IOError):
            database.insert("t", {"k": 2})
        with pytest.raises(WALError) as info:
            database.insert("t", {"k": 3})
        assert info.value.last_good_offset is not None
        assert info.value.last_good_offset <= intact
        assert str(info.value.last_good_offset) in str(info.value)
        database.close()
        # the surfaced offset is honest: reopening the same path recovers the
        # intact prefix and the database serves writes again
        recovered = Database(durable_path=path)
        assert sorted(t["k"] for t in recovered.table("t").tuples) == [1]
        recovered.insert("t", {"k": 9})
        assert len(recovered.table("t")) == 2
        recovered.close()


# -- the crash harness --------------------------------------------------------------------


def _harness_units():
    def ddl(database):
        _create_employees(database)

    def autocommit_insert(database):
        database.insert("employees", _employee(1))

    def committed_txn(database):
        with database.transaction():
            database.insert("employees", _employee(2))
            database.insert("employees", _employee(3, jobtype="salesman"))

    def aborted_txn(database):
        try:
            with database.transaction():
                database.insert("employees", _employee(4))
                raise RuntimeError("rolled back")
        except RuntimeError:
            pass

    def update(database):
        database.table("employees").update(_employee(1), salary=9000.0)

    def delete(database):
        database.table("employees").delete(_employee(2))

    def second_table(database):
        database.create_table("audit", _simple_scheme(), key=["k"])
        # still one durable unit: DDL is autonomous, the insert autocommits

    def audit_insert(database):
        database.insert("audit", {"k": 1, "v": 2})

    return [ddl, autocommit_insert, committed_txn, aborted_txn, update,
            delete, second_table, audit_insert]


class TestCrashHarness:
    def test_crash_at_every_offset(self, tmp_path):
        recording = record_workload(str(tmp_path / "record"), _harness_units())
        summary = crash_at_every_offset(recording, str(tmp_path / "scratch"))
        assert summary["offsets_tested"] == len(recording.wal_bytes) + 1
        assert summary["torn_tails_seen"] > 0
        assert summary["transactions_discarded"] > 0

    def test_harness_catches_a_broken_protocol(self, tmp_path):
        # Sanity check that the harness has teeth: corrupt one boundary's
        # expected state and the sweep must fail.
        recording = record_workload(str(tmp_path / "record"), _harness_units()[:3])
        offset, state = recording.boundaries[-1]
        recording.boundaries[-1] = (offset, dict(state, employees=()))
        with pytest.raises(CrashConsistencyError):
            crash_at_every_offset(recording, str(tmp_path / "scratch"),
                                  stride=max(1, len(recording.wal_bytes) // 8))

    def test_expected_state_at_picks_last_boundary(self, tmp_path):
        recording = record_workload(str(tmp_path / "record"), _harness_units()[:2])
        offsets = [offset for offset, _state in recording.boundaries]
        assert recording.expected_state_at(0)[0] == offsets[0]
        assert recording.expected_state_at(offsets[-1] + 100)[0] == offsets[-1]
        mid = (offsets[-2] + offsets[-1]) // 2
        assert recording.expected_state_at(mid)[0] == offsets[-2]
