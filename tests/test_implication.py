"""Tests for semantic implication: the appendix construction and random models."""

import random

import pytest

from repro.core.closure import implies
from repro.core.dependencies import ad, fd
from repro.core.implication import (
    counterexample_relation,
    dependency_universe,
    holds_in_random_models,
    random_heterogeneous_tuple,
    random_satisfying_relation,
    semantically_implies,
)
from repro.errors import DependencyError
from repro.model.attributes import attrset


class TestCounterexampleConstruction:
    def test_two_tuples(self):
        relation = counterexample_relation([ad("A", "B")], ["A"])
        assert len(relation) == 2

    def test_t1_spans_the_universe(self):
        deps = [ad("A", "B"), fd("B", "C")]
        relation = counterexample_relation(deps, ["A"])
        universe = dependency_universe(deps, ["A"])
        assert any(t.attributes == universe for t in relation)

    def test_t2_spans_the_attribute_closure(self):
        deps = [fd("A", "B"), ad("B", "C")]
        relation = counterexample_relation(deps, ["A"])
        combos = {t.attributes for t in relation}
        assert attrset(["A", "B", "C"]) in combos  # A+attr under Å*

    def test_t2_values_separate_functional_closure(self):
        deps = [fd("A", "B"), ad("B", "C")]
        relation = counterexample_relation(deps, ["A"])
        # t1 carries 1 everywhere; t2 carries 1 on A+func = {A, B} and 0 on C.
        assert any(t["A"] == 1 and t["B"] == 1 and t.get("C") == 0 for t in relation)
        assert any(all(t.get(name) == 1 for name in ("A", "B", "C")) for t in relation)

    def test_satisfies_the_hypotheses(self):
        deps = [fd("A", "B"), ad("B", "C"), ad(["A", "B"], "D")]
        relation = counterexample_relation(deps, ["A"])
        for dependency in deps:
            assert dependency.holds_in(relation)

    def test_violates_non_derivable_candidates(self):
        deps = [ad("A", "B")]
        relation = counterexample_relation(deps, ["B"])
        assert not ad("B", "A").holds_in(relation)

    def test_lhs_outside_universe_rejected(self):
        with pytest.raises(DependencyError):
            counterexample_relation([ad("A", "B")], ["Z"], universe=["A", "B"])


class TestSemanticImplication:
    def test_agrees_with_syntactic_implication(self):
        dependency_sets = [
            [ad("A", "B")],
            [fd("A", "B"), ad("B", "C")],
            [ad("A", ["B", "C"]), fd("C", "D")],
            [fd("A", "B"), fd("B", "C")],
        ]
        candidates = [ad("A", "B"), ad("A", "C"), ad("B", "C"), ad("C", "A"),
                      ad(["A", "D"], "B"), ad("A", ["B", "C"]), fd("A", "C"), fd("A", "D")]
        for deps in dependency_sets:
            for candidate in candidates:
                try:
                    syntactic = implies(deps, candidate)
                except DependencyError:
                    continue
                assert semantically_implies(deps, candidate) == syntactic, (deps, candidate)

    def test_soundness_on_random_models(self):
        # Every syntactically derivable dependency holds in every random model.
        deps = [fd("A", "B"), ad("B", "C")]
        derivable = [ad("A", "C"), ad("A", "B"), ad(["A", "D"], "C"), fd("A", "B")]
        for candidate in derivable:
            assert implies(deps, candidate)
            assert holds_in_random_models(deps, candidate, models=10, size=12, seed=3)

    def test_refutation_on_random_models(self):
        # A non-implied dependency is refuted by some random model.
        deps = [ad("A", "B")]
        candidate = fd("A", "B").to_ad().augment_lhs([])  # A --attr--> B (implied)
        assert holds_in_random_models(deps, candidate, models=5, size=10)
        not_implied = ad("B", "C")
        assert not holds_in_random_models(deps, not_implied, models=30, size=15, seed=1)

    def test_no_ad_transitivity_semantically(self):
        deps = [ad("A", "B"), ad("B", "C")]
        assert not semantically_implies(deps, ad("A", "C"))


class TestRandomModelMachinery:
    def test_random_tuple_respects_universe(self):
        rng = random.Random(0)
        universe = attrset(["A", "B", "C"])
        for _ in range(20):
            tup = random_heterogeneous_tuple(universe, rng)
            assert tup.attributes.issubset(universe) and len(tup) >= 1

    def test_random_tuple_needs_attributes(self):
        with pytest.raises(DependencyError):
            random_heterogeneous_tuple(attrset([]), random.Random(0))

    def test_random_relation_satisfies_requested_dependencies(self):
        deps = [ad("A", ["B", "C"]), fd("A", "B")]
        relation = random_satisfying_relation(deps, size=25, rng=random.Random(5))
        for dependency in deps:
            assert dependency.holds_in(relation)

    def test_random_relation_is_reproducible(self):
        deps = [ad("A", "B")]
        first = random_satisfying_relation(deps, size=10, rng=random.Random(7))
        second = random_satisfying_relation(deps, size=10, rng=random.Random(7))
        assert first.tuples == second.tuples
