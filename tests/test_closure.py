"""Tests for closures and closure-based (syntactic) implication."""

import pytest

from repro.core.closure import (
    attribute_closure,
    equivalent,
    functional_closure,
    implies,
    implies_all,
    is_redundant,
    minimal_cover,
    nontrivial_consequences,
    split_dependencies,
)
from repro.core.dependencies import ad, ead, fd
from repro.errors import DependencyError
from repro.model.attributes import attrset


class TestFunctionalClosure:
    def test_reflexive_base(self):
        assert functional_closure(["A"], []) == attrset(["A"])

    def test_single_step(self):
        assert functional_closure(["A"], [fd("A", "B")]) == attrset(["A", "B"])

    def test_transitive_chain(self):
        deps = [fd("A", "B"), fd("B", "C"), fd("C", "D")]
        assert functional_closure(["A"], deps) == attrset(["A", "B", "C", "D"])

    def test_requires_full_lhs(self):
        deps = [fd(["A", "B"], "C")]
        assert "C" not in functional_closure(["A"], deps)
        assert "C" in functional_closure(["A", "B"], deps)

    def test_ads_do_not_contribute(self):
        assert functional_closure(["A"], [ad("A", "B")]) == attrset(["A"])


class TestAttributeClosure:
    def test_pure_system_is_single_pass(self):
        # No transitivity: A -> B, B -> C does not give A -> C.
        deps = [ad("A", "B"), ad("B", "C")]
        closure = attribute_closure(["A"], deps, combined=False)
        assert closure == attrset(["A", "B"])

    def test_pure_system_ignores_fds(self):
        deps = [fd("A", "B"), ad("B", "C")]
        assert attribute_closure(["A"], deps, combined=False) == attrset(["A"])

    def test_combined_system_uses_fds(self):
        deps = [fd("A", "B"), ad("B", "C")]
        assert attribute_closure(["A"], deps, combined=True) == attrset(["A", "B", "C"])

    def test_combined_contains_functional_closure(self):
        deps = [fd("A", "B"), fd("B", "C"), ad("C", "D")]
        func = functional_closure(["A"], deps)
        attr = attribute_closure(["A"], deps, combined=True)
        assert func.issubset(attr)

    def test_no_ad_transitivity_even_combined(self):
        deps = [ad("A", "B"), ad("B", "C")]
        assert attribute_closure(["A"], deps, combined=True) == attrset(["A", "B"])

    def test_explicit_ads_contribute_their_abbreviated_form(self, jobtype_ead):
        closure = attribute_closure(["jobtype"], [jobtype_ead])
        assert attrset(["typing_speed", "products"]).issubset(closure)

    def test_unknown_dependency_kind_rejected(self):
        with pytest.raises(DependencyError):
            split_dependencies([object()])


class TestImplication:
    def test_reflexivity(self):
        assert implies([], ad(["A", "B"], ["A"]))
        assert implies([], fd(["A", "B"], ["A"]))

    def test_left_augmentation(self):
        assert implies([ad("A", "B")], ad(["A", "C"], "B"))

    def test_projectivity_and_additivity(self):
        deps = [ad("A", ["B", "C"])]
        assert implies(deps, ad("A", "B"))
        assert implies(deps, ad("A", ["B", "C"]))

    def test_subsumption(self):
        assert implies([fd("A", "B")], ad("A", "B"))

    def test_combined_transitivity_pascal_workaround(self):
        # X --func--> A and A --attr--> Y  ⊢  X --attr--> Y  (Section 4.2)
        deps = [fd("X", "A"), ad("A", "Y")]
        assert implies(deps, ad("X", "Y"))
        assert not implies(deps, ad("X", "Y"), combined=False)

    def test_fd_not_implied_by_ad(self):
        assert not implies([ad("A", "B")], fd("A", "B"))

    def test_fd_implication_needs_combined_system(self):
        with pytest.raises(DependencyError):
            implies([fd("A", "B")], fd("A", "B"), combined=False)

    def test_ead_candidates_are_weakened(self, jobtype_ead):
        assert implies([jobtype_ead], jobtype_ead.to_ad())
        assert implies([jobtype_ead.to_ad()], jobtype_ead)

    def test_implies_all(self):
        deps = [ad("A", "B"), ad("A", "C")]
        assert implies_all(deps, [ad("A", "B"), ad("A", ["B", "C"])])
        assert not implies_all(deps, [ad("B", "C")])


class TestCoverAndRedundancy:
    def test_equivalent_sets(self):
        first = [ad("A", ["B", "C"])]
        second = [ad("A", "B"), ad("A", "C")]
        assert equivalent(first, second)

    def test_not_equivalent(self):
        assert not equivalent([ad("A", "B")], [ad("A", ["B", "C"])])

    def test_is_redundant(self):
        deps = [ad("A", ["B", "C"]), ad("A", "B")]
        assert is_redundant(deps[1], deps)
        assert not is_redundant(deps[0], deps)

    def test_minimal_cover_drops_projections(self):
        deps = [ad("A", ["B", "C"]), ad("A", "B"), ad(["A", "D"], "C")]
        cover = minimal_cover(deps)
        assert ad("A", ["B", "C"]) in cover
        assert ad("A", "B") not in cover
        assert ad(["A", "D"], "C") not in cover

    def test_minimal_cover_is_equivalent(self):
        deps = [fd("A", "B"), fd("B", "C"), fd("A", "C"), ad("C", "D"), ad("A", "D")]
        cover = minimal_cover(deps)
        assert equivalent(cover, deps)
        assert len(cover) < len(deps)

    def test_nontrivial_consequences(self):
        deps = [fd("A", "B"), ad("B", "C")]
        consequences = nontrivial_consequences(deps, ["A", "B", "C"], max_lhs=2)
        assert ad("A", "C") in consequences
        assert ad("B", "C") in consequences
        assert ad("C", "A") not in consequences
