"""Tests for the baselines: NULL-padded tables, the multirelation model, plain subtyping."""

import pytest

from repro.baselines import (
    BooleanFlagTable,
    ImageAttribute,
    Multirelation,
    NullPaddedTable,
)
from repro.engine import Table
from repro.errors import ReproError
from repro.model.attributes import attrset
from repro.model.tuples import FlexTuple
from repro.workloads.employees import (
    employee_definition,
    employee_dependency,
    employee_scheme,
    generate_employees,
)


@pytest.fixture
def loaded_table():
    table = Table(employee_definition())
    table.insert_many(generate_employees(40, seed=23))
    return table


class TestNullPaddedTable:
    def test_rows_are_padded(self, jobtype_ead):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        row = flat.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                           "typing_speed": 1, "foreign_languages": "fr"})
        assert row["products"] is None and row["sales_commission"] is None
        assert row["variant_tag"] == "secretary"

    def test_null_cells_counted(self, jobtype_ead, loaded_table):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        # every employee has exactly 2 of the 5 variant attributes → 3 NULLs per row
        assert flat.null_cells() == 3 * len(loaded_table)
        assert flat.stored_cells() == len(loaded_table) * 10

    def test_accepts_invalid_tuples_silently(self, jobtype_ead):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "salesman",
                     "typing_speed": 1, "foreign_languages": "fr"})
        assert len(flat) == 1
        assert len(flat.inconsistent_rows()) == 1

    def test_wrong_manual_tag_detected_only_on_inspection(self, jobtype_ead):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                     "typing_speed": 1, "foreign_languages": "fr"}, tag="salesman")
        assert len(flat.inconsistent_rows()) == 1

    def test_consistent_rows_report_clean(self, jobtype_ead, loaded_table):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        assert flat.inconsistent_rows() == []

    def test_round_trip_to_tuples(self, jobtype_ead, loaded_table):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        assert flat.to_tuples() == loaded_table.tuples

    def test_unknown_attribute_rejected(self, jobtype_ead):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        with pytest.raises(ReproError):
            flat.insert({"unknown": 1})

    def test_tag_attribute_clash_rejected(self, jobtype_ead):
        with pytest.raises(ReproError):
            NullPaddedTable(employee_scheme().attributes, jobtype_ead, tag_attribute="salary")


class TestBooleanFlagTable:
    def test_flags_set_per_variant(self, jobtype_ead):
        flat = BooleanFlagTable(employee_scheme().attributes, jobtype_ead)
        row = flat.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                           "typing_speed": 1, "foreign_languages": "fr"})
        assert row["is_secretary"] is True
        assert row["is_salesman"] is False

    def test_metrics_and_consistency(self, jobtype_ead, loaded_table):
        flat = BooleanFlagTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        assert flat.null_cells() == 3 * len(loaded_table)
        assert flat.stored_cells() == len(loaded_table) * (9 + 3)
        assert flat.inconsistent_rows() == []
        assert flat.to_tuples() == loaded_table.tuples

    def test_wrong_flags_detected(self, jobtype_ead):
        flat = BooleanFlagTable(employee_scheme().attributes, jobtype_ead)
        flat.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                     "typing_speed": 1, "foreign_languages": "fr"}, tag=False)
        assert len(flat.inconsistent_rows()) == 1


@pytest.fixture
def employee_multirelation():
    return Multirelation(
        ["emp_id", "name", "salary", "jobtype"],
        ["emp_id"],
        ImageAttribute("image", ["secretaries", "engineers", "salesmen"]),
        {
            "secretaries": ["emp_id", "typing_speed", "foreign_languages"],
            "engineers": ["emp_id", "products", "programming_languages"],
            "salesmen": ["emp_id", "products", "sales_commission"],
        },
    )


class TestMultirelation:
    def test_routing_to_depending_relations(self, employee_multirelation):
        employee_multirelation.insert({"emp_id": 1, "name": "x", "salary": 1.0,
                                       "jobtype": "secretary", "typing_speed": 1,
                                       "foreign_languages": "fr"})
        assert len(employee_multirelation.depending_rows["secretaries"]) == 1
        assert employee_multirelation.master_rows[0]["image"] == "secretaries"

    def test_entity_without_variant_gets_null_image(self, employee_multirelation):
        employee_multirelation.insert({"emp_id": 2, "name": "y", "salary": 1.0,
                                       "jobtype": "secretary"})
        assert employee_multirelation.master_rows[0]["image"] is None

    def test_restore_round_trip(self, employee_multirelation, loaded_table):
        employee_multirelation.insert_many(loaded_table.tuples)
        assert employee_multirelation.restore() == loaded_table.tuples

    def test_unknown_variant_combination_rejected(self, employee_multirelation):
        with pytest.raises(ReproError):
            employee_multirelation.insert({"emp_id": 3, "name": "z", "salary": 1.0,
                                           "jobtype": "salesman", "typing_speed": 1})

    def test_missing_key_rejected(self, employee_multirelation):
        with pytest.raises(ReproError):
            employee_multirelation.insert({"name": "z"})

    def test_image_attribute_validation(self):
        with pytest.raises(ReproError):
            ImageAttribute("", ["r"])
        with pytest.raises(ReproError):
            ImageAttribute("image", [])
        with pytest.raises(ReproError):
            Multirelation(["a"], ["a"], ImageAttribute("image", ["missing"]), {"other": ["a"]})

    def test_key_must_be_in_master(self):
        with pytest.raises(ReproError):
            Multirelation(["a"], ["z"], ImageAttribute("image", ["r"]), {"r": ["z", "b"]})

    def test_image_attribute_is_a_special_case_of_an_ad(self, employee_multirelation, loaded_table):
        # Section 5: translate the multirelation into the equivalent explicit AD and
        # check that it accepts exactly the restored instance extended by the image value.
        employee_multirelation.insert_many(loaded_table.tuples)
        dependency = employee_multirelation.to_explicit_ad()
        assert dependency.lhs == attrset(["image"])
        for master_row in employee_multirelation.master_rows:
            if master_row["image"] is None:
                continue
            key_value = master_row["emp_id"]
            original = next(t for t in loaded_table.tuples if t["emp_id"] == key_value)
            tagged = original.extend(image=master_row["image"])
            assert dependency.check_tuple(tagged)

    def test_stored_cells_metric(self, employee_multirelation, loaded_table):
        employee_multirelation.insert_many(loaded_table.tuples)
        assert employee_multirelation.stored_cells() > 0
        assert len(employee_multirelation) == len(loaded_table)
