"""Shared fixtures: the paper's running examples as ready-made objects.

Also installs a global per-test timeout (``REPRO_TEST_TIMEOUT`` seconds,
default 300, ``0`` disables): a wedged test — a stuck admission queue, a
cancellation that never fires — aborts with a traceback instead of hanging
the whole suite until CI's job-level kill.
"""

import os
import signal
import threading

import pytest

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.engine import Database, Table
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme
from repro.workloads.addresses import address_definition, generate_addresses
from repro.workloads.employees import (
    employee_definition,
    employee_dependency,
    employee_domains,
    employee_scheme,
    generate_employees,
)


TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Bound each test body with SIGALRM (main thread, unix only)."""
    if (TEST_TIMEOUT_SECONDS <= 0 or not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        return (yield)

    def _timed_out(signum, frame):
        raise TimeoutError(
            "test exceeded the {}s per-test timeout "
            "(REPRO_TEST_TIMEOUT)".format(TEST_TIMEOUT_SECONDS))

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def example1_scheme():
    """The flexible scheme FS of Example 1: A, B unconditioned; C|D; some of E, F, G."""
    return FlexibleScheme(
        4,
        4,
        ["A", "B", FlexibleScheme(1, 1, ["C", "D"]), FlexibleScheme(1, 3, ["E", "F", "G"])],
    )


#: the 14 attribute combinations listed for dnf(FS) in the paper
EXAMPLE1_DNF = {
    frozenset("ABCE"), frozenset("ABDE"), frozenset("ABCF"), frozenset("ABDF"),
    frozenset("ABCG"), frozenset("ABDG"), frozenset("ABCEF"), frozenset("ABDEF"),
    frozenset("ABCEG"), frozenset("ABDEG"), frozenset("ABCFG"), frozenset("ABDFG"),
    frozenset("ABCEFG"), frozenset("ABDEFG"),
}


@pytest.fixture
def example1_dnf():
    return set(EXAMPLE1_DNF)


@pytest.fixture
def jobtype_ead():
    """The explicit attribute dependency of Example 2."""
    return employee_dependency()


@pytest.fixture
def employee_table():
    """An engine table for the employee workload, with 60 valid tuples loaded."""
    table = Table(employee_definition())
    table.insert_many(generate_employees(60, seed=7))
    return table


@pytest.fixture
def employee_database(employee_table):
    """A database exposing the loaded employee table under the name ``employees``."""
    database = Database()
    definition = employee_definition()
    table = database.create_table(
        "employees",
        definition.scheme,
        domains=definition.domains,
        key=definition.key,
        dependencies=definition.dependencies,
    )
    table.insert_many(employee_table.tuples)
    return database


@pytest.fixture
def address_table():
    """An engine table for the address workload, with 40 tuples loaded."""
    table = Table(address_definition())
    table.insert_many(generate_addresses(40, seed=11))
    return table


@pytest.fixture
def maiden_name_ead():
    """The sex/marital-status example: a two-attribute determinant."""
    return ExplicitAttributeDependency(
        ["sex", "marital_status"],
        ["maiden_name"],
        [Variant([{"sex": "f", "marital_status": "married"},
                  {"sex": "f", "marital_status": "widowed"}], ["maiden_name"], name="maiden")],
    )
