"""Unit tests for the physical execution subsystem (:mod:`repro.exec`)."""

import pytest

from repro.algebra import (
    EmptyRelation,
    NaturalJoin,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.errors import CatalogError
from repro.exec import (
    FilterOp,
    HashJoin,
    MergeUnion,
    NestedLoopJoin,
    PhysicalExecutor,
    PhysicalPlanner,
    ProjectOp,
    Scan,
    expression_key,
)
from repro.model.domains import IntDomain
from repro.model.scheme import FlexibleScheme
from repro.workloads.employees import employee_definition, generate_employees


@pytest.fixture
def database():
    db = Database()
    definition = employee_definition()
    table = db.create_table("employees", definition.scheme, domains=definition.domains,
                            key=definition.key, dependencies=definition.dependencies)
    table.insert_many(generate_employees(120, seed=5))
    return db


class TestLowering:
    def test_selection_and_guard_collapse_into_scan(self, database):
        expression = TypeGuardNode(
            Selection(RelationRef("employees"), Comparison("jobtype", "=", "secretary")),
            ["typing_speed"],
        )
        plan = PhysicalPlanner(source=database).plan(expression)
        assert isinstance(plan.root, Scan)
        assert plan.root.predicate is not None
        assert plan.root.guard is not None
        assert plan.root.equalities == {"jobtype": "secretary"}

    def test_filter_used_when_pushdown_impossible(self, database):
        expression = Selection(Union(RelationRef("employees"), RelationRef("employees")),
                               Comparison("salary", ">", 100.0))
        plan = PhysicalPlanner(source=database).plan(expression)
        assert isinstance(plan.root, FilterOp)
        assert isinstance(plan.root.child, MergeUnion)

    def test_large_join_lowers_to_hash_join(self, database):
        expression = NaturalJoin(RelationRef("employees"), RelationRef("employees"))
        plan = PhysicalPlanner(source=database).plan(expression)
        assert isinstance(plan.root, HashJoin)

    def test_small_join_lowers_to_nested_loop(self, database):
        tiny = database.create_table("tiny", FlexibleScheme(1, 1, ["emp_id"]),
                                     domains={"emp_id": IntDomain()})
        tiny.insert_many({"emp_id": value} for value in range(5))
        expression = NaturalJoin(RelationRef("tiny"), RelationRef("tiny"))
        plan = PhysicalPlanner(source=database).plan(expression)
        assert isinstance(plan.root, NestedLoopJoin)

    def test_join_threshold_is_configurable(self, database):
        expression = NaturalJoin(RelationRef("employees"), RelationRef("employees"))
        planner = PhysicalPlanner(source=database, hash_join_pair_threshold=10 ** 9)
        assert isinstance(planner.plan(expression).root, NestedLoopJoin)

    def test_unknown_cardinalities_default_to_hash_join(self):
        plan = PhysicalPlanner().plan(NaturalJoin(RelationRef("a"), RelationRef("b")))
        assert isinstance(plan.root, HashJoin)

    def test_explain_renders_tree(self, database):
        expression = Projection(
            Selection(RelationRef("employees"), Comparison("salary", ">", 100.0)),
            ["name"],
        )
        rendered = database.plan(expression, optimize=False).explain()
        assert "project" in rendered and "scan[employees" in rendered

    def test_empty_relation(self, database):
        result = database.execute(EmptyRelation())
        assert len(result) == 0


class TestExecution:
    def test_small_batches_do_not_change_results(self, database):
        expression = Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0))
        plan = PhysicalPlanner(source=database).plan(expression)
        one = plan.execute(database, batch_size=1)
        big = plan.execute(database, batch_size=10_000)
        assert one.tuples == big.tuples

    def test_operator_report_lists_plan_nodes(self, database):
        expression = Projection(
            Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0)),
            ["name", "jobtype"],
        )
        result = PhysicalExecutor(database).execute(expression)
        labels = [row["operator"] for row in result.operator_report()]
        assert any(label.startswith("project") for label in labels)
        assert any(label.startswith("scan") for label in labels)
        rows_out = {row["operator"]: row["rows_out"] for row in result.operator_report()}
        assert rows_out[labels[0]] == len(result)

    def test_stats_compatible_with_evaluator_interface(self, database):
        result = database.execute(RelationRef("employees"))
        stats = result.stats.as_dict()
        assert stats["tuples_scanned"] == 120
        assert stats["tuples_produced"] == 120
        assert stats["total_work"] >= 120

    def test_unknown_executor_rejected(self, database):
        with pytest.raises(CatalogError):
            database.execute(RelationRef("employees"), executor="quantum")


class TestPlanCache:
    def test_repeated_queries_hit_the_cache(self, database):
        executor = database.physical_executor
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0))
        database.execute(query)
        hits_before = executor.cache.hits
        database.execute(query)
        assert executor.cache.hits == hits_before + 1

    def test_schema_change_invalidates_cached_plans(self, database):
        query = Selection(RelationRef("employees"), Comparison("salary", ">", 4000.0))
        database.execute(query)
        version = database.catalog_version
        database.create_table("extra", FlexibleScheme(1, 1, ["x"]),
                              domains={"x": IntDomain()})
        assert database.catalog_version == version + 1
        misses_before = database.physical_executor.cache.misses
        database.execute(query)
        assert database.physical_executor.cache.misses == misses_before + 1

    def test_cache_is_bounded(self, database):
        executor = PhysicalExecutor(database, cache_size=2)
        for threshold in range(5):
            executor.execute(Selection(RelationRef("employees"),
                                       Comparison("salary", ">", float(threshold))))
        assert len(executor.cache) == 2

    def test_expression_key_distinguishes_structure(self):
        a = Selection(RelationRef("r"), Comparison("x", "=", 1))
        b = Selection(RelationRef("r"), Comparison("x", "=", 2))
        c = Selection(RelationRef("r"), Comparison("x", "=", 1))
        assert expression_key(a) != expression_key(b)
        assert expression_key(a) == expression_key(c)


class TestIndexScan:
    def test_point_query_uses_key_index(self, database):
        result = database.execute(
            Selection(RelationRef("employees"), Comparison("emp_id", "=", 42)))
        assert len(result) == 1
        assert result.stats.tuples_scanned == 1

    def test_index_respects_extra_conjuncts(self, database):
        query = Selection(RelationRef("employees"),
                          Comparison("emp_id", "=", 42) & Comparison("salary", "<", 0.0))
        assert len(database.execute(query)) == 0

    def test_unhashable_equality_value_falls_back_to_full_scan(self, database):
        # A list constant can never hash into an index bucket; the scan must fall
        # back instead of crashing, and agree with the naive evaluator (empty).
        query = Selection(RelationRef("employees"), Comparison("emp_id", "=", [1, 2]))
        physical = database.execute(query, executor="physical")
        naive = database.execute(query, executor="naive")
        assert physical.tuples == naive.tuples == set()

    def test_dml_after_caching_is_visible(self, database):
        query = Selection(RelationRef("employees"), Comparison("emp_id", "=", 5000))
        assert len(database.execute(query)) == 0
        database.insert("employees", {"emp_id": 5000, "name": "avery", "salary": 1.0,
                                      "jobtype": "secretary", "typing_speed": 80,
                                      "foreign_languages": "english"})
        assert len(database.execute(query)) == 1
