"""Tests for the textual query language (lexer, parser, end-to-end execution)."""

import pytest

from repro.algebra import (
    Difference,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import And, AttributeComparison, Comparison, Not, Or, PresencePredicate
from repro.model.attributes import attrset
from repro.query import parse_query, tokenize
from repro.query.lexer import QuerySyntaxError


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE")]
        assert kinds == ["SELECT", "FROM", "WHERE", "EOF"]

    def test_names_numbers_strings(self):
        tokens = tokenize("salary 42 3.5 'it''s'")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("NAME", "salary"), ("NUMBER", 42), ("NUMBER", 3.5), ("STRING", "it's"),
        ]

    def test_operators_and_punctuation(self):
        tokens = tokenize("a >= 1, (b <> 2) *")
        kinds = [t.kind for t in tokens]
        assert "OP" in kinds and "COMMA" in kinds and "LPAREN" in kinds and "STAR" in kinds

    def test_negative_number(self):
        tokens = tokenize("x = -5")
        assert tokens[2].value == -5

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT * -- a comment\nFROM t")
        assert [t.kind for t in tokens] == ["SELECT", "STAR", "FROM", "NAME", "EOF"]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a ; b")

    def test_malformed_number(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("x = 3.")


class TestParserStructure:
    def test_select_star(self):
        expression = parse_query("SELECT * FROM employees")
        assert isinstance(expression, RelationRef) and expression.name == "employees"

    def test_projection(self):
        expression = parse_query("SELECT name, salary FROM employees")
        assert isinstance(expression, Projection)
        assert expression.attributes == attrset(["name", "salary"])

    def test_where_builds_selection(self):
        expression = parse_query("SELECT * FROM employees WHERE salary > 5000")
        assert isinstance(expression, Selection)
        assert isinstance(expression.predicate, Comparison)

    def test_guard_clause(self):
        expression = parse_query("SELECT * FROM employees GUARD typing_speed, name")
        assert isinstance(expression, TypeGuardNode)
        assert expression.attributes == attrset(["typing_speed", "name"])

    def test_tag_clause(self):
        expression = parse_query("SELECT * FROM employees TAG source = 'hr'")
        assert expression.operator == "extend"
        assert expression.attribute == "source" and expression.value == "hr"

    def test_product_from_comma(self):
        expression = parse_query("SELECT * FROM a, b")
        assert isinstance(expression, Product)

    def test_join_with_on(self):
        expression = parse_query("SELECT * FROM a JOIN b ON (id)")
        assert isinstance(expression, NaturalJoin)
        assert expression.on == attrset(["id"])

    def test_natural_join_without_on(self):
        expression = parse_query("SELECT * FROM a NATURAL JOIN b")
        assert isinstance(expression, NaturalJoin) and expression.on is None

    def test_union_and_outer_union(self):
        assert isinstance(parse_query("SELECT * FROM a UNION SELECT * FROM b"), Union)
        assert isinstance(parse_query("SELECT * FROM a OUTER UNION SELECT * FROM b"), OuterUnion)
        assert isinstance(parse_query("SELECT * FROM a UNION OUTER SELECT * FROM b"), OuterUnion)

    def test_except(self):
        assert isinstance(parse_query("SELECT * FROM a EXCEPT SELECT * FROM b"), Difference)

    def test_predicate_combinators(self):
        expression = parse_query(
            "SELECT * FROM t WHERE NOT (a = 1 OR b = 2) AND c != 3"
        )
        predicate = expression.predicate
        assert isinstance(predicate, And)
        assert any(isinstance(op, Not) for op in predicate.operands)

    def test_has_predicate(self):
        expression = parse_query("SELECT * FROM t WHERE HAS typing_speed, products")
        assert isinstance(expression.predicate, PresencePredicate)

    def test_in_predicate(self):
        expression = parse_query("SELECT * FROM t WHERE jobtype IN ('a', 'b')")
        assert expression.predicate.op == "in" and expression.predicate.value == ["a", "b"]

    def test_attribute_comparison(self):
        expression = parse_query("SELECT * FROM t WHERE a = b")
        assert isinstance(expression.predicate, AttributeComparison)

    def test_literals(self):
        expression = parse_query("SELECT * FROM t WHERE a = TRUE AND b = NULL AND c = -2.5")
        comparisons = expression.predicate.operands
        assert comparisons[0].value is True
        assert comparisons[1].value is None
        assert comparisons[2].value == -2.5

    def test_projection_applied_last(self):
        expression = parse_query("SELECT name FROM t WHERE a = 1 GUARD b")
        assert isinstance(expression, Projection)
        assert isinstance(expression.child, TypeGuardNode)
        assert isinstance(expression.child.child, Selection)


class TestParserErrors:
    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t nonsense")

    def test_bad_tag(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t TAG x > 1")

    def test_missing_literal(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t WHERE a =")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t WHERE (a = 1")


class TestEndToEnd:
    def test_query_matches_hand_built_expression(self, employee_database):
        text = ("SELECT name, typing_speed FROM employees "
                "WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing_speed")
        via_text = employee_database.query(text, optimize=False)
        hand_built = Projection(
            TypeGuardNode(
                Selection(RelationRef("employees"),
                          Comparison("salary", ">", 5000) & Comparison("jobtype", "=", "secretary")),
                ["typing_speed"],
            ),
            ["name", "typing_speed"],
        )
        via_algebra = employee_database.execute(hand_built, optimize=False)
        assert via_text.tuples == via_algebra.tuples

    def test_query_goes_through_the_optimizer(self, employee_database):
        text = ("SELECT * FROM employees "
                "WHERE salary > 5000 AND jobtype = 'secretary' GUARD typing_speed")
        optimized = employee_database.query(text)
        unoptimized = employee_database.query(text, optimize=False)
        assert optimized.tuples == unoptimized.tuples
        assert optimized.stats.total_work < unoptimized.stats.total_work

    def test_union_of_shapes(self, employee_database):
        text = ("SELECT * FROM employees WHERE jobtype = 'secretary' "
                "UNION SELECT * FROM employees WHERE jobtype = 'salesman'")
        result = employee_database.query(text)
        assert all(t["jobtype"] in ("secretary", "salesman") for t in result)

    def test_except(self, employee_database):
        everyone = employee_database.query("SELECT * FROM employees")
        rest = employee_database.query(
            "SELECT * FROM employees EXCEPT SELECT * FROM employees WHERE jobtype = 'secretary'")
        assert len(rest) == len(everyone) - sum(1 for t in everyone if t["jobtype"] == "secretary")

    def test_has_predicate_acts_as_guard(self, employee_database):
        result = employee_database.query("SELECT * FROM employees WHERE HAS sales_commission")
        assert all("sales_commission" in t for t in result)
        assert all(t["jobtype"] == "salesman" for t in result)

    def test_tagged_union_restores_dependencies(self, employee_database):
        text = ("SELECT * FROM employees WHERE jobtype = 'secretary' TAG origin = 'a' "
                "UNION SELECT * FROM employees WHERE jobtype = 'salesman' TAG origin = 'b'")
        expression = parse_query(text)
        dependencies = expression.known_dependencies(employee_database)
        assert any("origin" in d.lhs for d in dependencies)

    def test_in_and_projection(self, employee_database):
        result = employee_database.query(
            "SELECT jobtype FROM employees WHERE jobtype IN ('secretary', 'salesman')")
        assert {t["jobtype"] for t in result} <= {"secretary", "salesman"}
