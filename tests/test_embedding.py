"""Tests for the programming-language embedding (variant records, artificial determinants)."""

import pytest

from repro.core.closure import implies
from repro.core.dependencies import ead
from repro.embedding import (
    ArtificialDeterminant,
    VariantCase,
    VariantRecordType,
    translate_scheme,
)
from repro.errors import EmbeddingError
from repro.model.attributes import attrset
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.workloads.employees import employee_dependency, employee_scheme, generate_employees


class TestVariantRecordType:
    def test_case_selection(self):
        record = VariantRecordType("t", ["a"], "kind", [
            VariantCase("one", [1], ["x"]),
            VariantCase("two", [2, 3], ["y"]),
        ])
        assert record.case_for(1).name == "one"
        assert record.case_for(3).name == "two"
        assert record.case_for(9) is None

    def test_accepts(self):
        record = VariantRecordType("t", ["a"], "kind", [VariantCase("one", [1], ["x"])])
        assert record.accepts(FlexTuple(a=1, kind=1, x=2))
        assert not record.accepts(FlexTuple(a=1, kind=1))          # missing case field
        assert not record.accepts(FlexTuple(a=1, kind=1, x=2, y=3))  # extra field
        assert record.accepts(FlexTuple(a=1, kind=9))              # unmatched tag: fixed part only

    def test_admitted_combinations(self):
        record = VariantRecordType("t", ["a"], "kind", [
            VariantCase("one", [1], ["x"]),
            VariantCase("two", [2], ["y"]),
        ])
        assert record.admitted_combinations() == {attrset(["a", "kind", "x"]),
                                                  attrset(["a", "kind", "y"])}

    def test_duplicate_tag_values_rejected(self):
        with pytest.raises(EmbeddingError):
            VariantRecordType("t", ["a"], "kind", [
                VariantCase("one", [1], ["x"]), VariantCase("two", [1], ["y"]),
            ])

    def test_cases_need_tag_field(self):
        with pytest.raises(EmbeddingError):
            VariantRecordType("t", ["a"], None, [VariantCase("one", [1], ["x"])])

    def test_renderings(self):
        record = VariantRecordType("person_record", ["name"], "kind",
                                   [VariantCase("a_case", [1], ["x"])])
        pascal = record.to_pascal()
        assert pascal.startswith("type person_record = record")
        assert "case kind" in pascal
        python = record.to_python()
        assert "class PersonRecord" in python and "class ACase(PersonRecord)" in python


class TestTranslation:
    def test_single_attribute_determinant(self):
        result = translate_scheme(employee_scheme(), employee_dependency(), type_name="employee")
        record = result.record_type
        assert record.tag_field == "jobtype"
        assert record.fixed_fields == attrset(["emp_id", "name", "salary"])
        assert {c.name for c in record.cases} == {"secretary", "software engineer", "salesman"}
        assert not result.artificial

    def test_translated_type_accepts_exactly_the_valid_tuples(self):
        result = translate_scheme(employee_scheme(), employee_dependency())
        record = result.record_type
        dependency = employee_dependency()
        for values in generate_employees(40, seed=31):
            assert record.accepts(FlexTuple(values))
        for values in generate_employees(40, invalid_fraction=1.0, seed=32):
            tup = FlexTuple(values)
            assert record.accepts(tup) == dependency.check_tuple(tup)

    def test_no_dependency_and_no_variants(self):
        result = translate_scheme(FlexibleScheme.relational(["a", "b"]))
        assert result.record_type.tag_field is None
        assert result.record_type.fixed_fields == attrset(["a", "b"])
        assert not result.added_dependencies

    def test_artificial_ad_for_uncovered_variants(self):
        scheme = FlexibleScheme(3, 3, ["a", "b", FlexibleScheme(1, 1, ["c", "d"])])
        result = translate_scheme(scheme, artificial_attribute="shape")
        record = result.record_type
        assert record.tag_field == "shape"
        assert len(record.cases) == scheme.count_variants()
        assert len(result.added_dependencies) == 1
        combos = {combo | attrset(["shape"]) for combo in scheme.dnf()}
        assert record.admitted_combinations() == combos

    def test_multi_attribute_determinant_introduces_artificial_attribute(self, maiden_name_ead):
        scheme = FlexibleScheme(3, 3, ["sex", "marital_status",
                                       FlexibleScheme(0, 1, ["maiden_name"])])
        result = translate_scheme(scheme, maiden_name_ead, type_name="person")
        assert len(result.artificial) == 1
        artificial = result.artificial[0]
        assert isinstance(artificial, ArtificialDeterminant)
        assert artificial.replaces == attrset(["sex", "marital_status"])
        assert artificial.functional_dependency.lhs == attrset(["sex", "marital_status"])
        assert artificial.attribute_dependency.lhs == attrset([artificial.attribute])

    def test_artificial_determinant_replacement_is_justified(self, maiden_name_ead):
        scheme = FlexibleScheme(3, 3, ["sex", "marital_status",
                                       FlexibleScheme(0, 1, ["maiden_name"])])
        result = translate_scheme(scheme, maiden_name_ead)
        artificial = result.artificial[0]
        # the proof trace really derives the original dependency from the replacement
        assert artificial.justification is not None
        assert artificial.justification.target == maiden_name_ead.to_ad()
        assert any("combined transitivity" in rule
                   for rule in artificial.justification.rules_used())
        # and the closure test agrees
        assert implies([artificial.functional_dependency, artificial.attribute_dependency],
                       maiden_name_ead.to_ad())

    def test_dependency_outside_scheme_rejected(self):
        dependency = ead(["k"], ["not_there"], [({"k": 1}, ["not_there"])])
        with pytest.raises(EmbeddingError):
            translate_scheme(FlexibleScheme.relational(["k", "a"]), dependency)
