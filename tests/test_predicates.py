"""Tests for the selection-predicate language."""

import pytest

from repro.algebra.predicates import (
    And,
    AttributeComparison,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    PresencePredicate,
    TruePredicate,
    attribute_equals,
)
from repro.errors import PredicateError
from repro.model.attributes import attrset
from repro.model.tuples import FlexTuple


class TestComparison:
    def test_equality_operator(self):
        predicate = Comparison("jobtype", "=", "secretary")
        assert predicate(FlexTuple(jobtype="secretary"))
        assert not predicate(FlexTuple(jobtype="salesman"))

    def test_ordering_operators(self):
        assert Comparison("salary", ">", 5000)(FlexTuple(salary=6000))
        assert Comparison("salary", "<=", 5000)(FlexTuple(salary=5000))
        assert not Comparison("salary", "<", 5000)(FlexTuple(salary=5000))
        assert Comparison("salary", "!=", 5000)(FlexTuple(salary=1))

    def test_in_operator(self):
        predicate = Comparison("jobtype", "in", ["secretary", "salesman"])
        assert predicate(FlexTuple(jobtype="salesman"))
        assert not predicate(FlexTuple(jobtype="pilot"))

    def test_missing_attribute_is_false(self):
        # guarded value access: no exception, just false
        assert not Comparison("salary", ">", 5000)(FlexTuple(name="x"))

    def test_type_mismatch_is_false(self):
        assert not Comparison("salary", ">", 5000)(FlexTuple(salary="high"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("a", "~", 1)

    def test_multi_attribute_rejected(self):
        with pytest.raises(PredicateError):
            Comparison(["a", "b"], "=", 1)

    def test_implied_equalities(self):
        assert Comparison("jobtype", "=", "x").implied_equalities() == {"jobtype": "x"}
        assert Comparison("salary", ">", 5).implied_equalities() == {}

    def test_required_attributes(self):
        assert Comparison("salary", ">", 5).required_attributes() == attrset(["salary"])

    def test_attribute_equals_shorthand(self):
        assert attribute_equals("a", 1)(FlexTuple(a=1))


class TestAttributeComparison:
    def test_compares_two_attributes(self):
        predicate = AttributeComparison("a", "=", "b")
        assert predicate(FlexTuple(a=1, b=1))
        assert not predicate(FlexTuple(a=1, b=2))
        assert not predicate(FlexTuple(a=1))

    def test_required_attributes(self):
        assert AttributeComparison("a", "<", "b").required_attributes() == attrset(["a", "b"])


class TestCombinators:
    def test_and(self):
        predicate = Comparison("salary", ">", 5000) & Comparison("jobtype", "=", "secretary")
        assert predicate(FlexTuple(salary=6000, jobtype="secretary"))
        assert not predicate(FlexTuple(salary=6000, jobtype="salesman"))

    def test_and_flattens(self):
        predicate = And(And(Comparison("a", "=", 1), Comparison("b", "=", 2)), Comparison("c", "=", 3))
        assert len(predicate.operands) == 3

    def test_and_implied_equalities_merge(self):
        predicate = Comparison("a", "=", 1) & Comparison("b", "=", 2) & Comparison("c", ">", 0)
        assert predicate.implied_equalities() == {"a": 1, "b": 2}

    def test_or(self):
        predicate = Comparison("a", "=", 1) | Comparison("b", "=", 2)
        assert predicate(FlexTuple(a=1)) and predicate(FlexTuple(b=2))
        assert not predicate(FlexTuple(a=2))

    def test_or_implied_equalities_require_agreement(self):
        same = Or(Comparison("a", "=", 1) & Comparison("b", "=", 2), Comparison("a", "=", 1))
        assert same.implied_equalities() == {"a": 1}
        different = Comparison("a", "=", 1) | Comparison("a", "=", 2)
        assert different.implied_equalities() == {}

    def test_not(self):
        predicate = ~Comparison("a", "=", 1)
        assert predicate(FlexTuple(a=2))
        assert not predicate(FlexTuple(a=1))

    def test_negation_contributes_no_required_attributes(self):
        assert Not(Comparison("a", "=", 1)).required_attributes() == attrset([])

    def test_empty_combinators_rejected(self):
        with pytest.raises(PredicateError):
            And()
        with pytest.raises(PredicateError):
            Or()


class TestSpecialPredicates:
    def test_true_and_false(self):
        assert TruePredicate()(FlexTuple())
        assert not FalsePredicate()(FlexTuple(a=1))

    def test_presence_predicate_is_a_type_guard(self):
        predicate = PresencePredicate(["typing_speed"])
        assert predicate(FlexTuple(typing_speed=90))
        assert not predicate(FlexTuple(salary=1))
        assert predicate.required_attributes() == attrset(["typing_speed"])

    def test_reprs(self):
        assert "AND" in repr(Comparison("a", "=", 1) & Comparison("b", "=", 2))
        assert "OR" in repr(Comparison("a", "=", 1) | Comparison("b", "=", 2))
        assert repr(TruePredicate()) == "TRUE" and repr(FalsePredicate()) == "FALSE"
