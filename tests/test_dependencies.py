"""Tests for the three dependency classes (Definitions 2.1, 4.1 and 4.2)."""

import pytest

from repro.core.dependencies import (
    AttributeDependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
    ad,
    ead,
    fd,
)
from repro.errors import DependencyError
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain
from repro.model.tuples import FlexTuple


class TestAttributeDependency:
    def test_satisfied_when_agreeing_tuples_share_rhs_subset(self):
        instance = [FlexTuple(X=1, Y=1), FlexTuple(X=1, Y=2, Z=None)]
        # both tuples defined on X with the same value, both possess Y, neither... Z differs
        assert not ad("X", ["Y", "Z"]).holds_in(instance)
        assert ad("X", ["Y"]).holds_in(instance)

    def test_tuples_not_defined_on_lhs_are_ignored(self):
        instance = [FlexTuple(Y=1), FlexTuple(X=1, Y=1)]
        assert ad("X", "Y").holds_in(instance)

    def test_values_of_rhs_do_not_matter(self):
        instance = [FlexTuple(X=1, Y="a"), FlexTuple(X=1, Y="b")]
        assert ad("X", "Y").holds_in(instance)
        assert not fd("X", "Y").holds_in(instance)

    def test_violation_witnesses_are_pairs(self):
        t1, t2 = FlexTuple(X=1, Y=1), FlexTuple(X=1)
        witnesses = ad("X", "Y").violations([t1, t2])
        assert len(witnesses) == 1 and set(witnesses[0]) == {t1, t2}

    def test_trivial_dependency(self):
        assert ad(["X", "Y"], ["X"]).is_trivial
        assert not ad(["X"], ["Y"]).is_trivial

    def test_project_rhs_rule_a1(self):
        dependency = ad("X", ["Y", "Z"]).project_rhs(["Y"])
        assert dependency == ad("X", "Y")

    def test_augment_lhs_rule_a4(self):
        dependency = ad("X", "Y").augment_lhs(["W"])
        assert dependency == ad(["X", "W"], "Y")

    def test_equality_and_hash(self):
        assert ad("X", "Y") == ad("X", "Y")
        assert len({ad("X", "Y"), ad("X", "Y")}) == 1
        assert ad("X", "Y") != ad("X", "Z")

    def test_ad_is_not_equal_to_fd(self):
        assert ad("X", "Y") != fd("X", "Y")
        assert len({ad("X", "Y"), fd("X", "Y")}) == 2

    def test_holds_in_relation_object(self, employee_table, jobtype_ead):
        assert jobtype_ead.to_ad().holds_in(employee_table)

    def test_repr_mentions_kind(self):
        assert "attr" in repr(ad("X", "Y"))


class TestFunctionalDependency:
    def test_requires_rhs_presence_in_both_tuples(self):
        instance = [FlexTuple(X=1, Y=1), FlexTuple(X=1)]
        assert not fd("X", "Y").holds_in(instance)

    def test_requires_equal_values(self):
        instance = [FlexTuple(X=1, Y=1), FlexTuple(X=1, Y=2)]
        assert not fd("X", "Y").holds_in(instance)

    def test_satisfied_fd(self):
        instance = [FlexTuple(X=1, Y=1), FlexTuple(X=1, Y=1, Z=5), FlexTuple(X=2, Y=9)]
        assert fd("X", "Y").holds_in(instance)

    def test_guarded_access_ignores_tuples_without_lhs(self):
        instance = [FlexTuple(Y=1), FlexTuple(X=1, Y=2)]
        assert fd("X", "Y").holds_in(instance)

    def test_subsumption_to_ad(self):
        assert fd("X", "Y").to_ad() == ad("X", "Y")

    def test_fd_implies_its_ad_semantically(self):
        instance = [FlexTuple(X=1, Y=1), FlexTuple(X=1, Y=1)]
        dependency = fd("X", "Y")
        assert dependency.holds_in(instance)
        assert dependency.to_ad().holds_in(instance)

    def test_trivial_fd(self):
        assert fd(["X", "Y"], ["Y"]).is_trivial


class TestVariant:
    def test_single_mapping_becomes_singleton(self):
        variant = Variant({"jobtype": "secretary"}, ["typing_speed"])
        assert len(variant.values) == 1

    def test_matches(self):
        variant = Variant([{"k": 1}, {"k": 2}], ["a"])
        assert variant.matches(FlexTuple(k=1)) and variant.matches(FlexTuple(k=2))
        assert not variant.matches(FlexTuple(k=3))

    def test_needs_at_least_one_value(self):
        with pytest.raises(DependencyError):
            Variant([], ["a"])

    def test_equality(self):
        assert Variant({"k": 1}, ["a"]) == Variant([{"k": 1}], ["a"])


class TestExplicitAttributeDependency:
    def test_jobtype_example(self, jobtype_ead):
        secretary = FlexTuple(jobtype="secretary", typing_speed=90, foreign_languages="fr",
                              emp_id=1, name="x", salary=1.0)
        assert jobtype_ead.check_tuple(secretary)

    def test_rejects_wrong_variant_attributes(self, jobtype_ead):
        bad = FlexTuple(jobtype="salesman", typing_speed=90, foreign_languages="fr")
        assert not jobtype_ead.check_tuple(bad)

    def test_rejects_missing_variant_attributes(self, jobtype_ead):
        bad = FlexTuple(jobtype="secretary", typing_speed=90)
        assert not jobtype_ead.check_tuple(bad)

    def test_rejects_extra_variant_attributes(self, jobtype_ead):
        bad = FlexTuple(jobtype="secretary", typing_speed=90, foreign_languages="fr",
                        sales_commission=0.5)
        assert not jobtype_ead.check_tuple(bad)

    def test_unmatched_value_requires_no_rhs_attributes(self):
        dependency = ead(["k"], ["a", "b"], [({"k": 1}, ["a"])])
        assert dependency.check_tuple(FlexTuple(k=2))
        assert not dependency.check_tuple(FlexTuple(k=2, a=1))

    def test_tuple_without_determinant_requires_no_rhs_attributes(self, jobtype_ead):
        assert jobtype_ead.check_tuple(FlexTuple(name="x", salary=1.0))
        assert not jobtype_ead.check_tuple(FlexTuple(name="x", typing_speed=90))

    def test_variant_for(self, jobtype_ead):
        tup = FlexTuple(jobtype="salesman", products="db", sales_commission=0.1)
        assert jobtype_ead.variant_for(tup).name == "salesman"
        assert jobtype_ead.variant_for(FlexTuple(name="x")) is None

    def test_holds_in_instance(self, jobtype_ead):
        good = [FlexTuple(jobtype="secretary", typing_speed=1, foreign_languages="fr")]
        bad = good + [FlexTuple(jobtype="secretary", products="db")]
        assert jobtype_ead.holds_in(good)
        assert not jobtype_ead.holds_in(bad)
        assert len(jobtype_ead.violations(bad)) == 1

    def test_to_ad(self, jobtype_ead):
        abbreviated = jobtype_ead.to_ad()
        assert abbreviated.lhs == attrset(["jobtype"])
        assert "typing_speed" in abbreviated.rhs

    def test_overlapping_variants_not_disjoint(self, jobtype_ead):
        # 'products' is shared by software engineer and salesman.
        assert not jobtype_ead.is_disjoint()

    def test_disjoint_classification(self):
        dependency = ead(["k"], ["a", "b"], [({"k": 1}, ["a"]), ({"k": 2}, ["b"])])
        assert dependency.is_disjoint()

    def test_totality(self, jobtype_ead):
        domains = {"jobtype": EnumDomain(["secretary", "software engineer", "salesman"])}
        assert jobtype_ead.is_total(domains)
        domains_with_extra = {"jobtype": EnumDomain(["secretary", "software engineer",
                                                     "salesman", "pilot"])}
        assert not jobtype_ead.is_total(domains_with_extra)

    def test_totality_needs_domains(self, jobtype_ead):
        with pytest.raises(DependencyError):
            jobtype_ead.is_total({})

    def test_project_rhs_example4(self, jobtype_ead):
        projected = jobtype_ead.project_rhs(["typing_speed"])
        assert projected.rhs == attrset(["typing_speed"])
        by_name = {v.name: v for v in projected.variants}
        assert by_name["secretary"].attributes == attrset(["typing_speed"])
        assert by_name["salesman"].attributes == attrset([])

    def test_combine_additivity(self):
        first = ead(["k"], ["a"], [({"k": 1}, ["a"]), ({"k": 2}, ["a"])])
        second = ead(["k"], ["b"], [({"k": 1}, ["b"])])
        combined = first.combine(second)
        assert combined.rhs == attrset(["a", "b"])
        assert combined.required_attributes(FlexTuple(k=1)) == attrset(["a", "b"])

    def test_combine_requires_same_lhs(self):
        first = ead(["k"], ["a"], [({"k": 1}, ["a"])])
        second = ead(["j"], ["b"], [({"j": 1}, ["b"])])
        with pytest.raises(DependencyError):
            first.combine(second)

    def test_structural_validation_yi_subset(self):
        with pytest.raises(DependencyError):
            ead(["k"], ["a"], [({"k": 1}, ["not_in_rhs"])])

    def test_structural_validation_disjoint_values(self):
        with pytest.raises(DependencyError):
            ead(["k"], ["a", "b"], [({"k": 1}, ["a"]), ({"k": 1}, ["b"])])

    def test_structural_validation_value_shape(self):
        with pytest.raises(DependencyError):
            ead(["k"], ["a"], [({"wrong": 1}, ["a"])])

    def test_needs_variants(self):
        with pytest.raises(DependencyError):
            ead(["k"], ["a"], [])

    def test_multi_attribute_determinant(self, maiden_name_ead):
        married = FlexTuple(sex="f", marital_status="married", maiden_name="smith")
        single = FlexTuple(sex="f", marital_status="single")
        male = FlexTuple(sex="m", marital_status="married")
        assert maiden_name_ead.check_tuple(married)
        assert maiden_name_ead.check_tuple(single)
        assert maiden_name_ead.check_tuple(male)
        assert not maiden_name_ead.check_tuple(FlexTuple(sex="m", marital_status="married",
                                                         maiden_name="x"))

    def test_equality_and_hash(self):
        first = ead(["k"], ["a"], [({"k": 1}, ["a"])])
        second = ead(["k"], ["a"], [({"k": 1}, ["a"])])
        assert first == second and len({first, second}) == 1
