"""Tests for the cost-based join-order search (repro.optimizer.joinorder).

Covers the join-graph extractor (flattening, universes, the reorderability
safety conditions), the DP enumerator on a known-cardinality star schema
(plan shape, honest estimates, search statistics), the greedy fallback
threshold, differential parity of reordered plans against the naive evaluator
in row and batch modes, and plan-cache behaviour when statistics or the search
mode change the chosen order.
"""

import itertools
import random

import pytest

from repro.algebra import Evaluator
from repro.algebra.expressions import (
    NaturalJoin,
    Projection,
    RelationRef,
    Selection,
)
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.errors import OptimizerError
from repro.exec import PhysicalExecutor, PhysicalPlanner
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.optimizer.cost import CostModel
from repro.optimizer.joinorder import (
    SEARCH_MODES,
    extract_join_graph,
    order_joins,
)
from repro.workloads.star import (
    chain_join_database,
    chain_join_query,
    star_join_database,
    star_join_query,
)


@pytest.fixture(scope="module")
def star_db():
    database = star_join_database(fact_rows=600)
    database.analyze()
    return database


@pytest.fixture(scope="module")
def chain_db():
    database = chain_join_database(rows=(80, 120, 400, 120, 80))
    database.analyze()
    return database


def _dp_report(database, query, **planner_kwargs):
    planner = PhysicalPlanner(database, **planner_kwargs)
    plan = planner.plan(query)
    assert plan.join_search, "expected the search to run on {}".format(query)
    return plan, plan.join_search[0]


# -- join-graph extraction -------------------------------------------------------------


class TestExtractJoinGraph:
    def test_flattens_star_into_atoms_and_edges(self, star_db):
        graph = extract_join_graph(star_join_query(), star_db)
        assert graph is not None
        assert len(graph) == 6
        labels = sorted(atom.label for atom in graph.atoms)
        assert labels == ["dim_a", "dim_b", "dim_c", "dim_small", "fact",
                          "σ(dim_rare)"]
        # A star: every dimension connects to the fact table and nothing else.
        assert len(graph.edges) == 5
        assert graph.connected((1 << 6) - 1)

    def test_two_way_join_is_not_reordered(self, star_db):
        query = NaturalJoin(RelationRef("fact"), RelationRef("dim_small"),
                            on=["ds"])
        assert extract_join_graph(query, star_db) is None

    def test_narrowed_on_set_refuses_to_reorder(self, star_db):
        # fact ⋈ fact shares every attribute; joining on only fact_id is a
        # narrowed join (merge semantics differ under reassociation).
        narrowed = NaturalJoin(
            NaturalJoin(RelationRef("fact"), RelationRef("fact"),
                        on=["fact_id"]),
            RelationRef("dim_small"), on=["ds"])
        assert extract_join_graph(narrowed, star_db) is None

    def test_data_dependent_join_is_an_atom(self, star_db):
        # on=None joins compute their attributes from the data; they are never
        # flattened, so this tree has only two atoms and keeps its order.
        query = NaturalJoin(
            NaturalJoin(RelationRef("fact"), RelationRef("dim_small")),
            RelationRef("dim_a"), on=["da"])
        assert extract_join_graph(query, star_db) is None

    def test_schema_less_source_refuses_to_reorder(self):
        source = {
            "r1": {FlexTuple({"a": 1, "b": 2})},
            "r2": {FlexTuple({"b": 2, "c": 3})},
            "r3": {FlexTuple({"c": 3, "d": 4})},
        }
        query = NaturalJoin(
            NaturalJoin(RelationRef("r1"), RelationRef("r2"), on=["b"]),
            RelationRef("r3"), on=["c"])
        assert extract_join_graph(query, source) is None

    def test_projection_narrows_the_universe(self, star_db):
        # Projecting the foreign key away severs the dim_a edge, so the on-set
        # check fails (the written join would be a cross product) — no reorder.
        projected = Projection(RelationRef("fact"), ["fact_id", "ds", "dr"])
        query = NaturalJoin(
            NaturalJoin(projected, RelationRef("dim_small"), on=["ds"]),
            RelationRef("dim_a"), on=["da"])
        assert extract_join_graph(query, star_db) is None

    def test_selection_chain_stays_glued_to_its_atom(self, star_db):
        graph = extract_join_graph(star_join_query(), star_db)
        rare = next(atom for atom in graph.atoms if atom.label == "σ(dim_rare)")
        assert isinstance(rare.expression, Selection)
        assert "kind" in rare.universe and "audit_level" in rare.universe


# -- the search ------------------------------------------------------------------------


class TestSearch:
    def test_dp_joins_the_selective_dimension_first(self, star_db):
        plan, report = _dp_report(star_db, star_join_query())
        assert report.mode == "dp" and not report.fallback
        assert ("(fact ⋈ σ(dim_rare))" in report.order
                or "(σ(dim_rare) ⋈ fact)" in report.order)

    def test_estimates_are_honest_on_known_cardinalities(self, star_db):
        plan, report = _dp_report(star_db, star_join_query())
        true_rows = len(Evaluator(star_db).evaluate(star_join_query()).tuples)
        # 600 fact rows, dr uniform over 1000 ids, 50 of them rare → 30 rows.
        assert plan.root.estimated_rows == pytest.approx(report.estimated_rows)
        assert report.estimated_rows == pytest.approx(true_rows, rel=0.25)

    def test_dp_enumerates_connected_subsets_only(self, star_db):
        _plan, report = _dp_report(star_db, star_join_query())
        # 6 atoms: singletons (6) + connected composites; a star has exactly
        # C(5,k) connected subsets containing the hub plus the singletons.
        assert report.relations == 6
        assert report.subsets_enumerated == 6 + 31  # 31 = subsets ∋ fact, |S|≥2
        assert report.plans_considered > 0
        assert report.plans_pruned < report.plans_considered

    def test_greedy_fallback_above_threshold(self, star_db):
        _plan, report = _dp_report(star_db, star_join_query(),
                                   join_dp_threshold=3)
        assert report.mode == "greedy" and report.fallback
        _plan, default_report = _dp_report(star_db, star_join_query())
        assert default_report.mode == "dp" and not default_report.fallback

    def test_every_mode_prices_fewer_pairs_than_written_order(self, star_db):
        query = star_join_query()
        baseline = PhysicalPlanner(star_db, join_order_search="none").plan(query)
        baseline_pairs = baseline.execute(star_db).stats.join_pairs_considered
        for mode in ("dp", "greedy"):
            plan = PhysicalPlanner(star_db, join_order_search=mode).plan(query)
            pairs = plan.execute(star_db).stats.join_pairs_considered
            assert pairs * 5 <= baseline_pairs, mode

    def test_unknown_mode_raises(self, star_db):
        with pytest.raises(OptimizerError):
            PhysicalPlanner(star_db, join_order_search="exhaustive")
        with pytest.raises(OptimizerError):
            order_joins(star_join_query(), CostModel(star_db), mode="selinger")

    def test_search_report_rendered_by_explain(self, star_db):
        text = star_db.plan(star_join_query(), optimize=False).explain()
        assert "join-order[dp]" in text
        assert "order:" in text
        explain = star_db.explain(star_join_query(), optimize=False)
        assert "join-order[dp]" in explain


# -- differential parity ---------------------------------------------------------------


def assert_search_parity(expression, source, modes=SEARCH_MODES):
    """Every search mode × row/batch equals the naive evaluator's result."""
    naive = Evaluator(source).evaluate(expression).tuples
    for mode in modes:
        for vectorize in (False, True):
            planner = PhysicalPlanner(source, join_order_search=mode,
                                      vectorize=vectorize)
            plan = planner.plan(expression)
            result = plan.execute(source)
            assert result.tuples == naive, "mode={} vectorize={}\n{}".format(
                mode, vectorize, plan.explain())


class TestCliqueSelectivity:
    """One attribute joining >2 atoms must be priced once per cut, not per edge."""

    @pytest.fixture(scope="class")
    def clique_db(self):
        database = Database()
        for t in (1, 2, 3):
            attr = "a{}".format(t)
            table = database.create_table(
                "r{}".format(t), FlexibleScheme.relational(["x", attr]), key=[attr])
            # 20 distinct x values, each appearing 3 times per table.
            table.insert_many({"x": i % 20 + 1, attr: i} for i in range(60))
        database.analyze()
        return database

    def clique_query(self):
        return NaturalJoin(
            NaturalJoin(RelationRef("r1"), RelationRef("r2"), on=["x"]),
            RelationRef("r3"), on=["x"])

    def test_estimate_matches_true_cardinality(self, clique_db):
        query = self.clique_query()
        true_rows = len(Evaluator(clique_db).evaluate(query).tuples)
        assert true_rows == 20 * 27  # 20 ids × 3 partners per table
        plan = PhysicalPlanner(clique_db).plan(query)
        report = plan.join_search[0]
        # Per-edge accounting charged 1/ndv once per crossing edge (two edges
        # cross the top cut of a 3-clique), under-estimating 20×.
        assert report.estimated_rows == pytest.approx(true_rows, rel=0.05)
        assert plan.root.estimated_rows == pytest.approx(report.estimated_rows)

    def test_order_independence_of_root_estimate(self, clique_db):
        """Every association of the clique prices to the same root cardinality."""
        trees = [
            NaturalJoin(NaturalJoin(RelationRef(a), RelationRef(b), on=["x"]),
                        RelationRef(c), on=["x"])
            for a, b, c in itertools.permutations(["r1", "r2", "r3"])
        ]
        estimates = set()
        for tree in trees:
            plan = PhysicalPlanner(clique_db).plan(tree)
            estimates.add(round(plan.join_search[0].estimated_rows, 6))
        assert len(estimates) == 1

    def test_clique_parity(self, clique_db):
        assert_search_parity(self.clique_query(), clique_db)

    def test_anticorrelated_hub_presence_is_order_independent(self):
        """Presence is charged marginally per (atom, attribute): a hub whose
        join attributes never co-occur must price to the same root cardinality
        under every association (joint charging would price ((A⋈B)⋈C) at 0)."""
        database = Database()
        a = database.create_table("a", FlexibleScheme.relational(["x", "z", "aa"]),
                                  key=["aa"])
        a.insert_many({"x": i % 10, "z": i % 4, "aa": i} for i in range(40))
        b = database.create_table("b", FlexibleScheme.relational(["y", "z", "bb"]),
                                  key=["bb"])
        b.insert_many({"y": i % 10, "z": i % 4, "bb": i} for i in range(40))
        c = database.create_table(
            "c", FlexibleScheme(1, 2, ["cid", FlexibleScheme(0, 2, ["x", "y"])]),
            key=["cid"])
        # anti-correlated variants: every row carries x or y, never both
        c.insert_many({"cid": i, ("x" if i % 2 else "y"): i % 10}
                      for i in range(40))
        database.analyze()
        trees = [
            NaturalJoin(NaturalJoin(RelationRef("a"), RelationRef("b"), on=["z"]),
                        RelationRef("c"), on=["x", "y"]),
            NaturalJoin(NaturalJoin(RelationRef("a"), RelationRef("c"), on=["x"]),
                        RelationRef("b"), on=["y", "z"]),
            NaturalJoin(NaturalJoin(RelationRef("b"), RelationRef("c"), on=["y"]),
                        RelationRef("a"), on=["x", "z"]),
        ]
        estimates = set()
        for tree in trees:
            plan = PhysicalPlanner(database).plan(tree)
            assert plan.join_search, "expected the search to run"
            estimates.add(round(plan.join_search[0].estimated_rows, 9))
        assert len(estimates) == 1
        for tree in trees:
            assert_search_parity(tree, database)


class TestParity:
    def test_star_query_all_modes(self, star_db):
        assert_search_parity(star_join_query(), star_db)

    def test_chain_query_all_modes(self, chain_db):
        assert_search_parity(chain_join_query(), chain_db)

    def test_written_order_permutations_agree(self, star_db):
        """Any left-deep written order of the star produces the same result
        (and the same DP plan cardinality estimate)."""
        dims = [("dim_small", "ds"), ("dim_a", "da"),
                ("dim_c", "dc")]
        for permutation in itertools.permutations(dims):
            tree = RelationRef("fact")
            for name, attribute in permutation:
                tree = NaturalJoin(tree, RelationRef(name), on=[attribute])
            assert_search_parity(tree, star_db, modes=("dp", "none"))

    def test_bushy_written_shape_agrees(self, chain_db):
        """A hand-written bushy chain tree is reordered correctly too."""
        left = NaturalJoin(RelationRef("stage1"), RelationRef("stage2"),
                           on=["link2"])
        right = NaturalJoin(RelationRef("stage4"), RelationRef("stage5"),
                            on=["link5"])
        bushy = NaturalJoin(NaturalJoin(left, RelationRef("stage3"),
                                        on=["link3"]),
                            right, on=["link4"])
        assert_search_parity(bushy, chain_db)

    def test_randomized_star_fragments(self, star_db):
        """Random sub-joins of the star with random selections keep parity."""
        rng = random.Random(0xE13)
        dims = [("dim_small", "ds"), ("dim_a", "da"), ("dim_b", "db"),
                ("dim_c", "dc"), ("dim_rare", "dr")]
        for _ in range(6):
            chosen = rng.sample(dims, rng.randrange(2, 5))
            tree = RelationRef("fact")
            if rng.random() < 0.5:
                tree = Selection(tree, Comparison("da", "<=", rng.randrange(5, 25)))
            for name, attribute in chosen:
                side = RelationRef(name)
                if name == "dim_rare" and rng.random() < 0.7:
                    side = Selection(side, Comparison("kind", "=", "rare"))
                tree = NaturalJoin(tree, side, on=[attribute])
            assert_search_parity(tree, star_db, modes=("dp", "greedy", "none"))


# -- plan cache behaviour --------------------------------------------------------------


class TestPlanCache:
    def test_statistics_change_the_chosen_order_and_replan(self):
        database = star_join_database(fact_rows=600)
        query = star_join_query()
        executor = database.physical_executor
        before = database.plan(query, optimize=False)
        assert executor.cache_misses == 1
        # Without statistics the default constants see no reason to prefer the
        # selective dimension; ANALYZE flips the chosen order.
        assert "(fact ⋈ σ(dim_rare))" not in before.join_search[0].order
        database.analyze()
        after = database.plan(query, optimize=False)
        assert executor.cache_misses == 2, "stats version must re-key the cache"
        assert "(fact ⋈ σ(dim_rare))" in after.join_search[0].order
        assert after.join_search[0].order != before.join_search[0].order
        # Identical results either way.
        assert before.execute(database).tuples == after.execute(database).tuples

    def test_search_mode_is_part_of_the_cache_key(self, star_db):
        executor = PhysicalExecutor(star_db)
        query = star_join_query()
        dp_plan = executor.plan(query)
        assert executor.cache_misses == 1
        executor.planner.join_order_search = "none"
        none_plan = executor.plan(query)
        assert executor.cache_misses == 2
        assert none_plan is not dp_plan
        assert not none_plan.join_search
        executor.planner.join_order_search = "dp"
        assert executor.plan(query) is dp_plan
        assert executor.cache_hits == 1

    def test_database_join_order_search_knob(self):
        database = star_join_database(fact_rows=200)
        database.analyze()
        assert database.physical_executor.planner.join_order_search == "dp"
        disabled = Database(join_order_search="none")
        assert disabled.physical_executor.planner.join_order_search == "none"

    def test_database_validates_mode_at_construction(self):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            Database(join_order_search="greed")

    def test_executor_rejects_conflicting_search_modes(self, star_db):
        planner = PhysicalPlanner(star_db, join_order_search="dp")
        with pytest.raises(ValueError):
            PhysicalExecutor(star_db, planner=planner, join_order_search="none")
        # Agreeing (or omitted) modes are fine.
        PhysicalExecutor(star_db, planner=planner, join_order_search="dp")
        PhysicalExecutor(star_db, planner=planner)

    def test_search_respects_planner_probe_cost_factor(self, star_db):
        """An absurdly expensive probe factor must not change correctness, and
        the search must price with the planner's factor (no index-probe plan
        can look cheap)."""
        planner = PhysicalPlanner(star_db, index_probe_cost_factor=10_000.0)
        plan = planner.plan(star_join_query())
        result = plan.execute(star_db)
        naive = Evaluator(star_db).evaluate(star_join_query())
        assert result.tuples == naive.tuples

    def test_cached_plan_reexecutes_after_dml(self, star_db):
        """Reordered plans resolve relations at execution time like any other
        physical plan — DML between executions stays correct."""
        database = star_join_database(fact_rows=100)
        database.analyze()
        query = star_join_query()
        first = database.execute(query, optimize=False)
        database.table("fact").insert(
            {"fact_id": 10001, "ds": 1, "dr": 20, "da": 1, "db": 1, "dc": 1})
        second = database.execute(query, optimize=False)
        naive = Evaluator(database).evaluate(query)
        assert second.tuples == naive.tuples
        assert len(second) == len(first) + 1
