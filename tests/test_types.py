"""Tests for record types, the traditional subtyping rule, type guards, type checking."""

import pytest

from repro.errors import TypeCheckError
from repro.model.attributes import attrset
from repro.model.domains import AnyDomain, EnumDomain, FloatDomain, IntDomain, RangeDomain, StringDomain
from repro.model.tuples import FlexTuple
from repro.types import (
    RecordType,
    TypeChecker,
    TypeGuard,
    check_tuple_against_type,
    conjunction_of_guards,
    domain_subsumes,
    is_record_subtype,
)
from repro.types.type_guards import guards_for_attributes
from repro.workloads.employees import employee_dependency, employee_domains, employee_scheme


class TestDomainSubsumption:
    def test_any_subsumes_everything(self):
        assert domain_subsumes(AnyDomain(), IntDomain())
        assert domain_subsumes(AnyDomain(), EnumDomain(["a"]))

    def test_enum_subset(self):
        full = EnumDomain(["a", "b", "c"])
        restricted = EnumDomain(["a"])
        assert domain_subsumes(full, restricted)
        assert not domain_subsumes(restricted, full)

    def test_range_containment(self):
        assert domain_subsumes(RangeDomain(0, 100), RangeDomain(10, 20))
        assert not domain_subsumes(RangeDomain(10, 20), RangeDomain(0, 100))

    def test_enum_inside_infinite_domain(self):
        assert domain_subsumes(FloatDomain(), EnumDomain([1.0, 2.5]))
        assert not domain_subsumes(IntDomain(), EnumDomain(["x"]))

    def test_same_class_unparameterized(self):
        assert domain_subsumes(IntDomain(), IntDomain())

    def test_identity(self):
        domain = StringDomain(max_length=5)
        assert domain_subsumes(domain, domain)


class TestRecordType:
    def test_field_access(self):
        record = RecordType("employee", {"salary": FloatDomain()})
        assert record.domain_of("salary").name == "float"
        assert "salary" in record and "zip" not in record

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeCheckError):
            RecordType("t", {"a": IntDomain()}).domain_of("b")

    def test_attributes(self):
        record = RecordType("t", {"a": IntDomain(), "b": IntDomain()})
        assert record.attributes == attrset(["a", "b"])

    def test_accepts_width(self):
        record = RecordType("t", {"a": IntDomain()})
        assert record.accepts(FlexTuple(a=1, extra="x"))
        assert not record.accepts(FlexTuple(a=1, extra="x"), exact=True)
        assert record.accepts(FlexTuple(a=1), exact=True)

    def test_accepts_checks_domains(self):
        record = RecordType("t", {"a": IntDomain()})
        assert not record.accepts(FlexTuple(a="not an int"))

    def test_extend_and_restrict(self):
        base = RecordType("base", {"k": EnumDomain(["x", "y"]), "a": IntDomain()})
        extended = base.extend("sub", {"extra": IntDomain()})
        assert "extra" in extended
        restricted = extended.restrict_field("sub2", "k", ["x"])
        assert not restricted.domain_of("k").contains("y")

    def test_extend_rejects_existing_field(self):
        with pytest.raises(TypeCheckError):
            RecordType("t", {"a": IntDomain()}).extend("t2", {"a": IntDomain()})

    def test_project(self):
        record = RecordType("t", {"a": IntDomain(), "b": IntDomain()})
        assert record.project("p", ["a"]).attributes == attrset(["a"])

    def test_project_unknown_field_rejected(self):
        with pytest.raises(TypeCheckError):
            RecordType("t", {"a": IntDomain()}).project("p", ["z"])

    def test_shorthand_enum_fields(self):
        record = RecordType("t", {"k": ["a", "b"]})
        assert record.domain_of("k").contains("a")

    def test_structural_equality(self):
        first = RecordType("x", {"a": IntDomain()})
        second = RecordType("y", {"a": IntDomain()})
        assert first == second


class TestRecordSubtypingRule:
    def test_width_subtyping(self):
        super_type = RecordType("super", {"a": IntDomain()})
        sub_type = RecordType("sub", {"a": IntDomain(), "b": IntDomain()})
        assert is_record_subtype(sub_type, super_type)
        assert not is_record_subtype(super_type, sub_type)

    def test_depth_subtyping(self):
        super_type = RecordType("super", {"k": EnumDomain(["a", "b"])})
        sub_type = RecordType("sub", {"k": EnumDomain(["a"])})
        assert is_record_subtype(sub_type, super_type)
        assert not is_record_subtype(super_type, sub_type)

    def test_combined_width_and_depth(self):
        employee = RecordType("employee", {"salary": FloatDomain(),
                                           "jobtype": EnumDomain(["s", "e"])})
        secretary = RecordType("secretary", {"salary": FloatDomain(),
                                             "jobtype": EnumDomain(["s"]),
                                             "typing_speed": IntDomain()})
        assert is_record_subtype(secretary, employee)

    def test_reflexive(self):
        record = RecordType("t", {"a": IntDomain()})
        assert is_record_subtype(record, record)

    def test_incompatible_domains(self):
        first = RecordType("a", {"k": EnumDomain(["x"])})
        second = RecordType("b", {"k": EnumDomain(["y"])})
        assert not is_record_subtype(first, second)


class TestTypeGuards:
    def test_check(self):
        guard = TypeGuard(["typing_speed"])
        assert guard(FlexTuple(typing_speed=90))
        assert not guard(FlexTuple(salary=1.0))

    def test_trivial_guard(self):
        assert TypeGuard([]).is_trivial()
        assert TypeGuard([])(FlexTuple(a=1))

    def test_union_and_conjunction(self):
        combined = TypeGuard(["a"]).union(TypeGuard(["b"]))
        assert combined.attributes == attrset(["a", "b"])
        assert conjunction_of_guards([TypeGuard(["a"]), TypeGuard(["b"])]) == combined

    def test_guards_for_attributes(self):
        guards = guards_for_attributes(["a", "b"])
        assert len(guards) == 2 and all(len(g.attributes) == 1 for g in guards)

    def test_equality_and_hash(self):
        assert TypeGuard(["a"]) == TypeGuard(["a"])
        assert len({TypeGuard(["a"]), TypeGuard(["a"])}) == 1


class TestTypeChecker:
    def test_check_tuple_against_type(self):
        record = RecordType("t", {"a": IntDomain()})
        check_tuple_against_type(FlexTuple(a=1), record)
        with pytest.raises(TypeCheckError):
            check_tuple_against_type(FlexTuple(b=1), record)
        with pytest.raises(TypeCheckError):
            check_tuple_against_type(FlexTuple(a="x"), record)
        with pytest.raises(TypeCheckError):
            check_tuple_against_type(FlexTuple(a=1, b=2), record, exact=True)

    def test_scheme_only_accepts_wrong_variant(self):
        # The paper's point: the scheme cannot reject the salesman-with-typing-speed tuple.
        checker = TypeChecker(scheme=employee_scheme(), check_dependencies=False)
        bad = FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="salesman",
                        typing_speed=90, foreign_languages="fr")
        assert checker.accepts(bad)

    def test_dependency_level_rejects_wrong_variant(self):
        checker = TypeChecker(scheme=employee_scheme(), dependencies=[employee_dependency()])
        bad = FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="salesman",
                        typing_speed=90, foreign_languages="fr")
        report = checker.report(bad)
        assert report.scheme_ok and not report.dependencies_ok and not report.ok

    def test_domain_level(self):
        checker = TypeChecker(scheme=employee_scheme(), domains=employee_domains())
        bad = FlexTuple(emp_id="not an int", name="x", salary=1.0, jobtype="secretary",
                        typing_speed=1, foreign_languages="fr")
        report = checker.report(bad)
        assert report.domains_ok is False

    def test_check_raises_with_message(self):
        checker = TypeChecker(scheme=employee_scheme(), dependencies=[employee_dependency()])
        good = FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="secretary",
                         typing_speed=1, foreign_languages="fr")
        assert checker.check(good) == good
        with pytest.raises(TypeCheckError):
            checker.check(FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="secretary"))

    def test_levels_can_be_disabled(self):
        checker = TypeChecker(scheme=employee_scheme(), dependencies=[employee_dependency()],
                              check_scheme=False, check_dependencies=False)
        assert checker.accepts(FlexTuple(unknown="attribute"))
