"""The pinned NULL-vs-absent aggregate matrix, across all three engines.

Flexible relations distinguish an attribute that is *absent* (a structural
variant) from one that is present with an explicit ``NULL`` value.  Every
aggregate function treats the two differently, and this file pins the whole
matrix — the same table is mirrored in ``docs/ARCHITECTURE.md``:

===========  ==============  =============  ============  ================  ==============  ================
function     present value   explicit NULL  absent        empty input¹      all-NULL group  all-absent group
===========  ==============  =============  ============  ================  ==============  ================
count()      counts the row  counts the row counts the row  0               group size      group size
count(a)     +1              ignored        ignored         0               0               0
sum(a)       adds            skipped        skipped         output absent    NULL            output absent
min(a)       compares        skipped        skipped         output absent    NULL            output absent
max(a)       compares        skipped        skipped         output absent    NULL            output absent
avg(a)       averages        skipped        skipped         output absent    NULL            output absent
===========  ==============  =============  ============  ================  ==============  ================

¹ a *global* aggregate over an empty input emits one row with the count
outputs (a grouped aggregate over an empty input emits nothing — groups only
exist where rows do).  A group in which ``a`` was present on at least one row
but always NULL yields ``NULL``; a group in which ``a`` was never present
yields no output attribute at all.  Grouping by a variant attribute routes the
rows lacking it into a distinct ⊥ group whose output row omits the attribute.

Every expectation is asserted against the naive evaluator AND both physical
modes (row / vectorized batch), so the matrix is pinned for all three engines
at once.
"""

import pytest

from repro.algebra import Aggregate, EmptyRelation, RelationRef
from repro.algebra.evaluator import Evaluator
from repro.errors import AlgebraError
from repro.exec import PhysicalPlanner
from repro.model.tuples import FlexTuple

#: every aggregate over x, all in one query
ALL_SPECS = ("count", ("count", "x"), ("sum", "x"), ("min", "x"),
             ("max", "x"), ("avg", "x"))


def run_everywhere(expression, source, batch_size=3):
    """The result set, identical across naive, row and batch execution."""
    reference = Evaluator(source).evaluate(expression).tuples
    for vectorize in (False, True):
        plan = PhysicalPlanner(source=source, vectorize=vectorize).plan(expression)
        assert plan.execute(source, batch_size=batch_size).tuples == reference, (
            "engine disagreement in mode {}".format(plan.mode))
    return reference


def raises_everywhere(expression, source, error):
    for thunk in (
        lambda: Evaluator(source).evaluate(expression),
        lambda: PhysicalPlanner(source=source, vectorize=False)
                .plan(expression).execute(source),
        lambda: PhysicalPlanner(source=source, vectorize=True)
                .plan(expression).execute(source),
    ):
        with pytest.raises(error):
            thunk()


@pytest.fixture(scope="module")
def matrix_source():
    """One group per matrix column (ids keep the set members distinct)."""
    rows = {
        # mixed: present ints and floats, one NULL, one absent
        FlexTuple(id=1, g="mixed", x=2),
        FlexTuple(id=2, g="mixed", x=2.5),
        FlexTuple(id=3, g="mixed", x=None),
        FlexTuple(id=4, g="mixed"),
        # all-NULL: x present on every row, never a value
        FlexTuple(id=5, g="nulls", x=None),
        FlexTuple(id=6, g="nulls", x=None),
        # all-absent: x on no row at all
        FlexTuple(id=7, g="absent"),
        FlexTuple(id=8, g="absent"),
        # ⊥ group: no g — routed to the bottom group
        FlexTuple(id=9, x=7),
        FlexTuple(id=10),
    }
    return {"t": rows}


class TestPinnedMatrix:
    def test_grouped_matrix(self, matrix_source):
        result = run_everywhere(
            Aggregate(RelationRef("t"), group_by=("g",), specs=ALL_SPECS),
            matrix_source)
        assert result == {
            FlexTuple(g="mixed", count=4, count_x=2, sum_x=4.5,
                      min_x=2, max_x=2.5, avg_x=2.25),
            FlexTuple(g="nulls", count=2, count_x=0, sum_x=None,
                      min_x=None, max_x=None, avg_x=None),
            FlexTuple(g="absent", count=2, count_x=0),
            # the ⊥ group: output row has no g at all
            FlexTuple(count=2, count_x=1, sum_x=7, min_x=7, max_x=7, avg_x=7.0),
        }

    def test_global_aggregate(self, matrix_source):
        result = run_everywhere(
            Aggregate(RelationRef("t"), specs=ALL_SPECS), matrix_source)
        assert result == {
            FlexTuple(count=10, count_x=3, sum_x=11.5,
                      min_x=2, max_x=7, avg_x=11.5 / 3),
        }

    def test_global_aggregate_over_empty_input(self, matrix_source):
        result = run_everywhere(
            Aggregate(EmptyRelation(), specs=ALL_SPECS), matrix_source)
        assert result == {FlexTuple(count=0, count_x=0)}

    def test_global_non_count_aggregate_over_empty_input_is_empty(self, matrix_source):
        result = run_everywhere(
            Aggregate(EmptyRelation(), specs=(("max", "x"),)), matrix_source)
        assert result == set()

    def test_grouped_aggregate_over_empty_input_is_empty(self, matrix_source):
        result = run_everywhere(
            Aggregate(EmptyRelation(), group_by=("g",), specs=ALL_SPECS),
            matrix_source)
        assert result == set()

    def test_group_key_distinguishes_null_from_absent(self, matrix_source):
        """Grouping BY x: the NULL key and the ⊥ group are distinct groups."""
        result = run_everywhere(
            Aggregate(RelationRef("t"), group_by=("x",), specs=("count",)),
            matrix_source)
        by_key = {}
        for tup in result:
            by_key[tup.get("x", "<absent>")] = tup["count"]
        assert by_key[None] == 3          # ids 3, 5, 6 — x explicitly NULL
        assert by_key["<absent>"] == 4    # ids 4, 7, 8, 10 — x structurally absent
        assert by_key[2] == 1 and by_key[2.5] == 1 and by_key[7] == 1


class TestNumericBehaviour:
    def test_sum_mixes_int_and_float_deterministically(self):
        source = {"t": {FlexTuple(id=i, x=value) for i, value in
                        enumerate([1, 0.5, 2, 0.25])}}
        result = run_everywhere(
            Aggregate(RelationRef("t"), specs=(("sum", "x"), ("avg", "x"))),
            source)
        (row,) = result
        assert row["sum_x"] == 3.75 and row["avg_x"] == 3.75 / 4

    def test_min_max_over_mixed_types_uses_the_total_order(self):
        # numbers order before strings in the cross-type total order
        source = {"t": {FlexTuple(id=1, x="abc"), FlexTuple(id=2, x=3)}}
        (row,) = run_everywhere(
            Aggregate(RelationRef("t"), specs=(("min", "x"), ("max", "x"))),
            source)
        assert row["min_x"] == 3 and row["max_x"] == "abc"

    def test_sum_and_avg_reject_non_numeric_values(self, matrix_source):
        source = {"t": {FlexTuple(id=1, x="abc")}}
        raises_everywhere(Aggregate(RelationRef("t"), specs=(("sum", "x"),)),
                          source, AlgebraError)
        raises_everywhere(Aggregate(RelationRef("t"), specs=(("avg", "x"),)),
                          source, AlgebraError)

    def test_sum_and_avg_reject_booleans(self):
        source = {"t": {FlexTuple(id=1, x=True)}}
        raises_everywhere(Aggregate(RelationRef("t"), specs=(("sum", "x"),)),
                          source, AlgebraError)

    def test_min_max_and_count_accept_any_hashable_value(self):
        source = {"t": {FlexTuple(id=1, x=True), FlexTuple(id=2, x="z")}}
        (row,) = run_everywhere(
            Aggregate(RelationRef("t"),
                      specs=(("count", "x"), ("min", "x"), ("max", "x"))),
            source)
        assert row["count_x"] == 2


class TestSpecValidation:
    def test_output_name_collisions_are_rejected(self):
        with pytest.raises(AlgebraError):
            Aggregate(RelationRef("t"), group_by=("g",),
                      specs=(("count", None, "g"),))
        with pytest.raises(AlgebraError):
            Aggregate(RelationRef("t"),
                      specs=(("min", "x", "m"), ("max", "x", "m")))

    def test_duplicate_group_attributes_are_rejected(self):
        with pytest.raises(AlgebraError):
            Aggregate(RelationRef("t"), group_by=("g", "g"), specs=("count",))

    def test_unknown_function_is_rejected(self):
        with pytest.raises(AlgebraError):
            Aggregate(RelationRef("t"), specs=(("median", "x"),))

    def test_aggregate_needs_groups_or_specs(self):
        with pytest.raises(AlgebraError):
            Aggregate(RelationRef("t"))
