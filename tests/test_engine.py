"""Tests for the storage engine: indexes, catalog, constraints, tables, database."""

import pytest

from repro.algebra import RelationRef, Selection, TypeGuardNode
from repro.algebra.predicates import Comparison
from repro.core.dependencies import ad, ead, fd
from repro.engine import Catalog, ConstraintChecker, Database, HashIndex, Table, TableDefinition
from repro.engine.database import REMOVE
from repro.errors import (
    CatalogError,
    ConstraintViolation,
    DependencyViolation,
    KeyViolation,
    TypeCheckError,
)
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.workloads.employees import employee_definition, generate_employees


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex(["k"])
        t1, t2 = FlexTuple(k=1, v="a"), FlexTuple(k=1, v="b")
        index.add(t1)
        index.add(t2)
        assert index.lookup({"k": 1}) == {t1, t2}
        assert index.lookup({"k": 9}) == set()

    def test_tuples_without_indexed_attributes_are_skipped(self):
        index = HashIndex(["k"])
        index.add(FlexTuple(other=1))
        assert len(index) == 0

    def test_remove(self):
        index = HashIndex(["k"])
        tup = FlexTuple(k=1)
        index.add(tup)
        index.remove(tup)
        assert len(index) == 0 and index.lookup({"k": 1}) == set()

    def test_remove_unindexed_is_noop(self):
        index = HashIndex(["k"])
        index.remove(FlexTuple(other=1))
        assert len(index) == 0

    def test_duplicate_add_counts_once(self):
        index = HashIndex(["k"])
        tup = FlexTuple(k=1)
        index.add(tup)
        index.add(tup)
        assert len(index) == 1

    def test_probe_by_raw_key(self):
        index = HashIndex(["a", "b"])
        tup = FlexTuple(a=1, b=2, c=3)
        index.add(tup)
        assert index.lookup((1, 2)) == {tup}

    def test_probe_missing_attribute_returns_empty(self):
        index = HashIndex(["a", "b"])
        index.add(FlexTuple(a=1, b=2))
        assert index.lookup({"a": 1}) == set()

    def test_groups_and_clear(self):
        index = HashIndex(["k"])
        index.add(FlexTuple(k=1))
        assert len(list(index.groups())) == 1
        index.clear()
        assert len(index) == 0


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        definition = TableDefinition("t", FlexibleScheme.relational(["a"]))
        catalog.register(definition)
        assert catalog.definition("t") is definition
        assert "t" in catalog and len(catalog) == 1

    def test_duplicate_registration_rejected(self):
        catalog = Catalog()
        catalog.register(TableDefinition("t", FlexibleScheme.relational(["a"])))
        with pytest.raises(CatalogError):
            catalog.register(TableDefinition("t", FlexibleScheme.relational(["b"])))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().definition("missing")

    def test_unregister(self):
        catalog = Catalog()
        catalog.register(TableDefinition("t", FlexibleScheme.relational(["a"])))
        catalog.unregister("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.unregister("t")

    def test_definition_validation_domain(self):
        with pytest.raises(CatalogError):
            TableDefinition("t", FlexibleScheme.relational(["a"]), domains={"z": IntDomain()})

    def test_definition_validation_key(self):
        with pytest.raises(CatalogError):
            TableDefinition("t", FlexibleScheme.relational(["a"]), key=["z"])

    def test_definition_validation_dependency(self):
        with pytest.raises(CatalogError):
            TableDefinition("t", FlexibleScheme.relational(["a"]), dependencies=[ad("a", "z")])

    def test_dependencies_listing(self):
        definition = employee_definition()
        catalog = Catalog()
        catalog.register(definition)
        assert len(catalog.dependencies("employees")) == 2


class TestTableDml:
    def test_insert_enforces_scheme(self):
        table = Table(employee_definition())
        with pytest.raises(TypeCheckError):
            table.insert({"emp_id": 1, "name": "x"})

    def test_insert_enforces_domains(self):
        table = Table(employee_definition())
        with pytest.raises(TypeCheckError):
            table.insert({"emp_id": "one", "name": "x", "salary": 1.0, "jobtype": "secretary",
                          "typing_speed": 1, "foreign_languages": "fr"})

    def test_insert_enforces_explicit_ad(self):
        table = Table(employee_definition())
        with pytest.raises(DependencyViolation):
            table.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "salesman",
                          "typing_speed": 1, "foreign_languages": "fr"})

    def test_insert_enforces_key(self):
        table = Table(employee_definition())
        tup = {"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
               "typing_speed": 1, "foreign_languages": "fr"}
        table.insert(tup)
        with pytest.raises(KeyViolation):
            table.insert({**tup, "name": "y"})

    def test_duplicate_identical_tuple_is_idempotent(self):
        table = Table(employee_definition())
        tup = {"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
               "typing_speed": 1, "foreign_languages": "fr"}
        table.insert(tup)
        table.insert(tup)
        assert len(table) == 1

    def test_missing_key_attribute_rejected(self):
        definition = TableDefinition(
            "t", FlexibleScheme(1, 2, ["a", "b"]), key=["a"]
        )
        table = Table(definition)
        with pytest.raises(KeyViolation):
            table.insert({"b": 1})

    def test_pairwise_fd_enforced_incrementally(self):
        definition = TableDefinition(
            "t", FlexibleScheme(2, 3, ["k", "v", "w"]), dependencies=[fd("k", "v")]
        )
        table = Table(definition)
        table.insert({"k": 1, "v": 10})
        with pytest.raises(DependencyViolation):
            table.insert({"k": 1, "v": 20})
        table.insert({"k": 2, "v": 20})

    def test_pairwise_ad_enforced_incrementally(self):
        definition = TableDefinition(
            "t", FlexibleScheme(1, 3, ["k", "v", "w"]), dependencies=[ad("k", ["v", "w"])]
        )
        table = Table(definition)
        table.insert({"k": 1, "v": 10})
        with pytest.raises(DependencyViolation):
            table.insert({"k": 1, "w": 5})
        table.insert({"k": 1, "v": 99})

    def test_delete_unregisters_from_indexes(self):
        definition = TableDefinition(
            "t", FlexibleScheme(1, 2, ["k", "v"]), dependencies=[fd("k", "v")]
        )
        table = Table(definition)
        tup = table.insert({"k": 1, "v": 10})
        assert table.delete(tup)
        table.insert({"k": 1, "v": 20})
        assert len(table) == 1

    def test_delete_missing_returns_false(self):
        table = Table(employee_definition())
        assert not table.delete({"emp_id": 99, "name": "x", "salary": 1.0, "jobtype": "secretary",
                                 "typing_speed": 1, "foreign_languages": "fr"})

    def test_delete_where(self):
        table = Table(employee_definition())
        table.insert_many(generate_employees(20, seed=3))
        removed = table.delete_where(lambda t: t["jobtype"] == "secretary")
        assert removed > 0
        assert all(t["jobtype"] != "secretary" for t in table)

    def test_update_value(self):
        table = Table(employee_definition())
        tup = table.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                            "typing_speed": 1, "foreign_languages": "fr"})
        updated = table.update(tup, salary=2.0)
        assert updated["salary"] == 2.0 and len(table) == 1

    def test_update_jobtype_requires_type_change(self):
        # The paper's footnote: changing the jobtype changes the type, so the update
        # must be rejected unless the variant attributes change too.
        table = Table(employee_definition())
        tup = table.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                            "typing_speed": 1, "foreign_languages": "fr"})
        with pytest.raises(DependencyViolation):
            table.update(tup, jobtype="salesman")
        updated = table.update(tup, jobtype="salesman", typing_speed=REMOVE,
                               foreign_languages=REMOVE, products="dbms", sales_commission=0.1)
        assert updated["jobtype"] == "salesman"

    def test_update_missing_tuple_rejected(self):
        table = Table(employee_definition())
        with pytest.raises(ConstraintViolation):
            table.update({"emp_id": 9, "name": "x", "salary": 1.0, "jobtype": "secretary",
                          "typing_speed": 1, "foreign_languages": "fr"}, salary=2.0)

    def test_update_key_to_existing_value_rejected(self):
        table = Table(employee_definition())
        first = table.insert({"emp_id": 1, "name": "x", "salary": 1.0, "jobtype": "secretary",
                              "typing_speed": 1, "foreign_languages": "fr"})
        table.insert({"emp_id": 2, "name": "y", "salary": 1.0, "jobtype": "secretary",
                      "typing_speed": 2, "foreign_languages": "en"})
        with pytest.raises(KeyViolation):
            table.update(first, emp_id=2)

    def test_unenforced_table_accepts_anything(self):
        table = Table(employee_definition(), enforce=False)
        table.insert({"emp_id": 1, "jobtype": "salesman", "typing_speed": 1})
        assert len(table) == 1

    def test_as_relation_snapshot(self):
        table = Table(employee_definition())
        table.insert_many(generate_employees(5, seed=5))
        relation = table.as_relation()
        assert len(relation) == 5 and relation.name == "employees"

    def test_checker_levels_can_be_disabled(self):
        definition = TableDefinition("t", FlexibleScheme.relational(["a"]),
                                     domains={"a": IntDomain()}, dependencies=[ad("a", "a")])
        checker = ConstraintChecker(definition, check_scheme=False,
                                    check_domains=False, check_dependencies=False)
        checker.check_insert(FlexTuple(unknown=1))

    def test_key_is_enforced_regardless_of_switches(self):
        checker = ConstraintChecker(employee_definition(), check_scheme=False,
                                    check_domains=False, check_dependencies=False)
        with pytest.raises(KeyViolation):
            checker.check_insert(FlexTuple(unknown=1))


class TestDatabase:
    def test_create_and_query(self, employee_database):
        result = employee_database.execute(RelationRef("employees"))
        assert len(result) == 60

    def test_duplicate_table_rejected(self, employee_database):
        with pytest.raises(CatalogError):
            employee_database.create_table("employees", FlexibleScheme.relational(["a"]))

    def test_unknown_table_rejected(self, employee_database):
        with pytest.raises(CatalogError):
            employee_database.table("missing")

    def test_drop_table(self):
        database = Database()
        database.create_table("t", FlexibleScheme.relational(["a"]))
        database.drop_table("t")
        assert database.tables() == []

    def test_insert_via_database(self):
        database = Database()
        database.create_table("t", FlexibleScheme.relational(["a"]))
        database.insert("t", {"a": 1})
        database.insert_many("t", [{"a": 2}, {"a": 3}])
        assert len(database.table("t")) == 3

    def test_dependencies_hook(self, employee_database):
        assert len(employee_database.dependencies("employees")) == 2

    def test_execute_with_report_optimizes(self, employee_database):
        expr = TypeGuardNode(
            Selection(RelationRef("employees"),
                      Comparison("jobtype", "=", "secretary") & Comparison("salary", ">", 0.0)),
            ["typing_speed"],
        )
        optimized_result, report = employee_database.execute_with_report(expr, optimize=True)
        plain_result = employee_database.execute(expr, optimize=False)
        assert report.changed
        assert optimized_result.tuples == plain_result.tuples

    def test_unenforced_database(self):
        database = Database(enforce_constraints=False)
        database.create_table("t", FlexibleScheme.relational(["a"]), dependencies=[ad("a", "a")])
        database.insert("t", {"z": 1})
        assert len(database.table("t")) == 1

    def test_repr_shows_sizes(self, employee_database):
        assert "employees" in repr(employee_database)
