"""Tests for Theorem 4.3: propagation of ADs through algebraic operators.

Each rule is tested twice: once against the syntactic propagation functions and once
empirically — the propagated dependencies must actually hold in the operator's
result computed by the evaluator.
"""

import pytest

from repro.algebra import Evaluator, Extension, Projection, RelationRef, Selection, Union
from repro.algebra.predicates import Comparison
from repro.core.dependencies import ad, ead
from repro.core.inference import discover_ads
from repro.core.propagation import (
    propagate_difference,
    propagate_extension,
    propagate_product,
    propagate_projection,
    propagate_selection,
    propagate_tagged_union,
    propagate_union,
)
from repro.model.attributes import attrset
from repro.model.tuples import FlexTuple
from repro.workloads.generators import instance_for_dependency, random_explicit_ad


@pytest.fixture
def left_dependency():
    return random_explicit_ad(determinant="kind", variant_count=3, attributes_per_variant=2, seed=1)


@pytest.fixture
def left_instance(left_dependency):
    return instance_for_dependency(left_dependency, base_attributes=("id", "common"),
                                   count=80, seed=2)


class TestSyntacticRules:
    def test_product_rule(self):
        left = {ad("A", "B")}
        right = {ad("C", "D")}
        assert propagate_product(left, right) == {ad("A", "B"), ad("C", "D")}

    def test_projection_rule_keeps_only_contained_lhs(self):
        deps = {ad("A", ["B", "C"]), ad("D", "B")}
        projected = propagate_projection(deps, ["A", "B"])
        assert projected == {ad("A", "B")}

    def test_projection_rule_intersects_rhs(self):
        assert propagate_projection({ad("A", ["B", "C"])}, ["A", "C"]) == {ad("A", "C")}

    def test_selection_rule_is_identity(self):
        deps = {ad("A", "B"), ad(["A", "C"], "D")}
        assert propagate_selection(deps) == deps

    def test_union_rule_is_empty(self):
        assert propagate_union({ad("A", "B")}, {ad("A", "B")}) == set()

    def test_difference_rule_keeps_left(self):
        assert propagate_difference({ad("A", "B")}, {ad("C", "D")}) == {ad("A", "B")}

    def test_extension_rule_is_identity(self):
        assert propagate_extension({ad("A", "B")}, ["tag"]) == {ad("A", "B")}

    def test_tagged_union_rule_augments_lhs(self):
        result = propagate_tagged_union({ad("A", "B")}, {ad("C", "D")}, "tag")
        assert result == {ad(["tag", "A"], "B"), ad(["tag", "C"], "D")}

    def test_explicit_ads_are_weakened_to_ads(self, jobtype_ead):
        assert propagate_selection([jobtype_ead]) == {jobtype_ead.to_ad()}


def _holds_in(tuples, dependency):
    return dependency.holds_in(list(tuples))


class TestEmpiricalValidation:
    """The propagated dependencies hold in the actual operator results."""

    def test_selection_preserves_dependencies(self, left_dependency, left_instance):
        abbreviated = left_dependency.to_ad()
        survivors = [t for t in left_instance if t["id"] % 2 == 0]
        for dependency in propagate_selection([abbreviated]):
            assert _holds_in(survivors, dependency)

    def test_projection_result_satisfies_propagated(self, left_dependency, left_instance):
        keep = attrset(["kind"]) | left_dependency.rhs
        projected_tuples = [t.project_existing(keep) for t in left_instance]
        for dependency in propagate_projection([left_dependency.to_ad()], keep):
            assert _holds_in(projected_tuples, dependency)

    def test_projection_losing_lhs_really_breaks_the_dependency(self):
        # Projecting the determinant away: the propagation rule keeps nothing, and
        # indeed another retained attribute generally does not determine the variant.
        tuples = [FlexTuple(kind=1, region="north", a=1),
                  FlexTuple(kind=2, region="north", b=2)]
        dependency = ad(["kind"], ["a", "b"])
        assert _holds_in(tuples, dependency)
        keep = attrset(["region", "a", "b"])
        projected = [t.project_existing(keep) for t in tuples]
        assert propagate_projection([dependency], keep) == set()
        assert not _holds_in(projected, ad(["region"], ["a", "b"]))

    def test_product_result_satisfies_both(self, left_dependency, left_instance):
        right_dependency = random_explicit_ad(determinant="rkind", variant_count=2,
                                              attributes_per_variant=1, seed=9, prefix="w")
        right_instance = instance_for_dependency(right_dependency, base_attributes=("rid",),
                                                 count=10, seed=5)
        product = [l.merge(r) for l in left_instance[:20] for r in right_instance]
        for dependency in propagate_product([left_dependency.to_ad()], [right_dependency.to_ad()]):
            assert _holds_in(product, dependency)

    def test_untagged_union_can_break_every_dependency(self):
        # Same determinant value, different variant shapes in the two inputs.
        left = [FlexTuple(kind=1, a=1)]
        right = [FlexTuple(kind=1, b=2)]
        dependency = ad("kind", ["a", "b"])
        assert _holds_in(left, dependency) and _holds_in(right, dependency)
        assert not _holds_in(left + right, dependency)
        assert propagate_union([dependency], [dependency]) == set()

    def test_tagged_union_restores_dependencies(self):
        left = [FlexTuple(kind=1, a=1), FlexTuple(kind=2)]
        right = [FlexTuple(kind=1, b=2), FlexTuple(kind=2, b=1)]
        dependency = ad("kind", ["a", "b"])
        tagged_left = [t.extend(tag="left") for t in left]
        tagged_right = [t.extend(tag="right") for t in right]
        union = tagged_left + tagged_right
        for propagated in propagate_tagged_union([dependency], [dependency], "tag"):
            assert _holds_in(union, propagated)

    def test_difference_preserves_left_dependencies(self, left_dependency, left_instance):
        removed = set(left_instance[:30])
        remaining = [t for t in left_instance if t not in removed]
        for dependency in propagate_difference([left_dependency.to_ad()], []):
            assert _holds_in(remaining, dependency)

    def test_propagated_set_is_sound_via_discovery(self, left_dependency, left_instance):
        # Discovery on the projected instance finds at least the propagated ADs.
        keep = attrset(["kind"]) | left_dependency.rhs
        projected = [t.project_existing(keep) for t in left_instance]
        discovered = discover_ads(projected, max_lhs=1)
        propagated = propagate_projection([left_dependency.to_ad()], keep)
        for dependency in propagated:
            assert any(
                dependency.lhs == found.lhs and dependency.rhs.issubset(found.rhs | dependency.lhs)
                for found in discovered
            )


class TestExpressionLevelPropagation:
    """The same rules exposed through Expression.known_dependencies."""

    def test_selection_node(self, employee_database, jobtype_ead):
        expr = Selection(RelationRef("employees"), Comparison("salary", ">", 0))
        assert jobtype_ead in expr.known_dependencies(employee_database)

    def test_projection_node_drops_lost_determinants(self, employee_database):
        expr = Projection(RelationRef("employees"), ["salary", "typing_speed"])
        assert expr.known_dependencies(employee_database) == set()

    def test_projection_node_projects_rhs(self, employee_database, jobtype_ead):
        expr = Projection(RelationRef("employees"), ["jobtype", "typing_speed"])
        deps = expr.known_dependencies(employee_database)
        assert any(d.lhs == attrset(["jobtype"]) and d.rhs == attrset(["typing_speed"])
                   for d in deps)

    def test_union_node_loses_everything(self, employee_database):
        expr = Union(RelationRef("employees"), RelationRef("employees"))
        assert expr.known_dependencies(employee_database) == set()

    def test_tagged_union_node_keeps_augmented(self, employee_database):
        expr = Union(Extension(RelationRef("employees"), "tag", 1),
                     Extension(RelationRef("employees"), "tag", 2))
        deps = expr.known_dependencies(employee_database)
        assert any("tag" in d.lhs and "jobtype" in d.lhs for d in deps)

    def test_evaluated_results_satisfy_known_dependencies(self, employee_database):
        expressions = [
            Selection(RelationRef("employees"), Comparison("jobtype", "=", "secretary")),
            Projection(RelationRef("employees"), ["jobtype", "typing_speed", "products"]),
            Extension(RelationRef("employees"), "tag", 1),
        ]
        evaluator = Evaluator(employee_database)
        for expression in expressions:
            result = evaluator.evaluate(expression)
            for dependency in expression.known_dependencies(employee_database):
                assert dependency.holds_in(result.tuples)
