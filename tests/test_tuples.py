"""Tests for heterogeneous tuples."""

import pytest

from repro.errors import TupleError
from repro.model.attributes import attrset
from repro.model.tuples import FlexTuple


class TestConstruction:
    def test_from_kwargs(self):
        t = FlexTuple(jobtype="secretary", salary=4000.0)
        assert t["jobtype"] == "secretary" and t["salary"] == 4000.0

    def test_from_mapping(self):
        t = FlexTuple({"a": 1, "b": 2})
        assert t["a"] == 1 and t["b"] == 2

    def test_mixed_construction(self):
        t = FlexTuple({"a": 1}, b=2)
        assert t["a"] == 1 and t["b"] == 2

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(TupleError):
            FlexTuple({"a": 1}, a=2)

    def test_empty_tuple(self):
        t = FlexTuple()
        assert len(t) == 0 and not list(t)


class TestPaperInterface:
    def test_attr_t(self):
        t = FlexTuple(a=1, b=2)
        assert t.attributes == attrset(["a", "b"])

    def test_is_defined_on(self):
        t = FlexTuple(a=1, b=2)
        assert t.is_defined_on(["a"]) and t.is_defined_on(["a", "b"])
        assert not t.is_defined_on(["a", "c"])

    def test_projection(self):
        t = FlexTuple(a=1, b=2, c=3)
        assert t.project(["a", "b"]) == FlexTuple(a=1, b=2)

    def test_projection_requires_presence(self):
        with pytest.raises(TupleError):
            FlexTuple(a=1).project(["a", "z"])

    def test_project_existing(self):
        t = FlexTuple(a=1, b=2)
        assert t.project_existing(["a", "z"]) == FlexTuple(a=1)

    def test_agrees_with(self):
        t1 = FlexTuple(a=1, b=2)
        t2 = FlexTuple(a=1, c=3)
        assert t1.agrees_with(t2, ["a"])
        assert not t1.agrees_with(t2, ["b"])  # t2 lacks b
        assert not t1.agrees_with(FlexTuple(a=9), ["a"])

    def test_missing_attribute_access_raises(self):
        with pytest.raises(TupleError):
            FlexTuple(a=1)["z"]

    def test_get_with_default(self):
        assert FlexTuple(a=1).get("z", 42) == 42


class TestDerivation:
    def test_extend(self):
        t = FlexTuple(a=1).extend(b=2)
        assert t == FlexTuple(a=1, b=2)

    def test_extend_existing_attribute_rejected(self):
        with pytest.raises(TupleError):
            FlexTuple(a=1).extend(a=2)

    def test_replace(self):
        assert FlexTuple(a=1).replace(a=2) == FlexTuple(a=2)

    def test_replace_missing_attribute_rejected(self):
        with pytest.raises(TupleError):
            FlexTuple(a=1).replace(b=2)

    def test_remove(self):
        assert FlexTuple(a=1, b=2).remove(["b"]) == FlexTuple(a=1)

    def test_merge_disjoint(self):
        assert FlexTuple(a=1).merge(FlexTuple(b=2)) == FlexTuple(a=1, b=2)

    def test_merge_agreeing_overlap(self):
        assert FlexTuple(a=1, b=2).merge(FlexTuple(b=2, c=3)) == FlexTuple(a=1, b=2, c=3)

    def test_merge_conflicting_overlap_rejected(self):
        with pytest.raises(TupleError):
            FlexTuple(a=1).merge(FlexTuple(a=2))

    def test_original_is_untouched(self):
        t = FlexTuple(a=1)
        t.extend(b=2)
        assert t == FlexTuple(a=1)


class TestEqualityAndHashing:
    def test_equality_is_structural(self):
        assert FlexTuple(a=1, b=2) == FlexTuple(b=2, a=1)

    def test_equality_with_mapping(self):
        assert FlexTuple(a=1) == {"a": 1}

    def test_inequality_on_values(self):
        assert FlexTuple(a=1) != FlexTuple(a=2)

    def test_inequality_on_attributes(self):
        assert FlexTuple(a=1) != FlexTuple(a=1, b=2)

    def test_usable_in_sets(self):
        assert len({FlexTuple(a=1), FlexTuple(a=1), FlexTuple(a=2)}) == 2

    def test_items_sorted(self):
        assert [name for name, _ in FlexTuple(b=2, a=1).items()] == ["a", "b"]

    def test_as_dict_roundtrip(self):
        original = {"a": 1, "b": "x"}
        assert FlexTuple(original).as_dict() == original

    def test_contains(self):
        assert "a" in FlexTuple(a=1) and "z" not in FlexTuple(a=1)
