"""Cancellation chaos sweep: every operator boundary, every invariant.

The execution-path sibling of ``test_durability.py``'s crash harness:
:func:`repro.governor.chaos.cancel_at_every_boundary` replays each corpus
expression with the chaos hook arming every cancellation boundary in turn
and asserts the sweep invariants (cancel raised, no leaked WAL transaction,
unchanged feedback store, exactly-once counting, no spill debris, clean
re-execution reproduces the baseline).  This module drives that harness
over both engines, over a durable database, and over a spill-forcing
budgeted database.
"""

import pytest

from repro.algebra import (
    Aggregate,
    NaturalJoin,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
)
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.governor.chaos import ChaosError, cancel_at_every_boundary
from repro.workloads.analytics import (
    analytics_database,
    generate_orders,
    orders_domains,
    orders_scheme,
)

MODES = ("row", "batch")


def chaos_corpus():
    """Three shapes that cover the pipeline/blocking/join boundary mix."""
    orders = RelationRef("orders")
    return [
        Aggregate(orders, group_by=("region",),
                  specs=(("sum", "amount"), "count")),
        Sort(Selection(orders, Comparison("amount", ">", 40)),
             keys=("amount", "order_id")),
        NaturalJoin(
            orders,
            Rename(Projection(orders, ["order_id", "region"]),
                   {"region": "r2"}),
            on=["order_id"]),
    ]


@pytest.fixture(scope="module")
def chaos_database():
    return analytics_database(count=500, seed=3)


class TestCancelSweep:
    @pytest.mark.parametrize("mode", MODES)
    def test_every_boundary_cancels_cleanly(self, chaos_database, mode):
        summary = cancel_at_every_boundary(
            chaos_database, chaos_corpus(), mode=mode, batch_size=64)
        assert summary["expressions"] == 3
        assert summary["injections"] >= summary["expressions"]

    def test_stride_thins_the_sweep(self, chaos_database):
        full = cancel_at_every_boundary(
            chaos_database, chaos_corpus()[:1], mode="row")
        thinned = cancel_at_every_boundary(
            chaos_database, chaos_corpus()[:1], mode="row", stride=4)
        assert thinned["boundaries"] == full["boundaries"]
        assert thinned["injections"] < full["injections"]

    def test_stride_must_be_positive(self, chaos_database):
        with pytest.raises(ValueError):
            cancel_at_every_boundary(chaos_database, chaos_corpus()[:1],
                                     stride=0)

    def test_naive_mode_has_no_boundaries(self, chaos_database):
        # the naive evaluator is ungoverned by design: asking the harness to
        # sweep it must fail loudly, not silently report zero coverage
        from repro.errors import CatalogError

        with pytest.raises((ChaosError, CatalogError)):
            cancel_at_every_boundary(chaos_database, chaos_corpus()[:1],
                                     mode="naive")


class TestDurableSweep:
    def test_sweep_leaves_no_open_transaction(self, tmp_path):
        database = Database(durable_path=str(tmp_path / "wal"))
        database.create_table("orders", orders_scheme(),
                              domains=orders_domains())
        with database.transaction():
            database.table("orders").insert_many(
                generate_orders(200, seed=21))
        summary = cancel_at_every_boundary(
            database, chaos_corpus()[:2], mode="row")
        assert summary["injections"] > 0
        assert not database.durability.in_transaction
        database.close()

    def test_budgeted_sweep_leaves_no_spill_debris(self, tmp_path):
        spill_root = tmp_path / "spill"
        spill_root.mkdir()
        database = Database(memory_budget=15_000,
                            spill_directory=str(spill_root))
        database.create_table("orders", orders_scheme(),
                              domains=orders_domains())
        database.table("orders").insert_many(generate_orders(800, seed=9))
        expression = Aggregate(
            RelationRef("orders"), group_by=("order_id",),
            specs=(("sum", "amount"), "count", ("min", "amount")))
        # sanity: this shape really spills under the database-wide budget
        database.execute(expression, mode="row")
        assert database.metrics_registry.counter("spill.segments").value > 0
        summary = cancel_at_every_boundary(
            database, [expression], mode="row",
            spill_root=str(spill_root))
        assert summary["injections"] > 0
        assert not list(spill_root.iterdir())
