"""Tests for JSON serialization of schemes, domains, dependencies and databases."""

import io
import json

import pytest

from repro.core.dependencies import ad, ead, fd
from repro.engine import Database, dump_database, dumps_database, load_database, loads_database
from repro.engine.serialization import (
    SerializationError,
    database_from_dict,
    database_to_dict,
    dependency_from_dict,
    dependency_to_dict,
    domain_from_dict,
    domain_to_dict,
    scheme_from_dict,
    scheme_to_dict,
)
from repro.errors import DependencyViolation
from repro.model.domains import (
    AnyDomain,
    BoolDomain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    RangeDomain,
    StringDomain,
)
from repro.model.scheme import FlexibleScheme, UnfoldedScheme
from repro.model.attributes import attrset
from repro.workloads.employees import employee_definition, generate_employees


class TestSchemeRoundTrip:
    def test_relational_scheme(self):
        scheme = FlexibleScheme.relational(["a", "b"])
        assert scheme_from_dict(scheme_to_dict(scheme)) == scheme

    def test_nested_scheme(self, example1_scheme):
        restored = scheme_from_dict(scheme_to_dict(example1_scheme))
        assert restored == example1_scheme
        assert restored.dnf() == example1_scheme.dnf()

    def test_unfolded_scheme(self):
        scheme = UnfoldedScheme({frozenset(attrset(["a", "b"]).as_frozenset()),
                                 frozenset(attrset(["a", "c"]).as_frozenset())})
        restored = scheme_from_dict(scheme_to_dict(scheme))
        assert restored.dnf() == scheme.dnf()

    def test_document_is_json_serializable(self, example1_scheme):
        json.dumps(scheme_to_dict(example1_scheme))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            scheme_from_dict({"kind": "mystery"})


class TestDomainRoundTrip:
    @pytest.mark.parametrize("domain", [
        AnyDomain(), IntDomain(), FloatDomain(), BoolDomain(),
        StringDomain(), StringDomain(max_length=12),
        EnumDomain(["a", "b", "c"], name="letters"),
        RangeDomain(0, 10, integral=True),
    ])
    def test_round_trip_preserves_membership(self, domain):
        restored = domain_from_dict(domain_to_dict(domain))
        probes = [0, 5, 10, 11, -1, "a", "zz", "x" * 20, True, 3.5]
        for probe in probes:
            assert domain.contains(probe) == restored.contains(probe)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            domain_from_dict({"kind": "mystery"})


class TestDependencyRoundTrip:
    def test_ad(self):
        dependency = ad(["a", "b"], ["c"])
        assert dependency_from_dict(dependency_to_dict(dependency)) == dependency

    def test_fd(self):
        dependency = fd(["a"], ["b", "c"])
        assert dependency_from_dict(dependency_to_dict(dependency)) == dependency

    def test_explicit_ad(self, jobtype_ead):
        restored = dependency_from_dict(dependency_to_dict(jobtype_ead))
        assert restored == jobtype_ead
        assert {v.name for v in restored.variants} == {v.name for v in jobtype_ead.variants}

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            dependency_from_dict({"kind": "mystery"})


class TestDatabaseRoundTrip:
    def _loaded_database(self):
        database = Database()
        definition = employee_definition()
        table = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
        table.insert_many(generate_employees(30, seed=61))
        return database

    def test_round_trip_preserves_tuples(self):
        database = self._loaded_database()
        restored = loads_database(dumps_database(database))
        assert restored.table("employees").tuples == database.table("employees").tuples

    def test_round_trip_preserves_constraints(self):
        database = self._loaded_database()
        restored = loads_database(dumps_database(database))
        with pytest.raises(DependencyViolation):
            restored.insert("employees", {"emp_id": 9999, "name": "x", "salary": 1.0,
                                          "jobtype": "salesman", "typing_speed": 1,
                                          "foreign_languages": "fr"})

    def test_round_trip_preserves_catalog_metadata(self):
        database = self._loaded_database()
        restored = loads_database(dumps_database(database))
        original = database.catalog.definition("employees")
        rebuilt = restored.catalog.definition("employees")
        assert rebuilt.key == original.key
        assert rebuilt.scheme == original.scheme
        assert len(rebuilt.dependencies) == len(original.dependencies)

    def test_file_round_trip(self, tmp_path):
        database = self._loaded_database()
        path = tmp_path / "db.json"
        with open(path, "w") as handle:
            dump_database(database, handle)
        with open(path) as handle:
            restored = load_database(handle)
        assert restored.table("employees").tuples == database.table("employees").tuples

    def test_schema_only_dump(self):
        database = self._loaded_database()
        document = database_to_dict(database, include_data=False)
        assert "tuples" not in document["tables"][0]
        restored = database_from_dict(document)
        assert len(restored.table("employees")) == 0

    def test_unsupported_version_rejected(self):
        with pytest.raises(SerializationError):
            database_from_dict({"format_version": 999, "tables": []})

    def test_dump_is_deterministic(self):
        database = self._loaded_database()
        assert dumps_database(database) == dumps_database(database)


class TestMalformedDocuments:
    """Malformed input raises SerializationError naming the offending path."""

    def _document(self):
        database = Database()
        definition = employee_definition()
        table = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
        table.insert_many(generate_employees(3, seed=4))
        return database_to_dict(database)

    def test_version_message_names_supported_version(self):
        with pytest.raises(SerializationError, match="this build reads version 1"):
            database_from_dict({"format_version": 999, "tables": []})

    def test_top_level_must_be_an_object(self):
        with pytest.raises(SerializationError, match="expected an object"):
            database_from_dict([1, 2, 3])

    def test_missing_table_name_names_the_path(self):
        document = self._document()
        del document["tables"][0]["name"]
        with pytest.raises(SerializationError, match=r"tables\[0\]"):
            database_from_dict(document)

    def test_malformed_scheme_names_the_path(self):
        document = self._document()
        document["tables"][0]["scheme"] = {"kind": "scheme", "at_least": 1,
                                           "at_most": 2, "components": "oops"}
        with pytest.raises(SerializationError, match=r"tables\[0\].scheme.components"):
            database_from_dict(document)

    def test_malformed_domain_names_the_attribute(self):
        document = self._document()
        document["tables"][0]["domains"]["salary"] = {"kind": "range", "low": 0}
        with pytest.raises(SerializationError, match=r"domains\['salary'\]"):
            database_from_dict(document)

    def test_malformed_dependency_names_the_index(self):
        document = self._document()
        document["tables"][0]["dependencies"][0] = {"kind": "fd", "lhs": ["a"]}
        with pytest.raises(SerializationError, match=r"dependencies\[0\]"):
            database_from_dict(document)

    def test_non_list_tuples_rejected(self):
        document = self._document()
        document["tables"][0]["tuples"] = {"not": "a list"}
        with pytest.raises(SerializationError, match=r"tables\[0\].tuples"):
            database_from_dict(document)

    def test_non_object_tuple_names_its_index(self):
        document = self._document()
        document["tables"][0]["tuples"].insert(1, "oops")
        with pytest.raises(SerializationError, match=r"tuples\[1\]"):
            database_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        from repro.engine.serialization import load_json_file
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_json_file(str(path))

    def test_load_database_wraps_decode_errors(self):
        with pytest.raises(SerializationError, match="not valid JSON"):
            loads_database("{broken")


class TestAtomicDump:
    def _loaded_database(self):
        database = Database()
        definition = employee_definition()
        table = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
        table.insert_many(generate_employees(5, seed=9))
        return database

    def test_dump_and_load_accept_paths(self, tmp_path):
        database = self._loaded_database()
        path = tmp_path / "db.json"
        dump_database(database, path)
        restored = load_database(path)
        assert restored.table("employees").tuples == database.table("employees").tuples

    def test_dump_replaces_atomically(self, tmp_path):
        database = self._loaded_database()
        path = tmp_path / "db.json"
        path.write_text("previous contents")
        dump_database(database, str(path))
        assert json.loads(path.read_text())["format_version"] == 1
        # no temp-file debris left behind
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]

    def test_failed_dump_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("precious")
        from repro.engine.serialization import atomic_write_json
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]
