"""Tests for the enhanced-ER layer: model, mapping onto flexible relations, decomposition."""

import pytest

from repro.baselines import NullPaddedTable
from repro.engine import Database, Table
from repro.er import (
    EntityType,
    Specialization,
    SpecializationSubclass,
    horizontal_decomposition,
    null_count,
    specialization_to_dependency,
    specialization_to_flexible_relation,
    vertical_decomposition,
)
from repro.errors import DecompositionError, ReproError
from repro.model.attributes import attrset
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.model.tuples import FlexTuple
from repro.workloads.employees import (
    employee_definition,
    employee_dependency,
    employee_scheme,
    generate_employees,
)


@pytest.fixture
def employee_specialization():
    entity = EntityType(
        "employee",
        {
            "emp_id": IntDomain(),
            "name": StringDomain(),
            "salary": FloatDomain(),
            "jobtype": EnumDomain(["secretary", "software engineer", "salesman"]),
        },
        key=["emp_id"],
    )
    return Specialization(
        entity,
        ["jobtype"],
        [
            SpecializationSubclass("secretary", {"jobtype": "secretary"},
                                   {"typing_speed": IntDomain(), "foreign_languages": StringDomain()}),
            SpecializationSubclass("software engineer", {"jobtype": "software engineer"},
                                   {"products": StringDomain(), "programming_languages": StringDomain()}),
            SpecializationSubclass("salesman", {"jobtype": "salesman"},
                                   {"products": StringDomain(), "sales_commission": FloatDomain()}),
        ],
    )


class TestErModel:
    def test_entity_validation(self):
        with pytest.raises(ReproError):
            EntityType("", {"a": IntDomain()})
        with pytest.raises(ReproError):
            EntityType("e", {})
        with pytest.raises(ReproError):
            EntityType("e", {"a": IntDomain()}, key=["z"])

    def test_subclass_validation(self):
        with pytest.raises(ReproError):
            SpecializationSubclass("", {"k": 1}, {})
        with pytest.raises(ReproError):
            SpecializationSubclass("s", [], {})

    def test_specialization_validation(self, employee_specialization):
        entity = employee_specialization.entity
        with pytest.raises(ReproError):
            Specialization(entity, ["unknown"], employee_specialization.subclasses)
        with pytest.raises(ReproError):
            Specialization(entity, ["jobtype"], [
                SpecializationSubclass("bad", {"wrong_attribute": 1}, {"x": IntDomain()})
            ])
        with pytest.raises(ReproError):
            Specialization(entity, ["jobtype"], [
                SpecializationSubclass("bad", {"jobtype": "secretary"}, {"salary": FloatDomain()})
            ])

    def test_classification(self, employee_specialization):
        assert not employee_specialization.is_disjoint()   # products is shared
        assert employee_specialization.is_total()          # all three jobtypes covered
        assert employee_specialization.variant_attributes == attrset(
            ["typing_speed", "foreign_languages", "products",
             "programming_languages", "sales_commission"]
        )

    def test_partial_specialization(self):
        entity = EntityType("person", {"id": IntDomain(), "kind": EnumDomain(["a", "b"])})
        specialization = Specialization(entity, ["kind"], [
            SpecializationSubclass("only_a", {"kind": "a"}, {"extra": IntDomain()})
        ])
        assert not specialization.is_total()
        assert specialization.is_disjoint()


class TestMapping:
    def test_dependency_is_one_to_one(self, employee_specialization, jobtype_ead):
        dependency = specialization_to_dependency(employee_specialization)
        assert dependency.lhs == jobtype_ead.lhs
        assert dependency.rhs == jobtype_ead.rhs
        assert {v.name for v in dependency.variants} == {v.name for v in jobtype_ead.variants}

    def test_scheme_admits_every_subclass_shape(self, employee_specialization):
        mapping = specialization_to_flexible_relation(employee_specialization)
        for subclass in employee_specialization.subclasses:
            combo = employee_specialization.entity.attributes | subclass.local_attributes
            assert mapping.scheme.admits(combo)

    def test_create_table_round_trip(self, employee_specialization):
        mapping = specialization_to_flexible_relation(employee_specialization)
        database = Database()
        table = mapping.create_table(database)
        for tuple_values in generate_employees(30, seed=21):
            table.insert(tuple_values)
        assert len(table) == 30
        with pytest.raises(Exception):
            table.insert({"emp_id": 999, "name": "x", "salary": 1.0, "jobtype": "salesman",
                          "typing_speed": 1, "foreign_languages": "fr"})

    def test_subtype_family_from_mapping(self, employee_specialization):
        family = specialization_to_flexible_relation(employee_specialization).subtype_family()
        assert set(family.subtype_names()) == {"secretary", "software engineer", "salesman"}
        assert family.supertype.name == "employee"


class TestDecomposition:
    @pytest.fixture
    def loaded_table(self):
        table = Table(employee_definition())
        table.insert_many(generate_employees(50, seed=17))
        return table

    def test_horizontal_fragments_and_restoration(self, loaded_table, jobtype_ead):
        decomposition = horizontal_decomposition(loaded_table, jobtype_ead)
        assert set(decomposition.fragment_names()) <= {"secretary", "software engineer",
                                                       "salesman", "rest"}
        assert decomposition.total_tuples() == len(loaded_table)
        assert decomposition.is_lossless(loaded_table)

    def test_horizontal_qualifications(self, loaded_table, jobtype_ead):
        decomposition = horizontal_decomposition(loaded_table, jobtype_ead)
        assert decomposition.qualifications["secretary"] == [{"jobtype": "secretary"}]

    def test_horizontal_rest_fragment(self, jobtype_ead):
        tuples = [FlexTuple(emp_id=1, name="x", salary=1.0, jobtype="secretary",
                            typing_speed=1, foreign_languages="fr"),
                  FlexTuple(emp_id=2, name="y", salary=1.0)]
        decomposition = horizontal_decomposition(tuples, jobtype_ead)
        assert "rest" in decomposition.fragment_names()
        assert decomposition.is_lossless(tuples)

    def test_vertical_fragments_and_restoration(self, loaded_table, jobtype_ead):
        decomposition = vertical_decomposition(loaded_table, jobtype_ead, key=["emp_id"])
        assert "master" in decomposition.fragment_names()
        assert decomposition.is_lossless(loaded_table)

    def test_vertical_master_has_no_variant_attributes(self, loaded_table, jobtype_ead):
        decomposition = vertical_decomposition(loaded_table, jobtype_ead, key=["emp_id"])
        for tup in decomposition.fragment("master"):
            assert tup.attributes.isdisjoint(jobtype_ead.rhs)

    def test_vertical_requires_key(self, loaded_table, jobtype_ead):
        with pytest.raises(DecompositionError):
            vertical_decomposition(loaded_table, jobtype_ead, key=[])
        with pytest.raises(DecompositionError):
            vertical_decomposition(loaded_table, jobtype_ead, key=["typing_speed"])

    def test_vertical_requires_key_presence(self, jobtype_ead):
        tuples = [FlexTuple(name="x", salary=1.0, jobtype="secretary",
                            typing_speed=1, foreign_languages="fr")]
        with pytest.raises(DecompositionError):
            vertical_decomposition(tuples, jobtype_ead, key=["emp_id"])

    def test_unknown_fragment_rejected(self, loaded_table, jobtype_ead):
        decomposition = horizontal_decomposition(loaded_table, jobtype_ead)
        with pytest.raises(DecompositionError):
            decomposition.fragment("pilot")

    def test_cell_counts_are_smaller_than_flat_table(self, loaded_table, jobtype_ead):
        decomposition = horizontal_decomposition(loaded_table, jobtype_ead)
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        assert decomposition.total_cells() < flat.stored_cells()

    def test_null_count_matches_flat_baseline(self, loaded_table, jobtype_ead):
        flat = NullPaddedTable(employee_scheme().attributes, jobtype_ead)
        flat.insert_many(loaded_table.tuples)
        assert null_count(loaded_table, employee_scheme().attributes) == flat.null_cells()
