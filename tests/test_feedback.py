"""PR 7: the actionable observability layer — feedback, watchdog, memory, export.

Covers the cardinality-feedback store's lifecycle (recording thresholds, LRU
bounds, DML/ANALYZE invalidation, non-persistence), the feedback-driven
re-planning arc on the stale-statistics star workload (including row/batch
parity of the corrected plan), the plan-regression watchdog, per-operator
memory accounting in ``explain_analyze``, and the Prometheus / JSON exporters
(round-trip parsed, families verified).
"""

import json

import pytest

from repro.algebra.expressions import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.engine.serialization import dumps_database, loads_database
from repro.obs.export import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    dumps_snapshot,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.feedback import (
    QERROR_THRESHOLD,
    CardinalityFeedback,
    attribute_carriers,
    expression_key,
    referenced_tables,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.profiler import MIN_BASELINE_SAMPLES, PlanWatchdog
from repro.workloads.star import star_join_database, star_join_query


@pytest.fixture()
def stale_star():
    """An analyzed small star database whose ``dim_rare`` statistics are stale."""
    database = star_join_database(fact_rows=600)
    database.analyze()
    database.table("dim_rare").insert({"dr": 1001, "kind": "common"})
    return database


def rare_selection():
    return Selection(RelationRef("dim_rare"), Comparison("kind", "=", "rare"))


class TestFingerprints:
    def test_referenced_tables_walks_the_tree(self):
        query = star_join_query()
        assert referenced_tables(query) == frozenset(
            {"fact", "dim_small", "dim_a", "dim_b", "dim_c", "dim_rare"})

    def test_expression_key_is_structural(self):
        assert expression_key(rare_selection()) == expression_key(rare_selection())
        other = Selection(RelationRef("dim_rare"),
                          Comparison("kind", "=", "common"))
        assert expression_key(rare_selection()) != expression_key(other)

    def test_attribute_carriers_filters_by_scheme(self, stale_star):
        tables = {"fact", "dim_small", "dim_rare"}
        assert attribute_carriers(stale_star, tables, "dr") == frozenset(
            {"fact", "dim_rare"})
        assert attribute_carriers(stale_star, tables, "ds") == frozenset(
            {"fact", "dim_small"})
        assert attribute_carriers(stale_star, {"nonexistent"}, "dr") == frozenset()


class TestCardinalityFeedbackStore:
    def test_record_and_lookup_bump_version_once(self):
        store = CardinalityFeedback()
        fingerprint = expression_key(rare_selection())
        assert store.record(fingerprint, 3, {"dim_rare"}, 50) is True
        version = store.version
        # An identical re-observation refreshes recency without churn.
        assert store.record(fingerprint, 3, {"dim_rare"}, 50) is False
        assert store.version == version
        assert store.lookup(fingerprint, 3) == 50
        # A different statistics version is a different regime: no answer.
        assert store.lookup(fingerprint, 4) is None

    def test_changed_observation_bumps_version(self):
        store = CardinalityFeedback()
        store.record(("select", "x"), 1, {"t"}, 10)
        version = store.version
        store.record(("select", "x"), 1, {"t"}, 99)
        assert store.version > version
        assert store.lookup(("select", "x"), 1) == 99

    def test_lru_eviction_is_bounded(self):
        store = CardinalityFeedback(capacity=3)
        for index in range(5):
            store.record(("select", index), 1, {"t{}".format(index)}, index)
        assert len(store._entries) == 3
        assert store.evictions == 2
        # The oldest entries fell out; the newest survive.
        assert store.lookup(("select", 0), 1) is None
        assert store.lookup(("select", 4), 1) == 4
        # Evicted entries released their table refcounts.
        assert "t0" not in store._table_counts and "t4" in store._table_counts

    def test_invalidate_table_drops_entries_and_edges(self):
        store = CardinalityFeedback()
        store.record(("select", "a"), 1, {"events", "sessions"}, 10)
        store.record(("select", "b"), 1, {"users"}, 20)
        store.record_edge("event_id", {"events", "sessions"}, 1, 0.001)
        version = store.version
        dropped = store.invalidate_table("events")
        assert dropped == 2
        assert store.version == version + 1
        assert store.invalidations == 2
        assert store.lookup(("select", "b"), 1) == 20
        assert store.lookup_edge("event_id", {"events", "sessions"}, 1) is None

    def test_invalidate_unknown_table_is_a_noop(self):
        store = CardinalityFeedback()
        store.record(("select", "a"), 1, {"events"}, 10)
        version = store.version
        assert store.invalidate_table("never_observed") == 0
        assert store.version == version

    def test_edge_tolerance_absorbs_jitter(self):
        store = CardinalityFeedback()
        assert store.record_edge("dr", {"fact", "dim_rare"}, 1, 0.0010) is True
        version = store.version
        # Within 5% relative: recency refresh only.
        assert store.record_edge("dr", {"fact", "dim_rare"}, 1, 0.00102) is False
        assert store.version == version
        # A real shift re-records and re-plans.
        assert store.record_edge("dr", {"fact", "dim_rare"}, 1, 0.002) is True
        assert store.version > version
        assert store.lookup_edge("dr", {"fact", "dim_rare"}, 1) == 0.002

    def test_clear_empties_both_stores(self):
        store = CardinalityFeedback()
        store.record(("select", "a"), 1, {"t"}, 10)
        store.record_edge("x", {"t"}, 1, 0.5)
        store.clear()
        assert len(store) == 0
        assert store._table_counts == {}

    def test_as_dict_shape(self):
        store = CardinalityFeedback()
        store.record(("select", "a"), 1, {"t"}, 10)
        snapshot = store.as_dict()
        assert snapshot["entries"] == 1 and snapshot["edges"] == 0
        assert set(snapshot) == {"entries", "edges", "capacity", "version",
                                 "hits", "misses", "evictions", "invalidations"}


class TestFeedbackLifecycle:
    def test_mis_estimate_records_accurate_does_not(self, stale_star):
        # The stale default selectivity mis-prices σ(dim_rare) — recorded.
        stale_star.execute(star_join_query(), optimize=False)
        assert len(stale_star.cardinality_feedback) > 0

        fresh = star_join_database(fact_rows=600)
        fresh.analyze()
        fresh.execute(star_join_query(), optimize=False)
        # Fresh statistics estimate well (Q-error < threshold): no feedback,
        # no version churn, plan cache stays hot.
        assert QERROR_THRESHOLD == 2.0
        assert len(fresh.cardinality_feedback) == 0
        fresh.execute(star_join_query(), optimize=False)
        assert fresh.physical_executor.cache_hits >= 1

    def test_dml_on_observed_table_invalidates(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        store = stale_star.cardinality_feedback
        assert len(store) > 0
        stale_star.table("dim_rare").insert({"dr": 1002, "kind": "common"})
        assert all("dim_rare" not in tables
                   for _rows, tables in store._entries.values())
        assert all("dim_rare" not in tables
                   for _sel, tables in store._edges.values())
        assert store.invalidations > 0

    def test_analyze_strands_old_observations(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        store = stale_star.cardinality_feedback
        old_version = stale_star.statistics.version
        fingerprint = expression_key(rare_selection())
        assert store.lookup(fingerprint, old_version) is not None
        stale_star.analyze()
        # Keys embed the statistics version: the fresh regime starts clean.
        assert store.lookup(fingerprint, stale_star.statistics.version) is None

    def test_feedback_is_never_persisted(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        assert len(stale_star.cardinality_feedback) > 0
        text = dumps_database(stale_star)
        assert "feedback" not in json.loads(text)
        reloaded = loads_database(text)
        assert len(reloaded.cardinality_feedback) == 0

    def test_feedback_version_in_plan_cache_key(self, stale_star):
        executor = stale_star.physical_executor
        query = star_join_query()
        stale_star.execute(query, optimize=False)   # records corrections
        stale_star.execute(query, optimize=False)   # re-plans once
        misses_after_replan = executor.cache_misses
        stale_star.execute(query, optimize=False)   # steady state: cache hit
        assert executor.cache_misses == misses_after_replan
        assert executor.cache_hits >= 1


class TestFeedbackCorrectsJoinOrder:
    def test_second_run_examines_far_fewer_pairs(self, stale_star):
        query = star_join_query()
        first = stale_star.execute(query, optimize=False)
        second = stale_star.execute(query, optimize=False)
        assert first.tuples == second.tuples
        assert (first.stats.join_pairs_considered
                >= 5 * second.stats.join_pairs_considered)

    def test_corrected_plan_parity_row_vs_batch(self, stale_star):
        query = star_join_query()
        stale_star.execute(query, optimize=False)  # observe the bad order once
        batch = stale_star.execute(query, optimize=False, mode="batch")
        row = stale_star.execute(query, optimize=False, mode="row")
        assert batch.tuples == row.tuples
        assert (batch.stats.join_pairs_considered
                == row.stats.join_pairs_considered)

    def test_plan_change_is_watched(self, stale_star):
        query = star_join_query()
        stale_star.execute(query, optimize=False)
        assert stale_star.plan_watchdog.as_dict()["plan_changes"] == 0
        stale_star.execute(query, optimize=False)
        changes = stale_star.plan_watchdog.plan_changes()
        assert len(changes) == 1
        before = changes[0]["before"]["operators"]
        after = changes[0]["after"]["operators"]
        assert before != after
        assert any("dim_rare" in operator for operator in after)


class TestPlanWatchdog:
    def test_regression_needs_a_baseline_first(self):
        watchdog = PlanWatchdog()
        for _ in range(MIN_BASELINE_SAMPLES):
            change, regression = watchdog.observe("q1", ("plan-a",),
                                                  {"operators": ["a"]}, 0.01)
            assert change is None and regression is None
        # Baseline established: a 10× latency spike is a regression.
        _change, regression = watchdog.observe("q1", ("plan-a",),
                                               {"operators": ["a"]}, 0.1)
        assert regression is not None
        assert regression["factor"] > 2.0
        assert regression["suspect_plan_change"] is None

    def test_plan_flip_is_attributed_as_suspect(self):
        watchdog = PlanWatchdog()
        for _ in range(MIN_BASELINE_SAMPLES):
            watchdog.observe("q1", ("plan-a",), {"operators": ["a"]}, 0.01)
        change, regression = watchdog.observe("q1", ("plan-b",),
                                              {"operators": ["b"]}, 0.1)
        assert change is not None
        assert change["before"] == {"operators": ["a"]}
        assert change["after"] == {"operators": ["b"]}
        assert regression is not None
        assert regression["suspect_plan_change"] is change

    def test_capacity_bounds_tracked_queries(self):
        watchdog = PlanWatchdog(capacity=2)
        for index in range(4):
            watchdog.observe("q{}".format(index), ("p",), {}, 0.01)
        assert watchdog.as_dict()["tracked_queries"] == 2
        assert watchdog.baseline("q0") is None
        assert watchdog.baseline("q3") is not None


class TestMemoryAccounting:
    def test_explain_analyze_shows_mem_on_stateful_operators(self, stale_star):
        rendered = str(stale_star.explain_analyze(star_join_query(),
                                                  optimize=False))
        join_lines = [line for line in rendered.splitlines()
                      if "join" in line or "actual_rows" in line]
        assert any("mem=" in line for line in join_lines)

    def test_memory_gauges_and_peak_histogram(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        metrics = stale_star.metrics()["metrics"]
        memory_gauges = {name: value for name, value in metrics.items()
                         if name.startswith("memory.")}
        assert memory_gauges
        assert all(value["max"] > 0 for value in memory_gauges.values())
        assert metrics["query.peak_bytes"]["count"] >= 1
        assert metrics["query.peak_bytes"]["max"] > 0


class TestExport:
    def test_prometheus_round_trip(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        text = stale_star.prometheus_metrics()
        families = parse_prometheus_text(text)
        assert families["repro_queries_executed_total"]["type"] == "counter"
        assert any(name.startswith("repro_qerror_") for name in families)
        assert any(name.startswith("repro_memory_") for name in families)
        latency = families["repro_query_seconds"]
        assert latency["type"] == "histogram"
        samples = {name: value for name, _labels, value in latency["samples"]
                   if not name.endswith("_bucket")}
        buckets = [(labels["le"], value)
                   for name, labels, value in latency["samples"]
                   if name.endswith("_bucket")]
        # Cumulative buckets: the +Inf bucket equals the count.
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == samples["repro_query_seconds_count"]
        assert samples["repro_query_seconds_sum"] > 0.0

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_orphan_sample 1.0\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE broken\n")

    def test_json_snapshot_envelope(self):
        registry = MetricsRegistry()
        registry.counter("queries.executed").add(3)
        snapshot = json_snapshot(registry, extra={"plan_cache": {"hits": 1}})
        assert snapshot["format"] == SNAPSHOT_FORMAT
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["metrics"]["queries.executed"] == 3
        assert snapshot["types"]["queries.executed"] == "Counter"
        assert snapshot["plan_cache"] == {"hits": 1}
        assert json.loads(dumps_snapshot(registry))["metrics"]

    def test_database_metrics_snapshot_merges_engine_sections(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        snapshot = stale_star.metrics_snapshot()
        assert snapshot["format"] == SNAPSHOT_FORMAT
        assert "plan_cache" in snapshot and "feedback" in snapshot
        assert snapshot["feedback"]["entries"] >= 1


class TestRegistryHardening:
    def test_type_mismatch_raises_clearly(self):
        registry = MetricsRegistry()
        registry.counter("rows.scanned")
        with pytest.raises(TypeError, match="already registered as Counter"):
            registry.histogram("rows.scanned")
        registry.histogram("query.seconds")
        with pytest.raises(TypeError, match="already registered as Histogram"):
            registry.counter("query.seconds")
        # The original instruments survive the failed re-registration.
        assert isinstance(registry.counter("rows.scanned"), Counter)
        assert isinstance(registry.histogram("query.seconds"), Histogram)

    def test_histogram_sum_property(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.sum == 5.5
        assert histogram.as_dict()["sum"] == 5.5


class TestDatabaseControls:
    def test_reset_metrics_rebaselines_everything(self, stale_star):
        stale_star.execute(star_join_query(), optimize=False)
        stale_star.execute(star_join_query(), optimize=False)
        assert stale_star.metrics()["metrics"]
        assert len(stale_star.cardinality_feedback) > 0
        stale_star.reset_metrics()
        assert stale_star.metrics()["metrics"] == {}
        assert len(stale_star.cardinality_feedback) == 0
        assert len(stale_star.slow_query_log) == 0
        assert stale_star.plan_watchdog.as_dict()["tracked_queries"] == 0
        # The engine keeps working and re-observes from a clean slate.
        stale_star.execute(star_join_query(), optimize=False)
        assert stale_star.metrics()["metrics"]["queries.executed"] == 1

    def test_profile_window_captures_the_arc(self, stale_star):
        query = star_join_query()
        with stale_star.profile() as window:
            stale_star.execute(query, optimize=False)
            stale_star.execute(query, optimize=False)
        report = window.report
        assert report["query_count"] == 2
        assert report["total_seconds"] > 0.0
        assert report["feedback"]["new_entries"] >= 1
        assert len(report["plan_changes"]) == 1
        assert report["queries"][0]["rows"] == report["queries"][1]["rows"]
        # Outside the window nothing is captured.
        stale_star.execute(query, optimize=False)
        assert report["query_count"] == 2
