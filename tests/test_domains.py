"""Tests for typed domains."""

import random

import pytest

from repro.errors import DomainError, ReproError
from repro.model.domains import (
    AnyDomain,
    BoolDomain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    RangeDomain,
    StringDomain,
    cross_product,
)


class TestBasicDomains:
    def test_any_domain_contains_everything(self):
        domain = AnyDomain()
        assert domain.contains(42) and domain.contains("x") and domain.contains(None)

    def test_int_domain(self):
        domain = IntDomain()
        assert domain.contains(5)
        assert not domain.contains(5.5)
        assert not domain.contains(True)  # bools are not ints here

    def test_float_domain_accepts_ints(self):
        domain = FloatDomain()
        assert domain.contains(5) and domain.contains(5.5)
        assert not domain.contains("5.5")

    def test_string_domain(self):
        domain = StringDomain()
        assert domain.contains("hello")
        assert not domain.contains(5)

    def test_string_domain_max_length(self):
        domain = StringDomain(max_length=3)
        assert domain.contains("abc")
        assert not domain.contains("abcd")

    def test_string_domain_rejects_negative_length(self):
        with pytest.raises(ReproError):
            StringDomain(max_length=-1)

    def test_bool_domain(self):
        domain = BoolDomain()
        assert domain.contains(True) and domain.contains(False)
        assert not domain.contains(1)
        assert set(domain.values()) == {True, False}

    def test_validate_raises_domain_error(self):
        with pytest.raises(DomainError):
            IntDomain().validate("not an int", attribute="salary")

    def test_validate_returns_value(self):
        assert IntDomain().validate(7) == 7

    def test_in_operator(self):
        assert 5 in IntDomain()
        assert "x" not in IntDomain()


class TestEnumDomain:
    def test_membership(self):
        domain = EnumDomain(["secretary", "salesman"])
        assert domain.contains("secretary")
        assert not domain.contains("pilot")

    def test_values_keep_order(self):
        assert list(EnumDomain(["b", "a"]).values()) == ["b", "a"]

    def test_len(self):
        assert len(EnumDomain([1, 2, 3])) == 3

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            EnumDomain([])

    def test_rejects_duplicates(self):
        with pytest.raises(ReproError):
            EnumDomain(["a", "a"])

    def test_is_finite(self):
        assert EnumDomain(["a"]).is_finite


class TestRangeDomain:
    def test_membership(self):
        domain = RangeDomain(0, 10)
        assert domain.contains(0) and domain.contains(10) and domain.contains(5.5)
        assert not domain.contains(-1) and not domain.contains(11)

    def test_integral_range(self):
        domain = RangeDomain(1, 3, integral=True)
        assert domain.contains(2)
        assert not domain.contains(2.5)
        assert list(domain.values()) == [1, 2, 3]

    def test_non_integral_not_enumerable(self):
        with pytest.raises(NotImplementedError):
            list(RangeDomain(0, 1).values())

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ReproError):
            RangeDomain(10, 0)

    def test_rejects_bool(self):
        assert not RangeDomain(0, 1).contains(True)


class TestRestriction:
    def test_restrict_enum(self):
        domain = EnumDomain(["a", "b", "c"])
        restricted = domain.restrict(["a"])
        assert restricted.contains("a") and not restricted.contains("b")

    def test_restrict_rejects_foreign_values(self):
        with pytest.raises(DomainError):
            EnumDomain(["a", "b"]).restrict(["z"])

    def test_restrict_infinite_domain(self):
        restricted = FloatDomain().restrict([1.0, 2.0])
        assert restricted.contains(1.0) and not restricted.contains(3.0)


class TestSampling:
    def test_samples_lie_in_domain(self):
        rng = random.Random(0)
        for domain in (IntDomain(), FloatDomain(), StringDomain(max_length=5),
                       EnumDomain(["x", "y"]), RangeDomain(0, 5, integral=True)):
            for value in domain.sample(20, rng):
                assert domain.contains(value)


class TestCrossProduct:
    def test_enumerates_tup_x(self):
        combos = set(cross_product([EnumDomain(["a", "b"]), BoolDomain()]))
        assert combos == {("a", False), ("a", True), ("b", False), ("b", True)}

    def test_respects_limit(self):
        combos = list(cross_product([EnumDomain(list(range(10)))], limit=3))
        assert len(combos) == 3

    def test_rejects_infinite_domain(self):
        with pytest.raises(DomainError):
            list(cross_product([IntDomain()]))
