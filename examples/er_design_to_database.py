"""From an enhanced-ER design to a running database and back to types.

Models a vehicle fleet with a predicate-defined specialization (car / truck /
motorcycle), maps it one-to-one onto a flexible relation with an explicit attribute
dependency (Section 3.1), loads data, decomposes the relation horizontally and
vertically (Section 3.1.1), compares the storage footprint against the NULL-padded
single-table translation, and finally derives the record-subtype family and the
PASCAL-style variant record (Sections 3.2 and 3.3).

Run with::

    python examples/er_design_to_database.py
"""

from repro.baselines import NullPaddedTable
from repro.embedding import translate_scheme
from repro.engine import Database
from repro.er import (
    EntityType,
    Specialization,
    SpecializationSubclass,
    horizontal_decomposition,
    null_count,
    specialization_to_flexible_relation,
    vertical_decomposition,
)
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain


def design_specialization():
    vehicle = EntityType(
        "vehicle",
        {
            "vin": IntDomain(),
            "brand": StringDomain(),
            "kind": EnumDomain(["car", "truck", "motorcycle"]),
            "list_price": FloatDomain(),
        },
        key=["vin"],
    )
    return Specialization(vehicle, ["kind"], [
        SpecializationSubclass("car", {"kind": "car"},
                               {"doors": IntDomain(), "trunk_volume": FloatDomain()}),
        SpecializationSubclass("truck", {"kind": "truck"},
                               {"payload": FloatDomain(), "axles": IntDomain()}),
        SpecializationSubclass("motorcycle", {"kind": "motorcycle"},
                               {"engine_cc": IntDomain()}),
    ])


FLEET = [
    {"vin": 1, "brand": "astra", "kind": "car", "list_price": 21_000.0, "doors": 4, "trunk_volume": 0.45},
    {"vin": 2, "brand": "blitz", "kind": "truck", "list_price": 78_000.0, "payload": 12.5, "axles": 3},
    {"vin": 3, "brand": "comet", "kind": "motorcycle", "list_price": 9_500.0, "engine_cc": 650},
    {"vin": 4, "brand": "astra", "kind": "car", "list_price": 18_500.0, "doors": 2, "trunk_volume": 0.30},
    {"vin": 5, "brand": "dune", "kind": "truck", "list_price": 95_000.0, "payload": 18.0, "axles": 4},
    {"vin": 6, "brand": "echo", "kind": "motorcycle", "list_price": 7_200.0, "engine_cc": 400},
]


def main():
    specialization = design_specialization()
    print("specialization:", specialization)
    print("  disjoint:", specialization.is_disjoint(), " total:", specialization.is_total())

    mapping = specialization_to_flexible_relation(specialization)
    print("\nflexible scheme:", mapping.scheme)
    print("explicit AD:", mapping.dependency)

    database = Database()
    vehicles = mapping.create_table(database, name="vehicles")
    vehicles.insert_many(FLEET)
    print("\nloaded", len(vehicles), "vehicles")

    # ------------------------------------------------------------- decomposition --
    horizontal = horizontal_decomposition(vehicles, mapping.dependency)
    vertical = vertical_decomposition(vehicles, mapping.dependency, key=["vin"])
    print("\nhorizontal fragments:", {n: len(horizontal.fragment(n))
                                      for n in horizontal.fragment_names()})
    print("restored by outer union:", horizontal.is_lossless(vehicles))
    print("vertical fragments:", {n: len(vertical.fragment(n))
                                  for n in vertical.fragment_names()})
    print("restored by multiway join:", vertical.is_lossless(vehicles))

    flat = NullPaddedTable(mapping.scheme.attributes, mapping.dependency)
    flat.insert_many(vehicles.tuples)
    print("\nstorage comparison (cells): flexible =",
          sum(len(t) for t in vehicles.tuples),
          " flat single table =", flat.stored_cells(),
          " of which NULL =", flat.null_cells())
    assert flat.null_cells() == null_count(vehicles, mapping.scheme.attributes)

    # ----------------------------------------------------------------- subtyping --
    family = mapping.subtype_family()
    print("\nsubtype family:", family)
    anonymous = family.supertype.project("priced_thing", ["brand", "list_price"])
    print("dropping the determining attribute 'kind' from the supertype:",
          family.classify_candidate(anonymous))

    # ----------------------------------------------------------------- embedding --
    translation = translate_scheme(mapping.scheme, mapping.dependency, type_name="vehicle")
    print("\nPASCAL-style variant record:\n")
    print(translation.record_type.to_pascal())


if __name__ == "__main__":
    main()
