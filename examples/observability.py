"""Observability walkthrough: EXPLAIN ANALYZE, metrics, tracing, slow queries.

Builds the E13 skewed star workload (a fact table with five dimensions, one of
them large but 5%-selective), then demonstrates the PR 6 observability layer
end to end:

1. **EXPLAIN ANALYZE** — the executed plan annotated per node with actual vs
   estimated rows, the Q-error of each estimate, inclusive wall-clock time and
   batch counts; on fresh statistics every estimate is (near-)exact.
2. **Structured tracing** — attach a JSON sink, run a query, and dump the span
   tree covering rewrite → statistics lookup → join-order search → planning →
   execution, plus plan-cache hit/miss events.
3. **Engine metrics** — the ``Database.metrics()`` snapshot after a handful of
   queries: counters, latency/batch-size histograms, worst Q-error per
   operator kind, plan-cache hit rate.
4. **Stale statistics and the slow-query log** — grow a table behind the
   statistics' back, watch the Q-error blow up in EXPLAIN ANALYZE, and see the
   slow-query log capture the query together with its worst-estimated plan
   nodes (the diagnostic trail for "why was this slow").
5. **Closing the loop (PR 7)** — the same stale-statistics situation, but this
   time the engine fixes it: the first execution records the mis-estimated
   cardinalities and the executed join edges' true selectivities into the
   cardinality-feedback store, the second execution re-plans against them
   (selective join first, ~16× fewer join pairs), the third hits the plan
   cache; the watchdog logs the plan change, and the whole registry exports
   as Prometheus text and a versioned JSON snapshot.

Run with::

    python examples/observability.py
"""

import json

from repro.algebra import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.workloads.star import star_join_database, star_join_query


def rare_join_query():
    """fact ⋈ the 5%-selective dimension — small enough to read every number."""
    return NaturalJoin(
        Selection(RelationRef("dim_rare"), Comparison("kind", "=", "rare")),
        RelationRef("fact"), on=["dr"])


def explain_analyze_fresh(database):
    print("== 1. EXPLAIN ANALYZE on fresh statistics " + "=" * 38)
    print()
    report = database.explain_analyze(star_join_query())
    print(report)
    print()
    print("   worst Q-error in the plan: {:.2f}".format(report.worst_q_error()),
          "(1.0 = every estimate exact)")
    print("   rows returned:", len(report.tuples))


def trace_a_query(database):
    print()
    print("== 2. Structured tracing " + "=" * 55)
    print()
    sink = database.tracer.attach()
    # First execution of this query shape: the trace shows the full lifecycle
    # — rewrite, statistics lookup, join-order search, planning, execution.
    database.execute(rare_join_query(), optimize=True)
    database.execute(rare_join_query(), optimize=True)  # now the cache hits
    database.tracer.detach()

    print("   span tree (parent before child, durations inclusive):")
    spans = sink.spans()
    by_id = {span["id"]: span for span in spans}

    def depth(span):
        count, parent = 0, span["parent"]
        while parent is not None:
            count, parent = count + 1, by_id[parent]["parent"]
        return count

    for span in sorted(spans, key=lambda s: s["start"]):
        print("     {}{}  {:.3f}ms".format("  " * depth(span), span["name"],
                                           span["duration"] * 1000.0))
    print("   events:", ", ".join(event["name"] for event in sink.events()))
    search = sink.named("join-order-search")
    if search:
        attributes = search[0]["attributes"]
        print("   join-order search: {} relations, {} subsets, {} plans pruned"
              .format(attributes["relations"], attributes["subsets_enumerated"],
                      attributes["plans_pruned"]))
    print("   sink.dumps() -> {} JSON records (sink.dump(path) writes them)"
          .format(len(sink)))


def metrics_snapshot(database):
    print()
    print("== 3. Database.metrics() after the queries so far " + "=" * 30)
    print()
    for _ in range(3):
        database.execute(rare_join_query())
    snapshot = database.metrics()
    metrics = snapshot["metrics"]
    print("   queries.executed:", metrics["queries.executed"])
    print("   rows scanned/joined/produced: {} / {} / {}".format(
        metrics["rows.scanned"], metrics["rows.joined"], metrics["rows.produced"]))
    latency = metrics["query.seconds"]
    print("   query latency: p50={:.3f}ms  p99={:.3f}ms  mean={:.3f}ms".format(
        latency["p50"] * 1000, latency["p99"] * 1000, latency["mean"] * 1000))
    print("   adaptive batch sizes seen:", json.dumps(
        {k: v for k, v in metrics["plan.batch_size"]["buckets"].items() if v}))
    print("   worst Q-error per operator kind:")
    for name in sorted(metrics):
        if name.startswith("qerror."):
            print("     {:<28} {:.2f}  ({} observations)".format(
                name, metrics[name]["max"], metrics[name]["observations"]))
    cache = snapshot["plan_cache"]
    print("   plan cache: {} hits / {} misses (hit rate {:.0%})".format(
        cache["hits"], cache["misses"], cache["hit_rate"]))


def stale_statistics_and_slow_log(database):
    print()
    print("== 4. Stale statistics -> Q-error -> slow-query log " + "=" * 28)
    print()
    # Grow the 'rare' tag 40x behind the statistics' back: the planner still
    # estimates from the old ANALYZE, and Q-error makes the drift visible.
    database.insert_many(
        "dim_rare",
        ({"dr": i, "kind": "rare", "audit_level": i % 3}
         for i in range(10_000, 10_400)))
    report = database.explain_analyze(rare_join_query())
    print(report)
    print()
    print("   worst Q-error now: {:.1f} — the estimates predate the insert"
          .format(report.worst_q_error()))

    # Any query from here on counts as "slow" — in production the threshold
    # stays at seconds; 0.0 forces entries so the example can show the shape.
    database.slow_query_log.threshold = 0.0
    database.execute(rare_join_query())
    entry = database.slow_query_log.entries()[-1]
    print("   slow-query log captured: mode={} seconds={:.4f} rows={}".format(
        entry.mode, entry.seconds, entry.rows))
    print("   worst-estimated plan nodes in the entry:")
    for label, value in entry.q_error_nodes:
        print("     q={:<10.1f} {}".format(value, label))
    print("   (after database.analyze(), the estimates converge again)")
    database.analyze("dim_rare")
    print("   re-analyzed worst Q-error: {:.2f}".format(
        database.explain_analyze(rare_join_query()).worst_q_error()))


def feedback_closes_the_loop():
    print()
    print("== 5. Closing the loop: cardinality feedback " + "=" * 35)
    print()
    # A fresh database so the arc is pristine: ANALYZE, then one DML against
    # the big dimension strands its distributions — the planner is back on
    # default constants for everything touching dim_rare.
    database = star_join_database()
    database.analyze()
    database.table("dim_rare").insert({"dr": 1001, "kind": "common"})

    query = star_join_query()
    for label in ("stale", "corrected", "steady"):
        result = database.execute(query)
        feedback = database.cardinality_feedback.as_dict()
        print("   {:<9}  join_pairs={:>6}  rows={}  feedback: entries={} "
              "edges={} version={}".format(
                  label, result.stats.join_pairs_considered, len(result),
                  feedback["entries"], feedback["edges"], feedback["version"]))
    cache = database.physical_executor.cache_info()
    print("   plan cache after the arc: {} hits / {} misses "
          "(one bad run, one re-plan, steady state)".format(
              cache["hits"], cache["misses"]))

    changes = database.plan_watchdog.plan_changes()
    print("   watchdog recorded {} plan change(s); the corrected plan joins:"
          .format(len(changes)))
    for operator in changes[0]["after"]["operators"]:
        if "join" in operator:
            print("     " + operator)

    print("   Prometheus export (excerpt of {} lines):".format(
        len(database.prometheus_metrics().splitlines())))
    for line in database.prometheus_metrics().splitlines():
        if line.startswith(("repro_queries", "repro_rows_joined",
                            "repro_memory_batch_hash_join ")):
            print("     " + line)
    snapshot = database.metrics_snapshot()
    print("   metrics_snapshot(): format={!r} version={} feedback entries={}"
          .format(snapshot["format"], snapshot["version"],
                  snapshot["feedback"]["entries"]))


def main():
    database = star_join_database()
    database.analyze()  # fresh statistics: the estimates below are exact
    explain_analyze_fresh(database)
    trace_a_query(database)
    metrics_snapshot(database)
    stale_statistics_and_slow_log(database)
    feedback_closes_the_loop()


if __name__ == "__main__":
    main()
