"""Saving a catalog to JSON, reloading it, and querying it with the textual language.

Demonstrates the persistence layer (schema + data as a JSON document), the
transaction scope (an all-or-nothing batch whose violation rolls everything back),
the textual query language, and the design advisor's report on the schema.

Run with::

    python examples/saved_catalog_and_queries.py
"""

import io

from repro.engine import Database, dumps_database, loads_database
from repro.er import advise
from repro.errors import DependencyViolation
from repro.workloads.employees import employee_definition, generate_employees


def main():
    # ------------------------------------------------------------------ build --
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(200, seed=11))
    print("built a database with", len(employees), "employees")

    # ------------------------------------------------------------- transaction --
    batch = generate_employees(5, seed=12, start_id=1001)
    batch[3]["typing_speed"] = 55          # make one of them violate the jobtype AD
    batch[3]["jobtype"] = "salesman"
    batch[3].pop("products", None)
    batch[3].pop("sales_commission", None)
    batch[3].pop("foreign_languages", None)
    try:
        with database.transaction():
            for values in batch:
                database.insert("employees", values)
    except DependencyViolation as error:
        print("batch rolled back:", str(error)[:70], "...")
    print("size after the failed batch:", len(employees), "(unchanged)")

    # ------------------------------------------------------------- persistence --
    document = dumps_database(database)
    print("\nserialized catalog + data:", len(document), "bytes of JSON")
    restored = loads_database(document)
    print("reloaded tables:", restored.tables(),
          "with", len(restored.table("employees")), "tuples")

    # ------------------------------------------------------------------ queries --
    print("\nwell-paid secretaries (textual query):")
    result = restored.query(
        "SELECT name, salary, typing_speed FROM employees "
        "WHERE salary > 7000 AND jobtype = 'secretary' GUARD typing_speed"
    )
    for row in sorted(result, key=lambda t: -t["salary"])[:5]:
        print("  ", row)

    print("\npeople reachable only electronically is not our schema — but products people:")
    result = restored.query("SELECT name, products FROM employees WHERE HAS products")
    print("  ", len(result), "employees are in charge of products")

    # ------------------------------------------------------------------ advisor --
    print("\n" + advise(restored.catalog.definition("employees")).summary())


if __name__ == "__main__":
    main()
