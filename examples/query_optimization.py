"""Query optimization with attribute dependencies (Section 3.1.2, Example 4).

Builds a 2000-employee database plus its horizontal decomposition, runs ANALYZE so
the planner estimates from histograms and variant-tag frequencies, then runs three
queries with and without the AD-driven rewrites, shows the physical plan the
execution engine chooses for each — including the per-node ``est_rows`` /
``est_cost`` annotations derived from the statistics — and reports the work
counters:

1. the redundant type guard of Example 4,
2. a guard on an attribute excluded by the selected variant (empty result known
   statically),
3. a selection over the outer union of fragments where two of three fragments can be
   pruned.

Run with::

    python examples/query_optimization.py
"""

from repro.algebra import Extension, OuterUnion, RelationRef, Selection, TypeGuardNode
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.er import horizontal_decomposition
from repro.workloads.employees import employee_definition, employee_dependency, generate_employees


def build_database(size=2000):
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(size, seed=7))
    decomposition = horizontal_decomposition(employees, employee_dependency())
    for name, tuples in decomposition.fragments.items():
        fragment = database.create_table("frag_{}".format(name.replace(" ", "_")),
                                         definition.scheme, domains=definition.domains)
        fragment.insert_many(tuples)
    database.analyze()  # collect histograms + variant-tag frequencies for the planner
    return database


def run(database, label, query):
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    plan = database.plan(query, optimize=True)
    print("\n--", label)
    print("   rewrites:", list(report) or "none")
    print("   physical plan (after rewrites, with statistics-based estimates):")
    for line in plan.explain().splitlines():
        print("     ", line)
    print("   tuples:", len(optimized), "(identical:", plain.tuples == optimized.tuples, ")",
          " estimated:", "{:.1f}".format(plan.root.estimated_rows)
          if plan.root.estimated_rows is not None else "n/a")
    print("   work unoptimized:", plain.stats.total_work,
          " optimized:", optimized.stats.total_work,
          " saving: {:.0%}".format(1 - optimized.stats.total_work / max(1, plain.stats.total_work)))


def main():
    database = build_database()

    run(database, "Example 4: redundant guard on typing_speed",
        TypeGuardNode(
            Selection(RelationRef("employees"),
                      Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")),
            ["typing_speed"]))

    run(database, "guard on an attribute excluded by the selected variant",
        TypeGuardNode(
            Selection(RelationRef("employees"),
                      Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")),
            ["sales_commission"]))

    secretaries = Extension(RelationRef("frag_secretary"), "fragment", "secretary")
    engineers = Extension(RelationRef("frag_software_engineer"), "fragment", "software engineer")
    salesmen = Extension(RelationRef("frag_salesman"), "fragment", "salesman")
    union = OuterUnion(OuterUnion(secretaries, engineers), salesmen)
    run(database, "selection over the outer union of the three fragments",
        Selection(union, Comparison("fragment", "=", "secretary")
                  & Comparison("salary", ">", 5000.0)))


if __name__ == "__main__":
    main()
