"""Query optimization with attribute dependencies (Section 3.1.2, Example 4).

Builds a 2000-employee database plus its horizontal decomposition, runs ANALYZE so
the planner estimates from histograms and variant-tag frequencies, then runs three
queries with and without the AD-driven rewrites, shows the physical plan the
execution engine chooses for each — including the per-node ``est_rows`` /
``est_cost`` annotations derived from the statistics — and reports the work
counters:

1. the redundant type guard of Example 4,
2. a guard on an attribute excluded by the selected variant (empty result known
   statically),
3. a selection over the outer union of fragments where two of three fragments can be
   pruned.

It then moves to the n-way workload: a 5-way star join written in a naive
smallest-dimension-first order, showing the join order and work counters
*before* (``join_order_search="none"``) and *after* the cost-based DP
join-order search, together with the search's own statistics (subsets
enumerated, candidate plans pruned).

Run with::

    python examples/query_optimization.py
"""

from repro.algebra import (
    Extension,
    NaturalJoin,
    OuterUnion,
    RelationRef,
    Selection,
    TypeGuardNode,
)
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.er import horizontal_decomposition
from repro.exec import PhysicalPlanner
from repro.workloads.employees import employee_definition, employee_dependency, generate_employees
from repro.workloads.star import star_join_database


def build_database(size=2000):
    database = Database()
    definition = employee_definition()
    employees = database.create_table("employees", definition.scheme,
                                      domains=definition.domains, key=definition.key,
                                      dependencies=definition.dependencies)
    employees.insert_many(generate_employees(size, seed=7))
    decomposition = horizontal_decomposition(employees, employee_dependency())
    for name, tuples in decomposition.fragments.items():
        fragment = database.create_table("frag_{}".format(name.replace(" ", "_")),
                                         definition.scheme, domains=definition.domains)
        fragment.insert_many(tuples)
    database.analyze()  # collect histograms + variant-tag frequencies for the planner
    return database


def run(database, label, query):
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    plan = database.plan(query, optimize=True)
    print("\n--", label)
    print("   rewrites:", list(report) or "none")
    print("   physical plan (after rewrites, with statistics-based estimates):")
    for line in plan.explain().splitlines():
        print("     ", line)
    print("   tuples:", len(optimized), "(identical:", plain.tuples == optimized.tuples, ")",
          " estimated:", "{:.1f}".format(plan.root.estimated_rows)
          if plan.root.estimated_rows is not None else "n/a")
    print("   work unoptimized:", plain.stats.total_work,
          " optimized:", optimized.stats.total_work,
          " saving: {:.0%}".format(1 - optimized.stats.total_work / max(1, plain.stats.total_work)))


def five_way_join_order():
    """The 5-way star join before and after the DP join-order search."""
    database = star_join_database(fact_rows=2000)
    database.analyze()
    # A naive written order: smallest dimension first, the selective one last.
    query = NaturalJoin(RelationRef("dim_small"), RelationRef("fact"), on=["ds"])
    query = NaturalJoin(query, RelationRef("dim_a"), on=["da"])
    query = NaturalJoin(query, RelationRef("dim_b"), on=["db"])
    query = NaturalJoin(query, Selection(RelationRef("dim_rare"),
                                         Comparison("kind", "=", "rare")),
                        on=["dr"])

    print("\n-- 5-way star join: cost-based join-order search")
    runs = {}
    for mode in ("none", "dp"):
        plan = PhysicalPlanner(database, join_order_search=mode).plan(query)
        result = plan.execute(database)
        runs[mode] = result
        label = "written order" if mode == "none" else "DP-chosen order"
        print("   [{}]".format(label))
        for line in plan.explain().splitlines():
            print("     ", line)
        print("      tuples:", len(result),
              " join_pairs:", result.stats.join_pairs_considered,
              " total work:", result.stats.total_work)
        if plan.join_search:
            report = plan.join_search[0]
            print("      search: mode={} subsets={} considered={} pruned={}".format(
                report.mode, report.subsets_enumerated, report.plans_considered,
                report.plans_pruned))
    before, after = runs["none"].stats, runs["dp"].stats
    print("   identical results:", runs["none"].tuples == runs["dp"].tuples,
          " join pairs {} -> {} ({:.0f}x fewer)".format(
              before.join_pairs_considered, after.join_pairs_considered,
              before.join_pairs_considered / max(1, after.join_pairs_considered)))


def main():
    database = build_database()

    run(database, "Example 4: redundant guard on typing_speed",
        TypeGuardNode(
            Selection(RelationRef("employees"),
                      Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")),
            ["typing_speed"]))

    run(database, "guard on an attribute excluded by the selected variant",
        TypeGuardNode(
            Selection(RelationRef("employees"),
                      Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")),
            ["sales_commission"]))

    secretaries = Extension(RelationRef("frag_secretary"), "fragment", "secretary")
    engineers = Extension(RelationRef("frag_software_engineer"), "fragment", "software engineer")
    salesmen = Extension(RelationRef("frag_salesman"), "fragment", "salesman")
    union = OuterUnion(OuterUnion(secretaries, engineers), salesmen)
    run(database, "selection over the outer union of the three fragments",
        Selection(union, Comparison("fragment", "=", "secretary")
                  & Comparison("salary", ">", 5000.0)))

    five_way_join_order()


if __name__ == "__main__":
    main()
