"""Employee registry: the paper's running example as a small application.

Demonstrates the full engine workflow on the jobtype workload: bulk loading with
dependency enforcement, updates that change an employee's type (the paper's footnote
about jobtype changes), querying with type guards, and the AD-driven optimizer
removing redundant guards (Example 4).

Run with::

    python examples/employee_registry.py
"""

from repro.algebra import Projection, RelationRef, Selection, TypeGuardNode
from repro.algebra.predicates import Comparison
from repro.engine import Database
from repro.engine.database import REMOVE
from repro.errors import DependencyViolation
from repro.workloads.employees import employee_definition, generate_employees


def build_registry(size=500):
    database = Database()
    definition = employee_definition()
    table = database.create_table("employees", definition.scheme, domains=definition.domains,
                                  key=definition.key, dependencies=definition.dependencies)
    table.insert_many(generate_employees(size, seed=2024))
    return database, table


def main():
    database, employees = build_registry()
    print("loaded", len(employees), "employees")

    # ------------------------------------------------------------------- update --
    # Promoting a secretary to software engineer is a *type* change: the update is
    # rejected until the variant attributes are changed along with the jobtype.
    someone = next(t for t in employees if t["jobtype"] == "secretary")
    print("\npromoting", someone["name"], "(currently secretary)")
    try:
        employees.update(someone, jobtype="software engineer")
    except DependencyViolation as error:
        print("  naive update rejected:", str(error)[:80], "...")
    promoted = employees.update(
        someone,
        jobtype="software engineer",
        typing_speed=REMOVE,
        foreign_languages=REMOVE,
        products="planner",
        programming_languages="pascal, c",
    )
    print("  full type-changing update accepted:", promoted["jobtype"])

    # ------------------------------------------------------------------ queries --
    # Example 4: selection on salary and jobtype followed by a guard on typing_speed.
    query = TypeGuardNode(
        Selection(RelationRef("employees"),
                  Comparison("salary", ">", 5000.0) & Comparison("jobtype", "=", "secretary")),
        ["typing_speed"],
    )
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    print("\nquery: well-paid secretaries, guarded on typing_speed")
    print("  optimizer rewrites:", list(report))
    print("  identical results:", plain.tuples == optimized.tuples)
    print("  work without / with optimization:",
          plain.stats.total_work, "/", optimized.stats.total_work)

    # Average typing speed of those well-paid secretaries.
    speeds = [t["typing_speed"] for t in optimized]
    if speeds:
        print("  average typing speed:", round(sum(speeds) / len(speeds), 1))

    # ---------------------------------------------------------------- projection --
    # Projecting the jobtype away: the result is homogeneous in <name, salary> and
    # the connection to the variant structure is gone (the subtyping discussion of
    # Section 3.2) — the propagation rules tell us no dependency survives.
    projection = Projection(RelationRef("employees"), ["name", "salary"])
    print("\ndependencies known to hold in π_name,salary(employees):",
          projection.known_dependencies(database) or "none")


if __name__ == "__main__":
    main()
