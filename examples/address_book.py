"""Address book: nested variant structure from Section 1 of the paper.

An address always carries a zip code and a town; the town-local part is either a
post-office box or a street (optionally with a house number); the electronic
communication part is a non-disjoint union of telephone, FAX and e-mail.  The
example shows how the generic scheme constructor nests, how the DNF unfolds, and how
a value-based dependency (delivery kind) constrains the town-local part.

Run with::

    python examples/address_book.py
"""

from collections import Counter

from repro.algebra import RelationRef, Selection, TypeGuardNode
from repro.algebra.predicates import Comparison, PresencePredicate
from repro.engine import Database
from repro.workloads.addresses import (
    address_definition,
    address_dependency,
    address_scheme,
    generate_addresses,
)


def main():
    scheme = address_scheme()
    print("address scheme:", scheme)
    print("admitted attribute combinations:", scheme.count_variants())
    print("example combinations:")
    for combo in sorted(scheme.dnf(), key=lambda c: (len(c), c.names))[:5]:
        print("  ", combo)

    # ------------------------------------------------------------------- engine --
    database = Database()
    definition = address_definition()
    addresses = database.create_table("addresses", definition.scheme,
                                      domains=definition.domains,
                                      dependencies=definition.dependencies)
    addresses.insert_many(generate_addresses(300, seed=99))
    print("\nloaded", len(addresses), "addresses")
    shapes = Counter(frozenset(t.attributes.names) for t in addresses)
    print("distinct tuple shapes in the instance:", len(shapes))

    # A post-office-box address must not carry a street — the dependency enforces it.
    try:
        addresses.insert({"zip_code": 89069, "town": "ulm", "delivery": "box",
                          "po_box": 1100, "street": "main street", "tel_number": "x"})
    except Exception as error:
        print("mixed box/street address rejected:", type(error).__name__)

    # ------------------------------------------------------------------ queries --
    # "All street addresses in Ulm that we can fax" — the guard on fax_number is a
    # genuine run-time check (nothing implies it), the guard on street is implied by
    # the selection on delivery and is removed by the optimizer.
    query = TypeGuardNode(
        Selection(
            RelationRef("addresses"),
            Comparison("town", "=", "ulm") & Comparison("delivery", "=", "street")
            & PresencePredicate(["fax_number"]),
        ),
        ["street"],
    )
    plain = database.execute(query, optimize=False)
    optimized, report = database.execute_with_report(query, optimize=True)
    print("\nfaxable street addresses in ulm:", len(optimized))
    print("optimizer report:", list(report) or "no rewrites")
    print("results identical:", plain.tuples == optimized.tuples)

    # house numbers are optional inside the street variant: count how many have one
    with_number = sum(1 for t in optimized if "house_number" in t)
    print("of which with a house number:", with_number)


if __name__ == "__main__":
    main()
