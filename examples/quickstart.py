"""Quickstart: flexible relations, attribute dependencies, and what they buy you.

Run with::

    python examples/quickstart.py

The script walks through the core ideas of the paper in ~5 minutes of reading:
building a flexible scheme, declaring an explicit attribute dependency, letting the
engine type-check heterogeneous tuples, deriving the subtype family, and asking the
axiom system what follows from the declared constraints.
"""

from repro import Database, FlexTuple, FlexibleScheme, ad, derive, ead, fd, implies
from repro.model.domains import EnumDomain, FloatDomain, IntDomain, StringDomain


def main():
    # ------------------------------------------------------------------ scheme --
    # An employee always has an id, a name, a salary and a jobtype; depending on the
    # jobtype some of the five variant attributes are present.  The flexible scheme
    # <5, 5, {emp_id, name, salary, jobtype, <0, 5, {...}>}> captures the structure.
    variant_attributes = ["typing_speed", "foreign_languages", "products",
                          "programming_languages", "sales_commission"]
    scheme = FlexibleScheme(5, 5, [
        "emp_id", "name", "salary", "jobtype",
        FlexibleScheme(0, len(variant_attributes), variant_attributes),
    ])
    print("flexible scheme:", scheme)
    print("number of admitted attribute combinations:", scheme.count_variants())

    # ---------------------------------------------------------------- dependency --
    # The value of jobtype determines WHICH variant attributes are present
    # (Example 2 of the paper) — an explicit attribute dependency.
    jobtype_dependency = ead(
        ["jobtype"],
        variant_attributes,
        [
            ({"jobtype": "secretary"}, ["typing_speed", "foreign_languages"]),
            ({"jobtype": "software engineer"}, ["products", "programming_languages"]),
            ({"jobtype": "salesman"}, ["products", "sales_commission"]),
        ],
    )
    print("\nexplicit attribute dependency:\n ", jobtype_dependency)

    # -------------------------------------------------------------------- engine --
    database = Database()
    employees = database.create_table(
        "employees",
        scheme,
        domains={
            "emp_id": IntDomain(),
            "name": StringDomain(),
            "salary": FloatDomain(),
            "jobtype": EnumDomain(["secretary", "software engineer", "salesman"]),
        },
        key=["emp_id"],
        dependencies=[jobtype_dependency, fd(["emp_id"], ["name", "salary", "jobtype"])],
    )
    employees.insert({"emp_id": 1, "name": "ada", "salary": 6200.0, "jobtype": "secretary",
                      "typing_speed": 95, "foreign_languages": "french, russian"})
    employees.insert({"emp_id": 2, "name": "bob", "salary": 5400.0, "jobtype": "salesman",
                      "products": "dbms", "sales_commission": 0.12})
    print("\ninserted", len(employees), "tuples of different shapes")

    # A tuple whose attribute combination is structurally fine but whose jobtype
    # demands different attributes — the scheme accepts it, the dependency rejects it.
    bad = {"emp_id": 3, "name": "eve", "salary": 5100.0, "jobtype": "salesman",
           "typing_speed": 80, "foreign_languages": "spanish"}
    print("scheme admits the bad tuple:", scheme.admits(FlexTuple(bad).attributes))
    try:
        employees.insert(bad)
    except Exception as error:  # DependencyViolation
        print("engine rejects it:", type(error).__name__)

    # ----------------------------------------------------------------- subtyping --
    from repro.core.subtyping import derive_subtype_family

    family = derive_subtype_family(scheme.attributes, jobtype_dependency,
                                   supertype_name="employee_type")
    print("\nsubtype family derived from the dependency:")
    print("  supertype:", family.supertype)
    for name in family.subtype_names():
        print("  subtype:  ", family.subtype(name))

    # ------------------------------------------------------------ axiom system --
    # What follows from the declared constraints?  The combined system Å* answers.
    declared = [jobtype_dependency, fd(["emp_id"], ["name", "salary", "jobtype"])]
    question = ad(["emp_id"], ["typing_speed"])
    print("\ndoes emp_id determine the presence of typing_speed?",
          implies(declared, question))
    print("proof:")
    print(derive(declared, question))


if __name__ == "__main__":
    main()
