"""Record types and the traditional record-subtyping rule.

Example 3 of the paper presents the employee/secretary/salesman/software-engineer
types as record types: named fields, each with a domain.  The traditional subtyping
rule (Cardelli & Wegner) reads::

        t_i ≤ u_i (i = 1..n)
    ----------------------------------------------------------
    <a1:t1, ..., an:tn, ..., am:tm>  ≤  <a1:u1, ..., an:un>

i.e. a record type is a subtype of another when it has *at least* the fields of the
supertype (width subtyping) and every shared field's domain is at least as specific
(depth subtyping).  Domains are compared with :func:`domain_subsumes`.

The point of Section 3.2 is that this rule treats the domain restriction of the
determining attributes and the addition of variant attributes as unrelated — the AD
based subtyping of :mod:`repro.core.subtyping` keeps them causally connected.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.errors import TypeCheckError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import AnyDomain, Domain, EnumDomain, RangeDomain
from repro.model.tuples import FlexTuple


def domain_subsumes(general: Domain, specific: Domain) -> bool:
    """``True`` when every value of ``specific`` is also a value of ``general``.

    This is the depth-subtyping check ``specific ≤ general``.  Finite domains are
    compared by value enumeration; ranges by interval containment; ``AnyDomain``
    subsumes everything; identical domain objects subsume trivially.  Infinite
    domains of different classes are compared conservatively (``False`` when the
    relationship cannot be established).
    """
    if general is specific:
        return True
    if isinstance(general, AnyDomain):
        return True
    if isinstance(specific, EnumDomain) or (specific.is_finite and hasattr(specific, "values")):
        try:
            return all(general.contains(value) for value in specific.values())
        except NotImplementedError:
            return False
    if isinstance(general, RangeDomain) and isinstance(specific, RangeDomain):
        return general.low <= specific.low and specific.high <= general.high
    from repro.model.domains import StringDomain

    if isinstance(general, StringDomain) and isinstance(specific, StringDomain):
        if general.max_length is None:
            return True
        return specific.max_length is not None and specific.max_length <= general.max_length
    if type(general) is type(specific):
        # Same-class infinite domains (e.g. two unrestricted IntDomains).
        return vars_equal(general, specific) or _same_parameters(general, specific)
    if isinstance(specific, RangeDomain):
        sample = [specific.low, specific.high]
        return all(general.contains(value) for value in sample)
    return False


def vars_equal(first: Domain, second: Domain) -> bool:
    """Structural equality of two domain objects of the same class."""
    first_state = {slot: getattr(first, slot, None) for slot in _state_slots(first)}
    second_state = {slot: getattr(second, slot, None) for slot in _state_slots(second)}
    return first_state == second_state


def _state_slots(domain: Domain):
    if hasattr(domain, "__dict__"):
        return sorted(domain.__dict__.keys())
    return []


def _same_parameters(general: Domain, second: Domain) -> bool:
    return repr(general) == repr(second)


class RecordType:
    """A record type: a mapping from field names to domains.

    ``RecordType("employee", {"salary": FloatDomain(), "jobtype": EnumDomain([...])})``

    Field order is irrelevant; equality and hashing are structural.
    """

    def __init__(self, name: str, fields: Mapping[str, Domain]):
        self.name = name
        normalized: Dict[str, Domain] = {}
        for field, domain in fields.items():
            if not isinstance(field, str) or not field:
                raise TypeCheckError("field names must be non-empty strings, got {!r}".format(field))
            normalized[field] = domain if isinstance(domain, Domain) else _coerce_domain(domain)
        self._fields = normalized

    @property
    def fields(self) -> Dict[str, Domain]:
        """Copy of the field → domain mapping."""
        return dict(self._fields)

    @property
    def attributes(self) -> AttributeSet:
        """The field names as an attribute set."""
        return attrset(self._fields.keys())

    def domain_of(self, field: str) -> Domain:
        """Domain declared for ``field``."""
        try:
            return self._fields[field]
        except KeyError:
            raise TypeCheckError("record type {!r} has no field {!r}".format(self.name, field)) from None

    def __contains__(self, field) -> bool:
        return str(field) in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    # -- construction of derived types -------------------------------------------------------

    def extend(self, name: str, new_fields: Mapping[str, Domain]) -> "RecordType":
        """A new record type with additional fields (used to build subtypes)."""
        merged = dict(self._fields)
        for field, domain in new_fields.items():
            if field in merged:
                raise TypeCheckError("field {!r} already present in {!r}".format(field, self.name))
            merged[field] = domain
        return RecordType(name, merged)

    def restrict_field(self, name: str, field: str, allowed: Iterable) -> "RecordType":
        """A new record type with the domain of ``field`` restricted to ``allowed``."""
        merged = dict(self._fields)
        merged[field] = self.domain_of(field).restrict(allowed)
        return RecordType(name, merged)

    def project(self, name: str, fields: Iterable[str]) -> "RecordType":
        """A new record type containing only the requested fields."""
        fields = [str(f) for f in attrset(fields).names]
        missing = [f for f in fields if f not in self._fields]
        if missing:
            raise TypeCheckError("record type {!r} has no field(s) {}".format(self.name, missing))
        return RecordType(name, {f: self._fields[f] for f in fields})

    # -- conformance ------------------------------------------------------------------------------

    def accepts(self, tup: FlexTuple, exact: bool = False) -> bool:
        """``True`` when the tuple conforms to this type.

        With ``exact=False`` (the default) the tuple may carry additional fields, in
        line with width subtyping; with ``exact=True`` the attribute sets must match.
        """
        if exact and tup.attributes != self.attributes:
            return False
        for field, domain in self._fields.items():
            if field not in tup:
                return False
            if not domain.contains(tup[field]):
                return False
        return True

    # -- equality --------------------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, RecordType):
            return NotImplemented
        if set(self._fields) != set(other._fields):
            return False
        return all(
            domain_subsumes(self._fields[f], other._fields[f])
            and domain_subsumes(other._fields[f], self._fields[f])
            for f in self._fields
        )

    def __hash__(self) -> int:
        return hash(frozenset(self._fields.keys()))

    def __repr__(self) -> str:
        fields = ", ".join(
            "{}: {}".format(field, domain.name) for field, domain in sorted(self._fields.items())
        )
        return "{} = <{}>".format(self.name, fields)


def is_record_subtype(subtype: RecordType, supertype: RecordType) -> bool:
    """The traditional record-subtyping rule: ``subtype ≤ supertype``.

    Width: every field of the supertype occurs in the subtype.  Depth: for shared
    fields the subtype's domain is subsumed by the supertype's domain.
    """
    for field, super_domain in supertype.fields.items():
        if field not in subtype:
            return False
        if not domain_subsumes(super_domain, subtype.domain_of(field)):
            return False
    return True


def _coerce_domain(value) -> Domain:
    """Allow plain iterables as shorthand for enumerated domains."""
    if isinstance(value, Domain):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return EnumDomain(sorted(value, key=repr))
    raise TypeCheckError("cannot interpret {!r} as a domain".format(value))
