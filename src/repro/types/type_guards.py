"""Type guards.

Models supporting heterogeneous collections possess operations that do not preserve
the most specific type of an entity (Section 3.1.2).  A *type guard* restores the
lost information by checking at run time whether an entity has certain attributes
(or a certain type).  In the query algebra a type guard appears as a filter
``attributes ⊆ attr(t)``; the optimizer uses attribute dependencies to recognize
guards that are implied by earlier selections and therefore redundant (Example 4).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


class TypeGuard:
    """A run-time check that a tuple possesses the given attributes."""

    def __init__(self, attributes):
        self.attributes = attrset(attributes)

    def check(self, tup: FlexTuple) -> bool:
        """``True`` when the tuple carries every guarded attribute."""
        return tup.is_defined_on(self.attributes)

    def __call__(self, tup: FlexTuple) -> bool:
        return self.check(tup)

    def is_trivial(self) -> bool:
        """A guard over the empty attribute set always succeeds."""
        return not self.attributes

    def union(self, other: "TypeGuard") -> "TypeGuard":
        """The conjunction of two guards is the guard over the union of their attributes."""
        return TypeGuard(self.attributes | other.attributes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TypeGuard):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(("guard", self.attributes))

    def __repr__(self) -> str:
        return "TypeGuard({})".format(self.attributes)


def conjunction_of_guards(guards: Iterable[TypeGuard]) -> TypeGuard:
    """Collapse several guards into a single guard over the union of their attributes."""
    combined = AttributeSet()
    for guard in guards:
        combined = combined | guard.attributes
    return TypeGuard(combined)


def guards_for_attributes(attributes) -> List[TypeGuard]:
    """One single-attribute guard per attribute (the granularity used by rewrites)."""
    return [TypeGuard(attribute) for attribute in attrset(attributes)]
