"""Type checking of tuples against record types, flexible schemes and dependencies.

Section 3.1 names type checking as the central operational use of attribute
dependencies: a flexible scheme alone accepts any attribute combination in its DNF,
so the tuple ``<jobtype:'salesman', typing-speed:high, foreign-languages:{...}>`` is
structurally fine, but the jobtype EAD rejects it.  The :class:`TypeChecker`
combines the three levels of checking — scheme admission, domain conformance,
dependency conformance — and reports which level failed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.dependencies import Dependency, ExplicitAttributeDependency
from repro.errors import TypeCheckError
from repro.model.domains import Domain
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.types.record_types import RecordType


def check_tuple_against_type(tup: FlexTuple, record_type: RecordType, exact: bool = False) -> None:
    """Raise :class:`TypeCheckError` when the tuple does not conform to the record type."""
    if exact and tup.attributes != record_type.attributes:
        raise TypeCheckError(
            "tuple attributes {} do not match type {!r} exactly".format(
                tup.attributes, record_type.name
            )
        )
    for field, domain in record_type.fields.items():
        if field not in tup:
            raise TypeCheckError(
                "tuple lacks field {!r} required by type {!r}".format(field, record_type.name)
            )
        if not domain.contains(tup[field]):
            raise TypeCheckError(
                "value {!r} of field {!r} is outside the domain of type {!r}".format(
                    tup[field], field, record_type.name
                )
            )


class CheckReport:
    """Outcome of a full type check: which levels passed, which violations occurred."""

    def __init__(self, tup: FlexTuple):
        self.tuple = tup
        self.scheme_ok: Optional[bool] = None
        self.domains_ok: Optional[bool] = None
        self.dependencies_ok: Optional[bool] = None
        self.errors: List[str] = []

    @property
    def ok(self) -> bool:
        """``True`` when every performed check passed."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else "; ".join(self.errors)
        return "CheckReport({!r}: {})".format(self.tuple, status)


class TypeChecker:
    """Checks tuples against a flexible scheme, attribute domains and dependencies.

    The three levels can be toggled independently, which is how the benchmarks
    compare "scheme only" against "scheme + ADs" checking (experiment E2).
    """

    def __init__(
        self,
        scheme: Optional[FlexibleScheme] = None,
        domains: Optional[Dict[str, Domain]] = None,
        dependencies: Optional[Sequence[Dependency]] = None,
        check_scheme: bool = True,
        check_domains: bool = True,
        check_dependencies: bool = True,
    ):
        self.scheme = scheme
        self.domains = dict(domains or {})
        self.dependencies = list(dependencies or [])
        self.check_scheme = check_scheme
        self.check_domains = check_domains
        self.check_dependencies = check_dependencies

    def report(self, tup: FlexTuple) -> CheckReport:
        """Run every enabled level and return a :class:`CheckReport`."""
        report = CheckReport(tup)
        if self.check_scheme and self.scheme is not None:
            report.scheme_ok = self.scheme.admits(tup.attributes)
            if not report.scheme_ok:
                report.errors.append(
                    "attribute combination {} not admitted by the scheme".format(tup.attributes)
                )
        if self.check_domains and self.domains:
            report.domains_ok = True
            for name, value in tup.items():
                domain = self.domains.get(name)
                if domain is not None and not domain.contains(value):
                    report.domains_ok = False
                    report.errors.append(
                        "value {!r} outside domain of attribute {!r}".format(value, name)
                    )
        if self.check_dependencies and self.dependencies:
            report.dependencies_ok = True
            for dependency in self.dependencies:
                if isinstance(dependency, ExplicitAttributeDependency):
                    if not dependency.check_tuple(tup):
                        report.dependencies_ok = False
                        report.errors.append(
                            "tuple violates explicit AD {!r}: requires Y-attributes {}".format(
                                dependency, dependency.required_attributes(tup)
                            )
                        )
                # Abbreviated ADs and FDs are two-tuple constraints; a single tuple
                # can never violate them, so they are skipped here and enforced by
                # the engine at instance level.
        return report

    def accepts(self, tup: FlexTuple) -> bool:
        """``True`` when the tuple passes every enabled level."""
        return self.report(tup).ok

    def check(self, tup: FlexTuple) -> FlexTuple:
        """Raise :class:`TypeCheckError` describing the first failure, else return the tuple."""
        report = self.report(tup)
        if not report.ok:
            raise TypeCheckError("; ".join(report.errors))
        return tup
