"""Record types, the traditional record-subtyping rule, type guards and type checking.

This package provides the *traditional* typing machinery that Section 3.2 of the
paper compares against: record types as named field collections with domains, the
Cardelli/Wegner record-subtyping rule (width and depth subtyping), type guards that
restore type information lost by operations on heterogeneous collections, and a
type checker for tuples against record types and flexible schemes.
"""

from repro.types.record_types import RecordType, domain_subsumes, is_record_subtype
from repro.types.type_guards import TypeGuard, conjunction_of_guards
from repro.types.type_checking import TypeChecker, check_tuple_against_type

__all__ = [
    "RecordType",
    "domain_subsumes",
    "is_record_subtype",
    "TypeGuard",
    "conjunction_of_guards",
    "TypeChecker",
    "check_tuple_against_type",
]
