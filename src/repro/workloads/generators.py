"""Random workload generators: schemes, explicit ADs and heterogeneous instances.

These generators drive the scaling sweeps of the benchmarks (how does DNF size grow
with the number of optional components? how does type-checking throughput scale with
the number of variants?) and give the property-based tests a second source of inputs
besides hypothesis strategies.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.model.attributes import AttributeSet, attrset
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple


def _attribute_names(count: int, prefix: str = "a") -> List[str]:
    """``count`` distinct attribute names: a1, a2, ... (single letters for small counts)."""
    if count <= 26 and prefix == "a":
        return list(string.ascii_uppercase[:count])
    return ["{}{}".format(prefix, index) for index in range(1, count + 1)]


def random_flexible_scheme(
    base_attributes: int = 3,
    variant_groups: int = 2,
    attributes_per_group: int = 3,
    seed: int = 0,
) -> FlexibleScheme:
    """A scheme with unconditioned attributes plus several union components.

    Each variant group becomes either a disjoint union ``<1,1,...>``, a non-disjoint
    union ``<1,n,...>`` or an optional block ``<0,n,...>``, chosen at random.
    """
    rng = random.Random(seed)
    names = _attribute_names(base_attributes + variant_groups * attributes_per_group)
    base = names[:base_attributes]
    components: List[object] = list(base)
    cursor = base_attributes
    for _ in range(variant_groups):
        group = names[cursor:cursor + attributes_per_group]
        cursor += attributes_per_group
        kind = rng.choice(("disjoint", "non-disjoint", "optional"))
        if kind == "disjoint":
            components.append(FlexibleScheme(1, 1, group))
        elif kind == "non-disjoint":
            components.append(FlexibleScheme(1, len(group), group))
        else:
            components.append(FlexibleScheme(0, len(group), group))
    total = len(components)
    return FlexibleScheme(total, total, components)


def random_explicit_ad(
    determinant: str = "kind",
    variant_count: int = 3,
    attributes_per_variant: int = 2,
    shared_attributes: int = 0,
    seed: int = 0,
    prefix: str = "v",
) -> ExplicitAttributeDependency:
    """An explicit AD with ``variant_count`` variants over generated attributes.

    ``shared_attributes`` attributes are shared between consecutive variants, which
    produces *overlapping* (non-disjoint) specializations like the paper's
    ``products`` attribute.  ``prefix`` names the generated variant attributes, so
    two dependencies over disjoint attribute sets can be generated side by side.
    """
    rng = random.Random(seed)
    del rng  # reserved for future randomized shapes; the structure itself is deterministic
    variants = []
    all_attributes: List[str] = []
    previous: List[str] = []
    for index in range(variant_count):
        fresh = [
            "{}{}_{}".format(prefix, index + 1, position + 1)
            for position in range(attributes_per_variant - min(shared_attributes, len(previous)))
        ]
        shared = previous[:shared_attributes]
        attributes = shared + fresh
        all_attributes.extend(a for a in attributes if a not in all_attributes)
        variants.append(
            Variant([{determinant: "kind-{}".format(index + 1)}], attributes,
                    name="kind-{}".format(index + 1))
        )
        previous = attributes
    return ExplicitAttributeDependency([determinant], all_attributes, variants)


def random_instance(
    scheme: FlexibleScheme,
    count: int = 100,
    seed: int = 0,
    value_pool: Sequence = tuple(range(10)),
) -> List[FlexTuple]:
    """Random tuples whose attribute combinations are drawn from the scheme's DNF."""
    rng = random.Random(seed)
    combos = sorted(scheme.dnf(), key=lambda c: c.names)
    if not combos:
        return []
    tuples = []
    for _ in range(count):
        combo = combos[rng.randrange(len(combos))]
        tuples.append(FlexTuple({a.name: rng.choice(list(value_pool)) for a in combo}))
    return tuples


def instance_for_dependency(
    dependency: ExplicitAttributeDependency,
    base_attributes: Sequence[str] = ("id",),
    count: int = 100,
    invalid_fraction: float = 0.0,
    seed: int = 0,
) -> List[FlexTuple]:
    """Tuples that conform to (or, for a fraction, deliberately violate) an explicit AD.

    Every tuple carries the base attributes (with a unique ``id``), a determinant
    value drawn from one of the variants, and — when valid — exactly that variant's
    attribute set.  Invalid tuples swap in another variant's attribute set.
    """
    rng = random.Random(seed)
    variants = list(dependency.variants)
    tuples: List[FlexTuple] = []
    for index in range(count):
        variant = variants[rng.randrange(len(variants))]
        determining = variant.values[rng.randrange(len(variant.values))].as_dict()
        values: Dict[str, object] = {name: index for name in base_attributes}
        values.update(determining)
        attribute_source = variant
        if invalid_fraction and rng.random() < invalid_fraction:
            others = [v for v in variants if v.attributes != variant.attributes]
            if others:
                attribute_source = others[rng.randrange(len(others))]
        for attribute in attribute_source.attributes:
            values[attribute.name] = rng.randrange(1_000)
        tuples.append(FlexTuple(values))
    return tuples
