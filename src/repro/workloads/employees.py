"""The employee / jobtype workload — the paper's running example.

An employee has an id, a name, a salary and a jobtype; the value of ``jobtype``
determines the variant attributes (Section 1):

* ``'secretary'``          → ``typing_speed``, ``foreign_languages``
* ``'software engineer'``  → ``products``, ``programming_languages``
* ``'salesman'``           → ``products``, ``sales_commission``

The module provides the flexible scheme, the explicit AD of Example 2, the domains,
a ready-made table definition for the engine, and a tuple generator with a
controllable fraction of *invalid* tuples (wrong variant attributes for the jobtype)
used by the type-checking experiment E2.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.dependencies import ExplicitAttributeDependency, FunctionalDependency, Variant
from repro.engine.catalog import TableDefinition
from repro.model.domains import Domain, EnumDomain, FloatDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme

#: the three jobtypes of the running example
JOBTYPES = ("secretary", "software engineer", "salesman")

#: the variant attributes determined by the jobtype
EMPLOYEE_VARIANT_ATTRIBUTES = (
    "typing_speed",
    "foreign_languages",
    "products",
    "programming_languages",
    "sales_commission",
)

#: variant attribute sets per jobtype (the Y_i of Example 2)
VARIANTS_BY_JOBTYPE: Dict[str, Tuple[str, ...]] = {
    "secretary": ("typing_speed", "foreign_languages"),
    "software engineer": ("products", "programming_languages"),
    "salesman": ("products", "sales_commission"),
}

_LANGUAGES = ("english", "french", "german", "italian", "russian", "spanish")
_PRODUCTS = ("dbms", "compiler", "editor", "spreadsheet", "browser", "planner")
_PROGRAMMING = ("pascal", "c", "prolog", "lisp", "ada", "cobol")
_NAMES = ("avery", "blake", "casey", "drew", "ellis", "finley", "harper", "jordan",
          "kendall", "logan", "morgan", "parker", "quinn", "reese", "sawyer", "taylor")


def employee_scheme() -> FlexibleScheme:
    """The flexible scheme of the employee relation.

    ``emp_id``, ``name``, ``salary`` and ``jobtype`` are unconditioned; the variant
    attributes form an optional nested component (their actual combination is
    governed by the AD, not by the scheme).
    """
    return FlexibleScheme(
        5,
        5,
        [
            "emp_id",
            "name",
            "salary",
            "jobtype",
            FlexibleScheme(0, len(EMPLOYEE_VARIANT_ATTRIBUTES), list(EMPLOYEE_VARIANT_ATTRIBUTES)),
        ],
    )


def employee_dependency() -> ExplicitAttributeDependency:
    """The jobtype EAD of Example 2."""
    variants = [
        Variant([{"jobtype": jobtype}], list(attributes), name=jobtype)
        for jobtype, attributes in VARIANTS_BY_JOBTYPE.items()
    ]
    return ExplicitAttributeDependency(["jobtype"], list(EMPLOYEE_VARIANT_ATTRIBUTES), variants)


def employee_domains() -> Dict[str, Domain]:
    """Domains for every employee attribute."""
    return {
        "emp_id": IntDomain(),
        "name": StringDomain(max_length=32),
        "salary": FloatDomain(),
        "jobtype": EnumDomain(list(JOBTYPES), name="jobtype"),
        "typing_speed": IntDomain(),
        "foreign_languages": StringDomain(max_length=64),
        "products": StringDomain(max_length=64),
        "programming_languages": StringDomain(max_length=64),
        "sales_commission": FloatDomain(),
    }


def employee_key_dependency() -> FunctionalDependency:
    """``emp_id --func--> name, salary, jobtype`` (the key as an FD)."""
    return FunctionalDependency(["emp_id"], ["name", "salary", "jobtype"])


def employee_definition(name: str = "employees") -> TableDefinition:
    """A ready-made table definition bundling scheme, domains, key and dependencies."""
    return TableDefinition(
        name,
        employee_scheme(),
        domains=employee_domains(),
        key=["emp_id"],
        dependencies=[employee_dependency(), employee_key_dependency()],
    )


def _variant_values(jobtype: str, rng: random.Random) -> Dict[str, object]:
    values: Dict[str, object] = {}
    for attribute in VARIANTS_BY_JOBTYPE[jobtype]:
        if attribute == "typing_speed":
            values[attribute] = rng.randrange(40, 120)
        elif attribute == "foreign_languages":
            values[attribute] = ", ".join(sorted(rng.sample(_LANGUAGES, rng.randrange(1, 4))))
        elif attribute == "products":
            values[attribute] = ", ".join(sorted(rng.sample(_PRODUCTS, rng.randrange(1, 4))))
        elif attribute == "programming_languages":
            values[attribute] = ", ".join(sorted(rng.sample(_PROGRAMMING, rng.randrange(1, 4))))
        elif attribute == "sales_commission":
            values[attribute] = round(rng.uniform(0.01, 0.25), 3)
    return values


def generate_employees(
    count: int,
    invalid_fraction: float = 0.0,
    seed: int = 0,
    start_id: int = 1,
) -> List[Dict[str, object]]:
    """Generate employee tuples; a fraction of them violates the jobtype dependency.

    An invalid tuple keeps its jobtype but carries the variant attributes of a
    *different* jobtype (the ``<jobtype:'salesman', typing_speed:..., ...>`` shape of
    Section 3.1), which a flexible scheme alone would accept.
    """
    if not 0.0 <= invalid_fraction <= 1.0:
        raise ValueError("invalid_fraction must be between 0 and 1")
    rng = random.Random(seed)
    tuples: List[Dict[str, object]] = []
    for offset in range(count):
        jobtype = JOBTYPES[rng.randrange(len(JOBTYPES))]
        tuple_values: Dict[str, object] = {
            "emp_id": start_id + offset,
            "name": rng.choice(_NAMES),
            "salary": round(rng.uniform(2_000.0, 9_000.0), 2),
            "jobtype": jobtype,
        }
        make_invalid = rng.random() < invalid_fraction
        if make_invalid:
            other = rng.choice([j for j in JOBTYPES if VARIANTS_BY_JOBTYPE[j] != VARIANTS_BY_JOBTYPE[jobtype]])
            tuple_values.update(_variant_values(other, rng))
        else:
            tuple_values.update(_variant_values(jobtype, rng))
        tuples.append(tuple_values)
    return tuples
