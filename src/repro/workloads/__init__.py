"""Workload generators for the examples, the property tests and the benchmarks.

* :mod:`repro.workloads.employees` — the paper's running example: employees with a
  ``jobtype`` whose value determines which variant attributes are present
  (Section 1, Example 2, Example 3, Example 4).
* :mod:`repro.workloads.addresses` — the address example of Section 1: unconditioned
  zip code and town, a disjoint union of post-office box and street (with an optional
  house number), and the non-disjoint electronic-communication union.
* :mod:`repro.workloads.events` — the skewed events/sessions workload (one variant
  tag at 1% frequency, join sides 10× apart) driving the statistics-planner
  experiments.
* :mod:`repro.workloads.generators` — random flexible schemes, explicit ADs and
  heterogeneous instances with controllable error rates, used for scaling sweeps and
  property-based testing.
* :mod:`repro.workloads.analytics` — the Zipf-skewed orders workload (variant
  attributes keyed on the sales channel, mixed int/float/NULL/absent amounts)
  driving the aggregation and top-k experiments.
"""

from repro.workloads.analytics import (
    analytics_database,
    generate_orders,
    orders_domains,
    orders_scheme,
)

from repro.workloads.employees import (
    EMPLOYEE_VARIANT_ATTRIBUTES,
    employee_definition,
    employee_dependency,
    employee_domains,
    employee_key_dependency,
    employee_scheme,
    generate_employees,
)
from repro.workloads.addresses import (
    address_definition,
    address_dependency,
    address_domains,
    address_scheme,
    generate_addresses,
)
from repro.workloads.events import (
    events_scheme,
    generate_events,
    sessions_scheme,
    skewed_join_database,
)
from repro.workloads.generators import (
    instance_for_dependency,
    random_explicit_ad,
    random_flexible_scheme,
    random_instance,
)

__all__ = [
    "EMPLOYEE_VARIANT_ATTRIBUTES",
    "employee_scheme",
    "employee_dependency",
    "employee_domains",
    "employee_key_dependency",
    "employee_definition",
    "generate_employees",
    "address_scheme",
    "address_dependency",
    "address_domains",
    "address_definition",
    "generate_addresses",
    "events_scheme",
    "sessions_scheme",
    "generate_events",
    "skewed_join_database",
    "random_flexible_scheme",
    "random_explicit_ad",
    "random_instance",
    "instance_for_dependency",
    "analytics_database",
    "generate_orders",
    "orders_domains",
    "orders_scheme",
]
