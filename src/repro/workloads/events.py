"""The skewed events / sessions workload used by the statistics experiments.

An ``events`` relation where one variant tag is rare: every ``rare_every``-th
event has ``kind = 'audit'`` and carries the ``clearance`` variant attribute
(a 1% tag by default), all others carry ``payload``.  A ``sessions`` relation —
by default 10× smaller and sharing ``event_id`` — joins against it.  The shape
is deliberately hostile to constant selectivities: a planner guessing 50% for
the tag selection misjudges its cardinality by ~50×, which is exactly what the
E11 benchmark and the statistics tests measure.

``events`` declares a secondary hash index on ``kind`` (so the tag selection is
index-answerable) and both tables are keyed on ``event_id`` (so an
index-lookup join can probe ``sessions``).
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.model.domains import IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme

#: default cardinalities: join sides 10× apart, the audit tag at 1%
DEFAULT_BIG_SIDE = 4000
DEFAULT_SMALL_SIDE = 400
DEFAULT_RARE_EVERY = 100


def events_scheme() -> FlexibleScheme:
    """``event_id`` and ``kind`` unconditioned; ``payload`` | ``clearance`` variant."""
    return FlexibleScheme(3, 3, ["event_id", "kind",
                                 FlexibleScheme(0, 2, ["payload", "clearance"])])


def sessions_scheme() -> FlexibleScheme:
    return FlexibleScheme(2, 2, ["event_id", "user"])


def generate_events(count: int, rare_every: int = DEFAULT_RARE_EVERY):
    """Event rows with ``kind='audit'`` (and ``clearance``) on every ``rare_every``-th."""
    rows = []
    for event_id in range(1, count + 1):
        if event_id % rare_every == 0:
            rows.append({"event_id": event_id, "kind": "audit", "clearance": "secret"})
        else:
            rows.append({"event_id": event_id,
                         "kind": "click" if event_id % 2 else "view",
                         "payload": (event_id * 3) % 7})
    return rows


def skewed_join_database(
    big: int = DEFAULT_BIG_SIDE,
    small: int = DEFAULT_SMALL_SIDE,
    rare_every: int = DEFAULT_RARE_EVERY,
) -> Database:
    """A loaded database with the ``events`` ⋈ ``sessions`` skewed workload."""
    database = Database()
    events = database.create_table(
        "events",
        events_scheme(),
        domains={"event_id": IntDomain(), "kind": StringDomain(max_length=32),
                 "payload": IntDomain(), "clearance": StringDomain(max_length=16)},
        key=["event_id"],
        indexes=[["kind"]],
    )
    events.insert_many(generate_events(big, rare_every=rare_every))
    sessions = database.create_table(
        "sessions",
        sessions_scheme(),
        domains={"event_id": IntDomain(), "user": StringDomain(max_length=16)},
        key=["event_id"],
    )
    sessions.insert_many({"event_id": event_id, "user": "u{}".format(event_id % 9)}
                         for event_id in range(1, small + 1))
    return database
