"""Skewed star and chain join workloads for the join-order experiments (E13).

The star schema is deliberately hostile to join ordering by input size alone:

* ``fact`` (5000 rows by default) references five dimensions through foreign
  keys ``ds``/``dr``/``da``/``db``/``dc``;
* four dimensions (``dim_small`` 20 rows, ``dim_a`` 30, ``dim_b`` 40,
  ``dim_c`` 50) are tiny but **non-reductive** — every fact row keeps exactly
  one partner, so joining them early leaves the intermediate at fact size;
* ``dim_rare`` is the *largest* dimension (1000 rows) but the query selects
  ``kind = 'rare'`` (a 5% tag whose rows carry the ``audit_level`` variant
  attribute), and ``dr`` has 1000 distinct values — its join is the one that
  actually shrinks the fact side (to ~5%).

A smallest-input-first order therefore drags ~5000 intermediate rows through
four joins before the selective one runs; a cost-based search joins
``fact ⋈ σ(dim_rare)`` first and pays ~5% of that.  The chain schema
(``stage1``–``stage5`` linked pairwise, selective filters at *both* ends)
additionally rewards **bushy** trees: the two selective ends can be reduced
independently before meeting in the middle.

Both builders return loaded :class:`~repro.engine.Database` objects (callers
run ``analyze()`` themselves — comparing planning with and without statistics
is part of the experiments); the ``*_query`` helpers build the matching
left-deep n-way :class:`~repro.algebra.expressions.NaturalJoin` trees in
written orders a naive query author would produce.
"""

from __future__ import annotations

from repro.algebra.expressions import NaturalJoin, RelationRef, Selection
from repro.algebra.predicates import Comparison
from repro.engine.database import Database
from repro.model.domains import IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme

#: default star cardinalities: tiny non-reductive dimensions, one large
#: selective one
DEFAULT_FACT_ROWS = 5000
DEFAULT_DIMENSIONS = (("dim_small", "ds", 20), ("dim_a", "da", 30),
                      ("dim_b", "db", 40), ("dim_c", "dc", 50))
DEFAULT_RARE_ROWS = 1000
DEFAULT_RARE_EVERY = 20  # kind='rare' on every 20th dim_rare row: a 5% tag

#: default chain cardinalities (stage1 — … — stage5, filters on both ends)
DEFAULT_CHAIN_ROWS = (400, 600, 2000, 600, 400)


def star_join_database(fact_rows: int = DEFAULT_FACT_ROWS,
                       rare_rows: int = DEFAULT_RARE_ROWS,
                       rare_every: int = DEFAULT_RARE_EVERY) -> Database:
    """A loaded star-schema database: ``fact`` plus five keyed dimensions."""
    database = Database()
    fact_attributes = ["fact_id", "ds", "dr", "da", "db", "dc"]
    fact = database.create_table(
        "fact", FlexibleScheme.relational(fact_attributes),
        domains={name: IntDomain() for name in fact_attributes},
        key=["fact_id"],
    )
    fact.insert_many(
        {"fact_id": i, "ds": i % 20 + 1, "dr": i % rare_rows + 1,
         "da": i % 30 + 1, "db": i % 40 + 1, "dc": i % 50 + 1}
        for i in range(1, fact_rows + 1)
    )
    for name, fk, rows in DEFAULT_DIMENSIONS:
        value = "{}_name".format(name)
        table = database.create_table(
            name, FlexibleScheme.relational([fk, value]),
            domains={fk: IntDomain(), value: StringDomain(max_length=24)},
            key=[fk],
        )
        table.insert_many({fk: i, value: "{}-{}".format(name, i)}
                          for i in range(1, rows + 1))
    # The big dimension: a 5% 'rare' tag whose rows carry a variant attribute.
    rare = database.create_table(
        "dim_rare",
        FlexibleScheme(2, 3, ["dr", "kind", FlexibleScheme(0, 1, ["audit_level"])]),
        domains={"dr": IntDomain(), "kind": StringDomain(max_length=16),
                 "audit_level": IntDomain()},
        key=["dr"],
    )
    rare.insert_many(
        ({"dr": i, "kind": "rare", "audit_level": i % 3}
         if i % rare_every == 0 else {"dr": i, "kind": "common"})
        for i in range(1, rare_rows + 1)
    )
    return database


def star_join_query() -> NaturalJoin:
    """The 6-way star join, written smallest-dimension-first (the naive order)."""
    tree = NaturalJoin(RelationRef("dim_small"), RelationRef("fact"), on=["ds"])
    tree = NaturalJoin(tree, RelationRef("dim_a"), on=["da"])
    tree = NaturalJoin(tree, RelationRef("dim_b"), on=["db"])
    tree = NaturalJoin(tree, RelationRef("dim_c"), on=["dc"])
    selective = Selection(RelationRef("dim_rare"), Comparison("kind", "=", "rare"))
    return NaturalJoin(tree, selective, on=["dr"])


def chain_join_database(rows=DEFAULT_CHAIN_ROWS) -> Database:
    """A loaded chain: ``stage_k(link_k, link_{k+1}, weight_k)``, linked pairwise.

    ``link_k`` is stage ``k``'s unique key; stage ``k`` references stage
    ``k+1`` through a seeded-random ``link_{k+1}`` drawn from
    ``1..|stage_{k+1}|``, so adjacent stages share exactly one attribute and
    non-adjacent stages share none.  ``weight_k = i mod 10`` gives every stage
    a 10% filter; the random links keep it uncorrelated with the keys.
    """
    import random

    database = Database()
    for stage, count in enumerate(rows, start=1):
        key, weight = "link{}".format(stage), "weight{}".format(stage)
        attributes = [key, weight]
        if stage < len(rows):
            attributes.insert(1, "link{}".format(stage + 1))
        table = database.create_table(
            "stage{}".format(stage), FlexibleScheme.relational(attributes),
            domains={name: IntDomain() for name in attributes},
            key=[key],
        )
        rng = random.Random(0xE13 + stage)

        def row(i, stage=stage, key=key, weight=weight):
            tup = {key: i, weight: i % 10}
            if stage < len(rows):
                tup["link{}".format(stage + 1)] = rng.randrange(rows[stage]) + 1
            return tup

        table.insert_many(row(i) for i in range(1, count + 1))
    return database


def chain_join_query() -> NaturalJoin:
    """The 5-way chain join with selective filters on both end stages."""
    tree = Selection(RelationRef("stage1"), Comparison("weight1", "=", 0))
    for stage in range(2, 6):
        right: object = RelationRef("stage{}".format(stage))
        if stage == 5:
            right = Selection(right, Comparison("weight5", "=", 0))
        tree = NaturalJoin(tree, right, on=["link{}".format(stage)])
    return tree
