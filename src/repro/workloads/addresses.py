"""The address workload of Section 1.

Every address has a zip code and a town (unconditioned).  The town-local part is a
disjoint union of a post-office box number and a street, where a street may carry an
optional house number.  The electronic-communication part is a non-disjoint union of
telephone number, FAX number and e-mail address — at least one must be present.

On top of the purely existential structure the workload declares a value-based
dependency: the value of ``delivery`` ('box' or 'street') determines which town-local
attributes are present — the same shape as the jobtype example, so the address
workload exercises optional attributes *inside* a variant (the house number), which
the employee workload does not.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.engine.catalog import TableDefinition
from repro.model.domains import Domain, EnumDomain, IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme

_TOWNS = ("ulm", "berlin", "hamburg", "munich", "bremen", "leipzig", "dresden")
_STREETS = ("main street", "oak avenue", "station road", "park lane", "river walk")


def address_scheme() -> FlexibleScheme:
    """The flexible scheme of the address relation.

    ``<5, 5, { zip_code, town, delivery,
               <1, 1, { po_box, <1, 2, { street, house_number }> }>,
               <1, 3, { tel_number, fax_number, email }> }>``
    """
    town_local = FlexibleScheme(
        1, 1, ["po_box", FlexibleScheme(1, 2, ["street", "house_number"])]
    )
    electronic = FlexibleScheme(1, 3, ["tel_number", "fax_number", "email"])
    return FlexibleScheme(5, 5, ["zip_code", "town", "delivery", town_local, electronic])


def address_dependency() -> ExplicitAttributeDependency:
    """``delivery`` determines the town-local attributes.

    ``'box'`` → exactly ``po_box``; ``'street'`` → ``street`` (the optional house
    number is *not* part of the dependency's right-hand side, so it stays free —
    dependencies constrain exactly the attributes they mention).
    """
    return ExplicitAttributeDependency(
        ["delivery"],
        ["po_box", "street"],
        [
            Variant([{"delivery": "box"}], ["po_box"], name="box"),
            Variant([{"delivery": "street"}], ["street"], name="street"),
        ],
    )


def address_domains() -> Dict[str, Domain]:
    """Domains for every address attribute."""
    return {
        "zip_code": IntDomain(),
        "town": StringDomain(max_length=32),
        "delivery": EnumDomain(["box", "street"], name="delivery"),
        "po_box": IntDomain(),
        "street": StringDomain(max_length=64),
        "house_number": IntDomain(),
        "tel_number": StringDomain(max_length=24),
        "fax_number": StringDomain(max_length=24),
        "email": StringDomain(max_length=64),
    }


def address_definition(name: str = "addresses") -> TableDefinition:
    """A ready-made table definition for the address workload."""
    return TableDefinition(
        name,
        address_scheme(),
        domains=address_domains(),
        dependencies=[address_dependency()],
    )


def generate_addresses(count: int, seed: int = 0) -> List[Dict[str, object]]:
    """Generate valid address tuples covering every structural variant."""
    rng = random.Random(seed)
    tuples: List[Dict[str, object]] = []
    for _ in range(count):
        values: Dict[str, object] = {
            "zip_code": rng.randrange(10_000, 99_999),
            "town": rng.choice(_TOWNS),
        }
        if rng.random() < 0.4:
            values["delivery"] = "box"
            values["po_box"] = rng.randrange(1, 9_999)
        else:
            values["delivery"] = "street"
            values["street"] = rng.choice(_STREETS)
            if rng.random() < 0.7:
                values["house_number"] = rng.randrange(1, 250)
        channels = rng.sample(["tel_number", "fax_number", "email"], rng.randrange(1, 4))
        for channel in channels:
            if channel == "email":
                values[channel] = "person{}@example.org".format(rng.randrange(10_000))
            else:
                values[channel] = "+49-{}-{}".format(rng.randrange(100, 999), rng.randrange(10_000, 99_999))
        tuples.append(values)
    return tuples
