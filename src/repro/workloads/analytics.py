"""The skewed orders workload driving the aggregation experiments (E18).

A single ``orders`` relation shaped for GROUP BY / top-k stress:

* ``region`` is **Zipf-skewed** — region ``r0`` absorbs roughly half the rows,
  each further region half of the remainder — so a hash aggregate sees a few
  huge groups next to a long tail of tiny ones;
* ``channel`` determines the variant attributes (the paper's AD shape):
  ``'online'`` orders carry ``coupon``, ``'store'`` orders carry ``store_id``,
  and every ``rare_every``-th order is a ``'phone'`` order carrying *neither*
  — grouping by a variant attribute therefore exercises the ⊥-group routing;
* ``amount`` mixes integers, floats and explicit NULLs (and is entirely absent
  on phone orders), covering every row of the pinned aggregate matrix.

The generator is deliberately cheap per row (no rejection sampling) so the
100k-row benchmark table loads in well under a second.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from repro.engine.database import Database
from repro.model.domains import IntDomain, StringDomain
from repro.model.scheme import FlexibleScheme

#: default benchmark cardinality (E18 runs the full 100k)
DEFAULT_ORDER_COUNT = 100_000

#: number of Zipf-skewed regions (r0 ≈ half the rows, r1 ≈ a quarter, …)
DEFAULT_REGIONS = 8

#: every n-th order is a 'phone' order with no variant attributes and no amount
DEFAULT_RARE_EVERY = 97

#: fraction of non-phone orders whose amount is an explicit NULL
NULL_AMOUNT_FRACTION = 0.05


def orders_scheme() -> FlexibleScheme:
    """``order_id``/``region``/``channel`` unconditioned; variants and amount optional."""
    return FlexibleScheme(
        3,
        4,
        ["order_id", "region", "channel",
         FlexibleScheme(0, 3, ["amount", "coupon", "store_id"])],
    )


def orders_domains() -> Dict[str, object]:
    # ``amount`` carries no domain on purpose: the workload mixes integers,
    # floats and explicit NULLs (every row of the pinned aggregate matrix),
    # and domains have no NULL notion.
    return {
        "order_id": IntDomain(),
        "region": StringDomain(max_length=8),
        "channel": StringDomain(max_length=8),
        "coupon": StringDomain(max_length=12),
        "store_id": IntDomain(),
    }


def _skewed_region(rng: random.Random, regions: int) -> str:
    """Zipf-ish pick: region ``r_i`` with probability ``2^-(i+1)`` (tail → r0)."""
    draw = rng.random()
    threshold = 0.5
    for index in range(regions - 1):
        if draw < threshold:
            return "r{}".format(index)
        draw -= threshold
        threshold /= 2.0
    return "r{}".format(regions - 1)


def generate_orders(
    count: int = DEFAULT_ORDER_COUNT,
    regions: int = DEFAULT_REGIONS,
    rare_every: int = DEFAULT_RARE_EVERY,
    seed: int = 0,
) -> Iterator[Dict[str, object]]:
    """Skewed order rows; a generator so 100k rows never sit in a second list."""
    rng = random.Random(seed)
    for order_id in range(1, count + 1):
        row: Dict[str, object] = {
            "order_id": order_id,
            "region": _skewed_region(rng, regions),
        }
        if order_id % rare_every == 0:
            row["channel"] = "phone"  # neither variant attribute, no amount
            yield row
            continue
        amount: Optional[object]
        if rng.random() < NULL_AMOUNT_FRACTION:
            amount = None
        elif order_id % 2:
            amount = rng.randrange(1, 500)
        else:
            amount = round(rng.uniform(1.0, 500.0), 2)
        row["amount"] = amount
        if rng.random() < 0.5:
            row["channel"] = "online"
            row["coupon"] = "c{}".format(rng.randrange(50))
        else:
            row["channel"] = "store"
            row["store_id"] = rng.randrange(200)
        yield row


def analytics_database(
    count: int = DEFAULT_ORDER_COUNT,
    regions: int = DEFAULT_REGIONS,
    rare_every: int = DEFAULT_RARE_EVERY,
    seed: int = 0,
    analyze: bool = True,
) -> Database:
    """A loaded (and by default ANALYZEd) database with the orders workload."""
    database = Database()
    orders = database.create_table(
        "orders",
        orders_scheme(),
        domains=orders_domains(),
        key=["order_id"],
    )
    orders.insert_many(generate_orders(count, regions=regions,
                                       rare_every=rare_every, seed=seed))
    if analyze:
        database.analyze()
    return database
