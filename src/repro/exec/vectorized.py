"""Vectorized (batch-at-a-time) forms of every physical operator.

Each class here subclasses its row-engine counterpart from
:mod:`repro.exec.operators` — plans mix both modes freely, ``isinstance`` checks
written against the row classes keep working, and ``explain`` labels stay
comparable — but the ``_generate`` implementations process whole
:class:`~repro.model.batches.TupleBatch` objects instead of touching tuples one
at a time:

* predicates and type guards are compiled **once per plan node**
  (:mod:`repro.exec.compiled`) and run as tight loops / bitmap tests over column
  arrays;
* the :class:`~repro.algebra.evaluator.ExecutionStats` counters are maintained
  in bulk (``+= len(batch)``) with exactly the per-tuple semantics the row
  engine documents — the totals are identical, only the bookkeeping is
  amortized;
* hash-join build and probe read the join columns as flat arrays, so the
  per-tuple ``is_defined_on``/key-construction machinery disappears from the
  inner loops; variant records missing a join attribute are skipped via the
  presence bitmap and counted as guard checks, exactly like the row engine's
  guard-aware partitioning;
* **join output is lazy**: instead of eagerly constructing merged
  :class:`~repro.model.tuples.FlexTuple` objects, the probe loop zips build
  columns and probe columns into merged value dicts (conflicts and duplicates
  are still detected eagerly, on the dicts) and emits them as
  :class:`~repro.model.batches.LazyBatch` chunks — tuple materialization is
  deferred until rows cross into a row-mode operator, an interpreted
  predicate, or the final result set.  Extension, rename and projection are
  pure column/dict transforms and stay lazy the same way, so a chain of
  joins and reshapes over a filtered stream never builds tuples that a
  downstream operator drops;
* unions, difference, products and the multiway join — row-mode holdouts until
  this revision — have batch forms too (:class:`BatchMergeUnion`,
  :class:`BatchOuterUnion`, :class:`BatchDifference`, :class:`BatchExtension`,
  :class:`BatchRename`, :class:`BatchProduct`, :class:`BatchMultiwayJoin`), so
  whole realistic plans — outer unions over heterogeneous variant schemas,
  type-guard-driven extensions, n-way decomposition joins — run with
  ``plan.mode == "batch"``.  The unions and difference are set-semantics pinch
  points that dedup on the row objects themselves: their inputs are usually
  plain batches of already-built tuples (scans) whose cached hashes make that
  the cheapest exact check, so a *lazy* input batch is materialized there —
  laziness survives through filters, guards, projections, reshapes and further
  joins, not through union/difference dedup;
* the analytic operators have batch forms as well: :class:`BatchHashAggregate`
  accumulates column-wise through
  :class:`~repro.exec.compiled.CompiledAggregates` (bulk column reads per
  spec, presence handled via the value dicts' key sets),
  :class:`BatchSort` / :class:`BatchTopK` sort or heap-select ``(values,
  hash)`` pairs so result tuples rebuild with their hashes precomputed, and
  :class:`BatchSubqueryExtend` extends whole batches through a
  :class:`~repro.exec.compiled.CompiledExtension` built once from the scalar
  subquery's value.

The only remaining row fallbacks are the natural join whose attribute set is
data-dependent (``on=None`` — both sides must be materialized to discover the
shared attributes) and the nested-loop join the planner picks for provably tiny
inputs; batches and row lists interoperate in both directions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.algebra.evaluator import _resolve_relation
from repro.errors import AlgebraError
from repro.exec.context import sampled_size
from repro.algebra.analytic import (
    AggregateAccumulator,
    row_order_key,
    top_k_rows,
)
from repro.exec.compiled import (
    CompiledAggregates,
    CompiledExtension,
    CompiledGuard,
    CompiledPredicate,
    CompiledRename,
)
from repro.exec.operators import (
    _NO_VALUE,
    DifferenceOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    GuardOp,
    HashAggregateOp,
    HashJoin,
    IndexLookupJoin,
    MergeUnion,
    MultiwayJoinOp,
    OuterUnionOp,
    ProductOp,
    ProjectOp,
    RenameOp,
    Scan,
    SortOp,
    SubqueryExtendOp,
    TopKOp,
)
from repro.model.batches import LazyBatch, MISSING, TupleBatch, merge_values
from repro.model.tuples import FlexTuple


class BatchEmptyOp(EmptyOp):
    """The ∅ leaf inside vectorized plans (emits nothing, in either mode)."""

    name = "batch-empty"
    vectorized = True


class BatchScan(Scan):
    """Index-aware scan emitting :class:`TupleBatch` chunks with compiled filters."""

    name = "batch-scan"
    vectorized = True

    def __init__(self, relation, predicate=None, guard=None, equalities=None):
        super().__init__(relation, predicate=predicate, guard=guard,
                         equalities=equalities)
        self._compiled_guard = (CompiledGuard(self.guard)
                                if self.guard is not None else None)
        self._compiled = (CompiledPredicate(self.predicate)
                          if self.predicate is not None else None)

    def _generate(self, ctx, op) -> Iterator[TupleBatch]:
        op.invocations += 1
        picked = self._pick_index(ctx)
        if picked is not None:
            index, probe = picked
            rows = list(index.lookup(probe))
        else:
            rows = list(_resolve_relation(ctx.source, self.relation))

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            size = ctx.batch_size
            for start in range(0, len(rows), size):
                batch = TupleBatch(rows[start:start + size])
                count = len(batch)
                stats.tuples_scanned += count
                op.rows_in += count
                indices = None
                if self._compiled_guard is not None:
                    stats.guard_checks += count
                    indices = self._compiled_guard.select(batch)
                if self._compiled is not None:
                    stats.predicate_evaluations += (
                        count if indices is None else len(indices))
                    indices = self._compiled.select(batch, indices)
                if indices is not None:
                    if len(indices) != count:
                        batch = batch.take(indices)
                    if not len(batch):
                        continue
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchFilter(FilterOp):
    """σ over batches: the predicate compiled once, applied as narrowing passes."""

    name = "batch-filter"
    vectorized = True

    def __init__(self, child, predicate):
        super().__init__(child, predicate)
        self._compiled = CompiledPredicate(predicate)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.predicate_evaluations += count
                indices = self._compiled.select(batch)
                if len(indices) != count:
                    if not indices:
                        continue
                    batch = batch.take(indices)
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchGuard(GuardOp):
    """TG[X] over batches: one presence-bitmap AND per batch."""

    name = "batch-guard"
    vectorized = True

    def __init__(self, child, attributes):
        super().__init__(child, attributes)
        self._compiled = CompiledGuard(self.attributes)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.guard_checks += count
                indices = self._compiled.select(batch)
                if len(indices) != count:
                    if not indices:
                        continue
                    batch = batch.take(indices)
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchProject(ProjectOp):
    """π over batches: projected value dicts built from pre-extracted columns.

    The output is a :class:`LazyBatch` — the (typically much smaller) projected
    tuples are only constructed when something downstream needs row objects.
    """

    name = "batch-project"
    vectorized = True

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        names = [a.name for a in self.attributes]

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            seen = set()
            add_seen = seen.add
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.tuples_scanned += count
                columns = [batch.column(name) for name in names]
                out_values: List[dict] = []
                out_hashes: List[int] = []
                for i in range(count):
                    items = {}
                    for name, values in zip(names, columns):
                        value = values[i]
                        if value is not MISSING:
                            items[name] = value
                    if not items:
                        continue
                    key = frozenset(items.items())
                    if key not in seen:
                        add_seen(key)
                        out_values.append(items)
                        out_hashes.append(hash(key))
                if out_values:
                    op.rows_out += len(out_values)
                    op.batches_out += 1
                    yield LazyBatch(out_values, out_hashes)

        return emit()


class BatchExtension(ExtendOp):
    """ε over batches: one presence test per batch, extended value dicts out.

    Entirely a column/dict transform — no tuples are read or built; the
    extended rows travel as a :class:`LazyBatch`.
    """

    name = "batch-extend"
    vectorized = True

    def __init__(self, child, attribute, value):
        super().__init__(child, attribute, value)
        self._compiled = CompiledExtension(attribute, value)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                if not count:
                    continue
                op.rows_in += count
                stats.tuples_scanned += count
                values = self._compiled.transform(batch)
                op.rows_out += count
                op.batches_out += 1
                yield LazyBatch(values)

        return emit()


class BatchRename(RenameOp):
    """ρ over batches: renamed value dicts with hashed dedup (renames can collapse)."""

    name = "batch-rename"
    vectorized = True

    def __init__(self, child, mapping):
        super().__init__(child, mapping)
        self._compiled = CompiledRename(self.mapping)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        transform = self._compiled.transform_row

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            seen = set()
            add_seen = seen.add
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.tuples_scanned += count
                out_values: List[dict] = []
                out_hashes: List[int] = []
                for values in batch.values_list():
                    renamed = transform(values)
                    key = frozenset(renamed.items())
                    if key not in seen:
                        add_seen(key)
                        out_values.append(renamed)
                        out_hashes.append(hash(key))
                if out_values:
                    op.rows_out += len(out_values)
                    op.batches_out += 1
                    yield LazyBatch(out_values, out_hashes)

        return emit()


class _BatchUnion:
    """Shared implementation of the batch union forms (bulk counters, streamed
    dedup).  Mixed in before the row classes so their ``isinstance`` identity
    is preserved."""

    vectorized = True

    def _generate(self, ctx, op, left, right) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            seen = set()
            add_seen = seen.add
            for stream in (left, right):
                for raw in stream:
                    batch = TupleBatch.of(raw)
                    count = len(batch)
                    op.rows_in += count
                    stats.tuples_scanned += count
                    out: List[FlexTuple] = []
                    append = out.append
                    for tup in batch.rows:
                        if tup not in seen:
                            add_seen(tup)
                            append(tup)
                    if out:
                        op.rows_out += len(out)
                        op.batches_out += 1
                        yield TupleBatch(out)

        return emit()


class BatchMergeUnion(_BatchUnion, MergeUnion):
    """∪ over batches: per-batch dedup against the running seen-set."""

    name = "batch-merge-union"


class BatchOuterUnion(_BatchUnion, OuterUnionOp):
    """The outer union restoring horizontal decompositions, batch form."""

    name = "batch-outer-union"


class BatchDifference(DifferenceOp):
    """− over batches: hashed right side, whole-batch membership filtering."""

    name = "batch-difference"
    vectorized = True

    def _generate(self, ctx, op, left, right) -> Iterator[TupleBatch]:
        op.invocations += 1
        exclude = self._materialize(ctx, op, right)

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in left:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.tuples_scanned += count
                out = [tup for tup in batch.rows if tup not in exclude]
                if out:
                    op.rows_out += len(out)
                    op.batches_out += 1
                    yield TupleBatch(out)

        return emit()


class BatchProduct(ProductOp):
    """× over batches: value-dict merges, lazy output, bulk pair counting."""

    name = "batch-product"
    vectorized = True

    def _generate(self, ctx, op, left, right) -> Iterator[TupleBatch]:
        op.invocations += 1
        build = [tup._values for tup in self._materialize(ctx, op, right)]
        ctx.enforce_memory(op, sampled_size(build))

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            size = ctx.batch_size
            seen = set()
            add_seen = seen.add
            out_values: List[dict] = []
            out_hashes: List[int] = []
            for raw in left:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.join_pairs_considered += count * len(build)
                for row_values in batch.values_list():
                    for partner in build:
                        merged = merge_values(row_values, partner)
                        key = frozenset(merged.items())
                        if key not in seen:
                            add_seen(key)
                            out_values.append(merged)
                            out_hashes.append(hash(key))
                            if len(out_values) >= size:
                                op.rows_out += len(out_values)
                                op.batches_out += 1
                                yield LazyBatch(out_values, out_hashes)
                                out_values, out_hashes = [], []
            if out_values:
                op.rows_out += len(out_values)
                op.batches_out += 1
                yield LazyBatch(out_values, out_hashes)

        return emit()


def _build_buckets(op, ctx, stream, names) -> Dict:
    """Drain a build-side batch stream into join-key buckets of value dicts.

    Rows lacking a join attribute are partitioned out via the presence bitmap
    and cost one guard check each (they can never join) — identical to the row
    engine's guard-aware partitioning.  Single-attribute joins key buckets by
    the bare value, multi-attribute joins by the value tuple.  The bucket
    payloads are the rows' plain value dicts — ready for the lazy column merge
    of the probe loop, never materialized when the build side was lazy.
    """
    stats = ctx.stats
    governed = (ctx.governor is not None
                and ctx.governor.memory_budget is not None)
    buckets: Dict = {}
    setdefault = buckets.setdefault
    single = len(names) == 1
    for raw in stream:
        batch = TupleBatch.of(raw)
        count = len(batch)
        op.rows_in += count
        stats.guard_checks += count
        values_list = batch.values_list()
        if single:
            for i, value in enumerate(batch.column(names[0])):
                if value is not MISSING:
                    setdefault(value, []).append(values_list[i])
        else:
            columns = [batch.column(name) for name in names]
            for i, key in enumerate(zip(*columns)):
                if all(value is not MISSING for value in key):
                    setdefault(key, []).append(values_list[i])
        if governed:
            # fail fast at the batch boundary (spilling joins never get here;
            # they drain through BatchHashJoin._generate_grace instead)
            ctx.enforce_memory(op, sampled_size(buckets))
    op.note_memory(sampled_size(buckets))
    return buckets


class BatchHashJoin(HashJoin):
    """⋈ by build/probe over batch columns (statically known join attributes).

    The probe loop zips probe-side and build-side value dicts into merged dicts
    — disagreement on shared non-join attributes raises eagerly, duplicates are
    dropped eagerly via hashed keys — and emits them as :class:`LazyBatch`
    chunks; the merged ``FlexTuple``s themselves are built only when the rows
    reach row-mode code or the result set.

    The natural-join case whose attribute set depends on the data (``on=None``)
    has no batch form — it must materialize both sides to discover the shared
    attributes — and stays on the row implementation.
    """

    name = "batch-hash-join"
    vectorized = True

    def __init__(self, left, right, on=None, lazy=True):
        super().__init__(left, right, on=on)
        if self.on is None or not len(self.on):
            raise AlgebraError("a batch hash join needs static join attributes")
        #: ``lazy=False`` materializes the merged tuples before emitting each
        #: batch — the pre-lazy behaviour, kept for A/B benchmarking ("core")
        self.lazy = lazy

    def _generate(self, ctx, op, left, right) -> Iterator[TupleBatch]:
        op.invocations += 1
        names = [a.name for a in self.on]
        budget = ctx.spill_budget()
        if budget is not None:
            return self._generate_grace(ctx, op, left, right, names, budget)
        buckets = _build_buckets(op, ctx, right, names)
        return self._probe_emit(ctx, op, left, names, buckets)

    def _probe_emit(self, ctx, op, left, names, buckets) -> Iterator[TupleBatch]:
        stats = ctx.stats
        get = buckets.get
        single = len(names) == 1
        seen = set()
        add_seen = seen.add
        for raw in left:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.guard_checks += count
            values_list = batch.values_list()
            out_values: List[dict] = []
            out_hashes: List[int] = []
            if single:
                probes = enumerate(batch.column(names[0]))
            else:
                columns = [batch.column(name) for name in names]
                probes = enumerate(zip(*columns))
            for i, key in probes:
                if single:
                    if key is MISSING:
                        continue
                elif not all(value is not MISSING for value in key):
                    continue
                partners = get(key)
                if partners is None:
                    continue
                stats.join_pairs_considered += len(partners)
                row_values = values_list[i]
                for partner in partners:
                    merged = merge_values(row_values, partner)
                    dedup = frozenset(merged.items())
                    if dedup not in seen:
                        add_seen(dedup)
                        out_values.append(merged)
                        out_hashes.append(hash(dedup))
            if out_values:
                op.rows_out += len(out_values)
                op.batches_out += 1
                batch = LazyBatch(out_values, out_hashes)
                if not self.lazy:
                    batch.rows  # noqa: B018 — eager materialization (A/B baseline)
                yield batch

    def _generate_grace(self, ctx, op, left, right, names,
                        budget) -> Iterator[TupleBatch]:
        """Grace hash join under a memory budget (batch form).

        Identical algorithm to the row engine's
        :meth:`~repro.exec.operators.HashJoin._generate_grace`, carried out on
        plain value dicts: the build side is held in memory until the budget
        trips, then both sides hash-partition to spill segments and each
        partition builds/probes/dedups independently (merged rows carry the
        join key, so per-partition ``seen`` sets are globally correct).
        """
        from repro.governor.spill import GracePartitioner

        stats = ctx.stats
        manager = ctx.governor.spill_manager()
        single = len(names) == 1

        def keyed(batch):
            values_list = batch.values_list()
            if single:
                return ((value, values_list[i])
                        for i, value in enumerate(batch.column(names[0]))
                        if value is not MISSING)
            columns = [batch.column(name) for name in names]
            return ((key, values_list[i])
                    for i, key in enumerate(zip(*columns))
                    if all(value is not MISSING for value in key))

        pairs: List[tuple] = []
        build_part = None
        for raw in right:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.guard_checks += count
            if build_part is None:
                pairs.extend(keyed(batch))
                size = sampled_size(pairs)
                op.note_memory(size)
                if size > budget:
                    build_part = GracePartitioner(manager, "join-build")
                    for key, values in pairs:
                        build_part.add(key, values)
                    pairs = []
            else:
                for key, values in keyed(batch):
                    build_part.add(key, values)

        if build_part is None:
            # Never crossed the budget: the ordinary in-memory probe.
            buckets: Dict = {}
            for key, values in pairs:
                buckets.setdefault(key, []).append(values)
            op.note_memory(sampled_size(buckets))
            return self._probe_emit(ctx, op, left, names, buckets)

        probe_part = GracePartitioner(manager, "join-probe")
        for raw in left:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.guard_checks += count
            for key, values in keyed(batch):
                probe_part.add(key, values)
        build_part.finish()
        probe_part.finish()

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            out_values: List[dict] = []
            out_hashes: List[int] = []
            for index in range(build_part.partitions):
                buckets: Dict = {}
                for key, values in build_part.segment(index):
                    buckets.setdefault(key, []).append(values)
                # accounting only: grace bounds held state at ~budget + one
                # partition's buckets, it does not re-enforce per partition
                op.note_memory(sampled_size(buckets))
                get = buckets.get
                seen = set()
                add_seen = seen.add
                for key, row_values in probe_part.segment(index):
                    partners = get(key)
                    if partners is None:
                        continue
                    stats.join_pairs_considered += len(partners)
                    for partner in partners:
                        merged = merge_values(row_values, partner)
                        dedup = frozenset(merged.items())
                        if dedup not in seen:
                            add_seen(dedup)
                            out_values.append(merged)
                            out_hashes.append(hash(dedup))
                            if len(out_values) >= size:
                                op.rows_out += len(out_values)
                                op.batches_out += 1
                                yield LazyBatch(out_values, out_hashes)
                                out_values, out_hashes = [], []
            if out_values:
                op.rows_out += len(out_values)
                op.batches_out += 1
                yield LazyBatch(out_values, out_hashes)

        return emit()


class BatchIndexLookupJoin(IndexLookupJoin):
    """⋈ probing a maintained hash index, with batch-column outer-side access
    and the same lazy column-merged output as :class:`BatchHashJoin`."""

    name = "batch-index-lookup-join"
    vectorized = True

    def __init__(self, outer, relation, on, lazy=True):
        super().__init__(outer, relation, on)
        #: see :class:`BatchHashJoin` — eager materialization for A/B baselines
        self.lazy = lazy

    def _generate(self, ctx, op, outer) -> Iterator[TupleBatch]:
        op.invocations += 1
        index = self._maintained_index(ctx)
        if index is not None:
            probe_attributes = index.attributes
            lookup = index.lookup
        else:
            # Degraded mode: one scan of the inner relation builds the buckets
            # (identical stats accounting to the row operator).
            probe_attributes = self.on
            buckets: Dict[tuple, List[FlexTuple]] = {}
            inner_rows = list(_resolve_relation(ctx.source, self.relation))
            ctx.stats.tuples_scanned += len(inner_rows)
            ctx.stats.guard_checks += len(inner_rows)
            for tup in inner_rows:
                if tup.is_defined_on(self.on):
                    buckets.setdefault(tuple(tup[a] for a in self.on), []).append(tup)
            ctx.enforce_memory(op, sampled_size(buckets))
            lookup = lambda probe: buckets.get(probe, ())  # noqa: E731

        probe_names = [a.name for a in probe_attributes]
        remaining = [a.name for a in (self.on - probe_attributes)]
        on_names = [a.name for a in self.on]

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            single = len(probe_names) == 1
            seen = set()
            add_seen = seen.add
            for raw in outer:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.guard_checks += count
                values_list = batch.values_list()
                out_values: List[dict] = []
                out_hashes: List[int] = []
                probe_columns = [batch.column(name) for name in probe_names]
                on_columns = [batch.column(name) for name in on_names]
                for i in range(count):
                    if not all(column[i] is not MISSING for column in on_columns):
                        continue
                    if single:
                        probe = (probe_columns[0][i],)
                    else:
                        probe = tuple(column[i] for column in probe_columns)
                    partners = lookup(probe)
                    stats.join_pairs_considered += len(partners)
                    if not partners:
                        continue
                    row_values = values_list[i]
                    for partner in partners:
                        partner_values = partner._values
                        if remaining:
                            if any(partner_values.get(name, MISSING) != row_values[name]
                                   for name in remaining):
                                continue
                        merged = merge_values(row_values, partner_values)
                        dedup = frozenset(merged.items())
                        if dedup not in seen:
                            add_seen(dedup)
                            out_values.append(merged)
                            out_hashes.append(hash(dedup))
                if out_values:
                    op.rows_out += len(out_values)
                    op.batches_out += 1
                    batch = LazyBatch(out_values, out_hashes)
                    if not self.lazy:
                        batch.rows  # noqa: B018 — eager materialization (A/B baseline)
                    yield batch

        return emit()


class BatchMultiwayJoin(MultiwayJoinOp):
    """The multiway join restoring vertical decompositions, value-dict form.

    The master and each dependent fragment are drained into content-keyed dict
    tables (batch streams, bulk ``rows_in`` accounting); each merge stage then
    works purely on value dicts — master rows without a partner pass through
    unchanged, exactly like the row operator — and the final table is emitted
    as :class:`LazyBatch` chunks.  Across an n-way restoration this avoids
    building every intermediate merged ``FlexTuple`` once per stage.
    """

    name = "batch-multiway-join"
    vectorized = True

    def _generate(self, ctx, op, master, *fragments) -> Iterator[TupleBatch]:
        op.invocations += 1
        stats = ctx.stats
        on_names = [a.name for a in self.on]
        single = len(on_names) == 1
        on_name = on_names[0] if single else None

        def drain(stream):
            # Parallel (values, hashes) lists; every input stream is distinct
            # by the operator contract, so no content keys are rebuilt here.
            all_values: List = []
            all_hashes: List = []
            for raw in stream:
                batch = TupleBatch.of(raw)
                op.rows_in += len(batch)
                all_values.extend(batch.values_list())
                all_hashes.extend(batch.hashes_list())
            return all_values, all_hashes

        current_values, current_hashes = drain(master)
        ctx.enforce_memory(op, sampled_size(current_values))
        for stream in fragments:
            fragment_values, _fragment_hashes = drain(stream)
            buckets: Dict = {}
            setdefault = buckets.setdefault
            for values in fragment_values:
                if single:
                    if on_name in values:
                        setdefault(values[on_name], []).append(values)
                elif all(name in values for name in on_names):
                    setdefault(tuple(values[name] for name in on_names),
                               []).append(values)
            get = buckets.get
            # Pass-through rows stay distinct (they were), and can never equal
            # a merged row (their join-key bucket was empty or they lack a join
            # attribute a merged row has) — only merged rows need the seen-set.
            out_values: List = []
            out_hashes: List = []
            append_values = out_values.append
            append_hashes = out_hashes.append
            seen_merged = set()
            add_seen = seen_merged.add
            for values, hash_ in zip(current_values, current_hashes):
                if single:
                    key = values.get(on_name, MISSING)
                    partners = None if key is MISSING else get(key)
                else:
                    if all(name in values for name in on_names):
                        partners = get(tuple(values[name] for name in on_names))
                    else:
                        partners = None
                if partners is None:
                    append_values(values)
                    append_hashes(hash_)
                    continue
                stats.join_pairs_considered += len(partners)
                for partner in partners:
                    combined = merge_values(values, partner)
                    dedup = frozenset(combined.items())
                    if dedup not in seen_merged:
                        add_seen(dedup)
                        append_values(combined)
                        append_hashes(hash(dedup))
            ctx.enforce_memory(op, sampled_size(buckets))
            current_values, current_hashes = out_values, out_hashes
            ctx.enforce_memory(op, sampled_size(current_values))

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            for start in range(0, len(current_values), size):
                chunk_values = current_values[start:start + size]
                op.rows_out += len(chunk_values)
                op.batches_out += 1
                yield LazyBatch(chunk_values,
                                current_hashes[start:start + size])

        return emit()


class BatchHashAggregate(HashAggregateOp):
    """γ over batches: group ids and aggregate states updated column-at-a-time.

    Every input batch makes one key-extraction pass (group columns) and then
    one tight loop per aggregate spec over ``(group ids × spec column)`` — see
    :class:`~repro.exec.compiled.CompiledAggregates`.  Outputs are value dicts
    (group outputs are pairwise distinct, so no hashes or dedup are needed)
    emitted as :class:`LazyBatch` chunks.
    """

    name = "batch-hash-aggregate"
    vectorized = True

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        budget = ctx.spill_budget()
        if budget is not None:
            return self._generate_spilled(ctx, op, child, budget)
        compiled = CompiledAggregates(self.group_by, self.specs)
        stats = ctx.stats
        governed = (ctx.governor is not None
                    and ctx.governor.memory_budget is not None)
        for raw in child:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.tuples_scanned += count
            compiled.update(batch)
            if governed:
                ctx.enforce_memory(op, sampled_size(compiled.key_to_gid)
                                   + sampled_size(compiled.sizes))
        op.note_memory(sampled_size(compiled.key_to_gid)
                       + sampled_size(compiled.sizes))
        out_values = compiled.results()

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            for start in range(0, len(out_values), size):
                chunk = out_values[start:start + size]
                op.rows_out += len(chunk)
                op.batches_out += 1
                yield LazyBatch(chunk)

        return emit()

    def _generate_spilled(self, ctx, op, child, budget) -> Iterator[TupleBatch]:
        """γ under a memory budget: the row-style partition-and-merge
        aggregator over value dicts (the compiled column-at-a-time kernel has
        no partial-state eviction, so a budgeted run trades it away)."""
        from repro.governor.spill import SpillingAggregator

        accumulator = AggregateAccumulator(self.specs)
        spiller = SpillingAggregator(
            ctx.governor.spill_manager(), accumulator, self.group_by,
            budget, op.note_memory)
        stats = ctx.stats
        for raw in child:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.tuples_scanned += count
            for values in batch.values_list():
                spiller.add(values)
            spiller.maybe_spill()

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            chunk: List[dict] = []
            for values in spiller.results():
                chunk.append(values)
                if len(chunk) >= size:
                    op.rows_out += len(chunk)
                    op.batches_out += 1
                    yield LazyBatch(chunk)
                    chunk = []
            if chunk:
                op.rows_out += len(chunk)
                op.batches_out += 1
                yield LazyBatch(chunk)

        return emit()


class BatchSort(SortOp):
    """τ over batches: drained into parallel (values, hash) pairs, sorted on
    the shared :func:`row_order_key`, re-emitted lazily.  Like the row form it
    holds the entire input — the full-materialization ``peak_bytes`` contrast
    to :class:`BatchTopK`."""

    name = "batch-sort"
    vectorized = True

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        budget = ctx.spill_budget()
        if budget is not None:
            return self._generate_spilled(ctx, op, child, budget)
        stats = ctx.stats
        governed = (ctx.governor is not None
                    and ctx.governor.memory_budget is not None)
        pairs: List[tuple] = []
        extend = pairs.extend
        for raw in child:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.tuples_scanned += count
            extend(zip(batch.values_list(), batch.hashes_list()))
            if governed:
                ctx.enforce_memory(op, sampled_size(pairs))
        op.note_memory(sampled_size(pairs))
        keys = self.keys
        pairs.sort(key=lambda pair: row_order_key(pair[0], keys))
        if self.limit is not None:
            del pairs[self.limit:]

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            for start in range(0, len(pairs), size):
                chunk = pairs[start:start + size]
                op.rows_out += len(chunk)
                op.batches_out += 1
                yield LazyBatch([pair[0] for pair in chunk],
                                [pair[1] for pair in chunk])

        return emit()

    def _generate_spilled(self, ctx, op, child, budget) -> Iterator[TupleBatch]:
        """τ under a memory budget: batches drain into an external merge sort
        as the same ``(values, hash)`` pairs the in-memory form sorts."""
        from itertools import islice

        from repro.governor.spill import ExternalSorter

        stats = ctx.stats
        keys = self.keys
        sorter = ExternalSorter(
            ctx.governor.spill_manager(),
            key=lambda pair: row_order_key(pair[0], keys),
            budget=budget, note=op.note_memory)
        for raw in child:
            batch = TupleBatch.of(raw)
            count = len(batch)
            op.rows_in += count
            stats.tuples_scanned += count
            sorter.extend(zip(batch.values_list(), batch.hashes_list()))
            sorter.maybe_spill()
        merged = sorter.merged()
        if self.limit is not None:
            merged = islice(merged, self.limit)

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            out_values: List[dict] = []
            out_hashes: List[int] = []
            for values, hash_ in merged:
                out_values.append(values)
                out_hashes.append(hash_)
                if len(out_values) >= size:
                    op.rows_out += len(out_values)
                    op.batches_out += 1
                    yield LazyBatch(out_values, out_hashes)
                    out_values, out_hashes = [], []
            if out_values:
                op.rows_out += len(out_values)
                op.batches_out += 1
                yield LazyBatch(out_values, out_hashes)

        return emit()


class BatchTopK(TopKOp):
    """λ∘τ over batches: the input streams through ``heapq.nsmallest`` as
    (values, hash) pairs — at most ``count`` pairs held, same bounded
    ``peak_bytes`` guarantee as the row form."""

    name = "batch-top-k"
    vectorized = True

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        stats = ctx.stats

        def pairs() -> Iterator[tuple]:
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.tuples_scanned += count
                yield from zip(batch.values_list(), batch.hashes_list())

        best = top_k_rows(pairs(), self.count, self.keys,
                          key_of=lambda pair: pair[0])
        ctx.enforce_memory(op, sampled_size(best))

        def emit() -> Iterator[TupleBatch]:
            size = ctx.batch_size
            for start in range(0, len(best), size):
                chunk = best[start:start + size]
                op.rows_out += len(chunk)
                op.batches_out += 1
                yield LazyBatch([pair[0] for pair in chunk],
                                [pair[1] for pair in chunk])

        return emit()


class BatchSubqueryExtend(SubqueryExtendOp):
    """ε (scalar subquery) over batches: the drain-child-then-subquery error
    ordering is inherited from the row operator; only the final extension pass
    is batch-wise — one presence test per batch, extended value dicts out."""

    name = "batch-subquery-extend"
    vectorized = True

    def _emit(self, ctx, op, batches, value) -> Iterator[TupleBatch]:
        compiled = (None if value is _NO_VALUE
                    else CompiledExtension(self.attribute, value))

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in batches:
                batch = TupleBatch.of(raw)
                count = len(batch)
                if not count:
                    continue
                stats.tuples_scanned += count
                op.rows_out += count
                op.batches_out += 1
                if compiled is None:
                    yield batch
                else:
                    yield LazyBatch(compiled.transform(batch))

        return emit()
