"""Vectorized (batch-at-a-time) forms of the hot physical operators.

Each class here subclasses its row-engine counterpart from
:mod:`repro.exec.operators` — plans mix both modes freely, ``isinstance`` checks
written against the row classes keep working, and ``explain`` labels stay
comparable — but the ``_generate`` implementations process whole
:class:`~repro.model.batches.TupleBatch` objects instead of touching tuples one
at a time:

* predicates and type guards are compiled **once per plan node**
  (:mod:`repro.exec.compiled`) and run as tight loops / bitmap tests over column
  arrays;
* the :class:`~repro.algebra.evaluator.ExecutionStats` counters are maintained
  in bulk (``+= len(batch)``) with exactly the per-tuple semantics the row
  engine documents — the totals are identical, only the bookkeeping is
  amortized;
* hash-join build and probe read the join columns as flat arrays, so the
  per-tuple ``is_defined_on``/key-construction machinery disappears from the
  inner loops; variant records missing a join attribute are skipped via the
  presence bitmap and counted as guard checks, exactly like the row engine's
  guard-aware partitioning.

Operators without a batch form (unions, difference, products, multiway joins,
nested-loop joins, natural joins whose attribute set is data-dependent) keep
running in row mode inside the same plan; batches and row lists interoperate in
both directions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.algebra.evaluator import _resolve_relation
from repro.errors import AlgebraError
from repro.exec.compiled import CompiledGuard, CompiledPredicate
from repro.exec.operators import (
    FilterOp,
    GuardOp,
    HashJoin,
    IndexLookupJoin,
    ProjectOp,
    Scan,
)
from repro.model.batches import MISSING, TupleBatch
from repro.model.tuples import FlexTuple


class BatchScan(Scan):
    """Index-aware scan emitting :class:`TupleBatch` chunks with compiled filters."""

    name = "batch-scan"
    vectorized = True

    def __init__(self, relation, predicate=None, guard=None, equalities=None):
        super().__init__(relation, predicate=predicate, guard=guard,
                         equalities=equalities)
        self._compiled_guard = (CompiledGuard(self.guard)
                                if self.guard is not None else None)
        self._compiled = (CompiledPredicate(self.predicate)
                          if self.predicate is not None else None)

    def _generate(self, ctx, op) -> Iterator[TupleBatch]:
        op.invocations += 1
        picked = self._pick_index(ctx)
        if picked is not None:
            index, probe = picked
            rows = list(index.lookup(probe))
        else:
            rows = list(_resolve_relation(ctx.source, self.relation))

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            size = ctx.batch_size
            for start in range(0, len(rows), size):
                batch = TupleBatch(rows[start:start + size])
                count = len(batch)
                stats.tuples_scanned += count
                op.rows_in += count
                indices = None
                if self._compiled_guard is not None:
                    stats.guard_checks += count
                    indices = self._compiled_guard.select(batch)
                if self._compiled is not None:
                    stats.predicate_evaluations += (
                        count if indices is None else len(indices))
                    indices = self._compiled.select(batch, indices)
                if indices is not None:
                    if len(indices) != count:
                        batch = batch.take(indices)
                    if not len(batch):
                        continue
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchFilter(FilterOp):
    """σ over batches: the predicate compiled once, applied as narrowing passes."""

    name = "batch-filter"
    vectorized = True

    def __init__(self, child, predicate):
        super().__init__(child, predicate)
        self._compiled = CompiledPredicate(predicate)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.predicate_evaluations += count
                indices = self._compiled.select(batch)
                if len(indices) != count:
                    if not indices:
                        continue
                    batch = batch.take(indices)
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchGuard(GuardOp):
    """TG[X] over batches: one presence-bitmap AND per batch."""

    name = "batch-guard"
    vectorized = True

    def __init__(self, child, attributes):
        super().__init__(child, attributes)
        self._compiled = CompiledGuard(self.attributes)

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.guard_checks += count
                indices = self._compiled.select(batch)
                if len(indices) != count:
                    if not indices:
                        continue
                    batch = batch.take(indices)
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch

        return emit()


class BatchProject(ProjectOp):
    """π over batches: projected sub-tuples built from pre-extracted columns."""

    name = "batch-project"
    vectorized = True

    def _generate(self, ctx, op, child) -> Iterator[TupleBatch]:
        op.invocations += 1
        names = [a.name for a in self.attributes]

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            seen = set()
            add_seen = seen.add
            for raw in child:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.tuples_scanned += count
                columns = [batch.column(name) for name in names]
                out: List[FlexTuple] = []
                append = out.append
                for i in range(count):
                    items = {}
                    for name, values in zip(names, columns):
                        value = values[i]
                        if value is not MISSING:
                            items[name] = value
                    if not items:
                        continue
                    projected = FlexTuple(items)
                    if projected not in seen:
                        add_seen(projected)
                        append(projected)
                if out:
                    op.rows_out += len(out)
                    op.batches_out += 1
                    yield TupleBatch(out)

        return emit()


def _build_buckets(op, ctx, stream, names) -> Dict:
    """Drain a build-side batch stream into join-key buckets.

    Rows lacking a join attribute are partitioned out via the presence bitmap
    and cost one guard check each (they can never join) — identical to the row
    engine's guard-aware partitioning.  Single-attribute joins key buckets by
    the bare value, multi-attribute joins by the value tuple.
    """
    stats = ctx.stats
    buckets: Dict = {}
    setdefault = buckets.setdefault
    single = len(names) == 1
    for raw in stream:
        batch = TupleBatch.of(raw)
        count = len(batch)
        op.rows_in += count
        stats.guard_checks += count
        rows = batch.rows
        if single:
            for i, value in enumerate(batch.column(names[0])):
                if value is not MISSING:
                    setdefault(value, []).append(rows[i])
        else:
            columns = [batch.column(name) for name in names]
            for i, key in enumerate(zip(*columns)):
                if all(value is not MISSING for value in key):
                    setdefault(key, []).append(rows[i])
    return buckets


class BatchHashJoin(HashJoin):
    """⋈ by build/probe over batch columns (statically known join attributes).

    The natural-join case whose attribute set depends on the data (``on=None``)
    has no batch form — it must materialize both sides to discover the shared
    attributes — and stays on the row implementation.
    """

    name = "batch-hash-join"
    vectorized = True

    def __init__(self, left, right, on=None):
        super().__init__(left, right, on=on)
        if self.on is None or not len(self.on):
            raise AlgebraError("a batch hash join needs static join attributes")

    def _generate(self, ctx, op, left, right) -> Iterator[TupleBatch]:
        op.invocations += 1
        names = [a.name for a in self.on]
        buckets = _build_buckets(op, ctx, right, names)

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            get = buckets.get
            single = len(names) == 1
            seen = set()
            add_seen = seen.add
            for raw in left:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.guard_checks += count
                rows = batch.rows
                out: List[FlexTuple] = []
                append = out.append
                if single:
                    probes = enumerate(batch.column(names[0]))
                else:
                    columns = [batch.column(name) for name in names]
                    probes = enumerate(zip(*columns))
                for i, key in probes:
                    if single:
                        if key is MISSING:
                            continue
                    elif not all(value is not MISSING for value in key):
                        continue
                    partners = get(key)
                    if partners is None:
                        continue
                    stats.join_pairs_considered += len(partners)
                    row = rows[i]
                    for partner in partners:
                        merged = row.merge(partner)
                        if merged not in seen:
                            add_seen(merged)
                            append(merged)
                if out:
                    op.rows_out += len(out)
                    op.batches_out += 1
                    yield TupleBatch(out)

        return emit()


class BatchIndexLookupJoin(IndexLookupJoin):
    """⋈ probing a maintained hash index, with batch-column outer-side access."""

    name = "batch-index-lookup-join"
    vectorized = True

    def _generate(self, ctx, op, outer) -> Iterator[TupleBatch]:
        op.invocations += 1
        index = self._maintained_index(ctx)
        if index is not None:
            probe_attributes = index.attributes
            lookup = index.lookup
        else:
            # Degraded mode: one scan of the inner relation builds the buckets
            # (identical stats accounting to the row operator).
            probe_attributes = self.on
            buckets: Dict[tuple, List[FlexTuple]] = {}
            inner_rows = list(_resolve_relation(ctx.source, self.relation))
            ctx.stats.tuples_scanned += len(inner_rows)
            ctx.stats.guard_checks += len(inner_rows)
            for tup in inner_rows:
                if tup.is_defined_on(self.on):
                    buckets.setdefault(tuple(tup[a] for a in self.on), []).append(tup)
            lookup = lambda probe: buckets.get(probe, ())  # noqa: E731

        probe_names = [a.name for a in probe_attributes]
        remaining = self.on - probe_attributes
        on_names = [a.name for a in self.on]

        def emit() -> Iterator[TupleBatch]:
            stats = ctx.stats
            single = len(probe_names) == 1
            seen = set()
            add_seen = seen.add
            for raw in outer:
                batch = TupleBatch.of(raw)
                count = len(batch)
                op.rows_in += count
                stats.guard_checks += count
                rows = batch.rows
                out: List[FlexTuple] = []
                append = out.append
                probe_columns = [batch.column(name) for name in probe_names]
                on_columns = [batch.column(name) for name in on_names]
                for i in range(count):
                    if not all(column[i] is not MISSING for column in on_columns):
                        continue
                    if single:
                        probe = (probe_columns[0][i],)
                    else:
                        probe = tuple(column[i] for column in probe_columns)
                    partners = lookup(probe)
                    stats.join_pairs_considered += len(partners)
                    if not partners:
                        continue
                    row = rows[i]
                    for partner in partners:
                        if remaining:
                            if not partner.is_defined_on(remaining):
                                continue
                            if any(partner[a] != row[a] for a in remaining):
                                continue
                        merged = row.merge(partner)
                        if merged not in seen:
                            add_seen(merged)
                            append(merged)
                if out:
                    op.rows_out += len(out)
                    op.batches_out += 1
                    yield TupleBatch(out)

        return emit()
