"""The physical executor: plan, cache, run.

:class:`PhysicalExecutor` is the session-level entry point the engine uses.  It
owns a :class:`PhysicalPlanner` and an LRU :class:`PlanCache` keyed on
``(expression structure, catalog version)``: hot queries are lowered once and the
cached plan is reused until the schema changes.  Plans resolve relations and
indexes at *execution* time, so cached plans stay correct across DML — data
changes can at worst make a cached join-algorithm choice suboptimal, never wrong.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.algebra.evaluator import ExecutionStats
from repro.algebra.expressions import Expression
from repro.exec.context import DEFAULT_BATCH_SIZE
from repro.exec.planner import (
    PhysicalPlan,
    PhysicalPlanner,
    PhysicalResult,
    expression_key,
)


class PlanCache:
    """A small LRU cache of physical plans."""

    def __init__(self, max_size: int = 128):
        self.max_size = max(1, int(max_size))
        self._plans: "OrderedDict[tuple, PhysicalPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key) -> Optional[PhysicalPlan]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key, plan: PhysicalPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.max_size:
            self._plans.popitem(last=False)

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return "PlanCache(size={}, hits={}, misses={})".format(
            len(self._plans), self.hits, self.misses
        )


def _catalog_version(source) -> object:
    """The source's schema version, or ``None`` for versionless sources (dicts)."""
    return getattr(source, "catalog_version", None)


def _statistics_version(source) -> object:
    """The source's statistics version (plans depend on the estimates they were
    chosen under, so a re-ANALYZE or a fresh→stale transition must re-plan)."""
    return getattr(source, "statistics_version", None)


class PhysicalExecutor:
    """Executes logical expressions through cached physical plans.

    ``source`` is a :class:`repro.engine.Database` or any relation source the
    evaluator accepts; databases additionally contribute their catalog version to
    the cache key and their hash indexes to scans.
    """

    def __init__(self, source, planner: Optional[PhysicalPlanner] = None,
                 cache_size: int = 128, batch_size: int = DEFAULT_BATCH_SIZE,
                 use_indexes: bool = True):
        self.source = source
        self.planner = planner if planner is not None else PhysicalPlanner(source=source)
        self.cache = PlanCache(cache_size)
        self.batch_size = batch_size
        self.use_indexes = use_indexes

    def plan(self, expression: Expression) -> PhysicalPlan:
        """The (possibly cached) physical plan for ``expression``."""
        key = (expression_key(expression), _catalog_version(self.source),
               _statistics_version(self.source))
        plan = self.cache.get(key)
        if plan is None:
            plan = self.planner.plan(expression)
            self.cache.put(key, plan)
        return plan

    def execute(self, expression: Expression,
                stats: Optional[ExecutionStats] = None) -> PhysicalResult:
        """Plan (or fetch from cache) and run ``expression``."""
        plan = self.plan(expression)
        return plan.execute(self.source, stats=stats, batch_size=self.batch_size,
                            use_indexes=self.use_indexes)

    def __repr__(self) -> str:
        return "PhysicalExecutor({!r})".format(self.cache)
