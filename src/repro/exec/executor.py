"""The physical executor: plan, cache, run.

:class:`PhysicalExecutor` is the session-level entry point the engine uses.  It
owns a :class:`PhysicalPlanner` and an LRU :class:`PlanCache` keyed on
``(expression structure, execution mode, effective batch-size request,
join-search mode, batch-forms setting, catalog version, statistics version,
feedback version)``:
hot queries are lowered once and the cached plan is reused until the schema,
the statistics or the cardinality-feedback store change (or the join-order
search strategy is switched — plans chosen by different searches must not
shadow each other; likewise a plan built and batch-sized for one requested
size is never reused for another).  Plans resolve relations and indexes at *execution* time,
so cached plans stay correct across DML — data changes can at worst make a
cached join-algorithm choice suboptimal, never wrong.  The cache's hit/miss
counters are exposed as :attr:`PhysicalExecutor.cache_hits` /
:attr:`~PhysicalExecutor.cache_misses` (and :meth:`PhysicalExecutor.cache_info`)
and rendered by ``Database.explain``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.algebra.evaluator import ExecutionStats
from repro.algebra.expressions import Expression
from repro.exec.planner import (
    PhysicalPlan,
    PhysicalPlanner,
    PhysicalResult,
    expression_key,
)
from repro.obs.trace import tracer_of


class PlanCache:
    """A small LRU cache of physical plans."""

    def __init__(self, max_size: int = 128):
        self.max_size = max(1, int(max_size))
        self._plans: "OrderedDict[tuple, PhysicalPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key) -> Optional[PhysicalPlan]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key, plan: PhysicalPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.max_size:
            self._plans.popitem(last=False)

    def clear(self) -> None:
        self._plans.clear()

    def evict(self, predicate) -> int:
        """Drop every cached plan whose key satisfies ``predicate``; returns count."""
        doomed = [key for key in self._plans if predicate(key)]
        for key in doomed:
            del self._plans[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return "PlanCache(size={}, hits={}, misses={})".format(
            len(self._plans), self.hits, self.misses
        )


def _catalog_version(source) -> object:
    """The source's schema version, or ``None`` for versionless sources (dicts)."""
    return getattr(source, "catalog_version", None)


def _statistics_version(source) -> object:
    """The source's statistics version (plans depend on the estimates they were
    chosen under, so a re-ANALYZE or a fresh→stale transition must re-plan)."""
    return getattr(source, "statistics_version", None)


def _feedback_version(source) -> object:
    """The source's cardinality-feedback version (a new or changed observation
    can flip the plan the cost model would choose, so it must re-plan; an
    unchanged store keeps the cache hot)."""
    return getattr(source, "feedback_version", None)


class PhysicalExecutor:
    """Executes logical expressions through cached physical plans.

    ``source`` is a :class:`repro.engine.Database` or any relation source the
    evaluator accepts; databases additionally contribute their catalog version to
    the cache key and their hash indexes to scans.
    """

    def __init__(self, source, planner: Optional[PhysicalPlanner] = None,
                 cache_size: int = 128, batch_size: Optional[int] = None,
                 use_indexes: bool = True, vectorize: bool = True,
                 join_order_search: Optional[str] = None):
        self.source = source
        if planner is None:
            kwargs = {}
            if join_order_search is not None:
                kwargs["join_order_search"] = join_order_search
            planner = PhysicalPlanner(source=source, vectorize=vectorize, **kwargs)
        elif (join_order_search is not None
              and join_order_search != planner.join_order_search):
            raise ValueError(
                "conflicting join_order_search: executor got {!r} but the "
                "supplied planner uses {!r} — configure the planner instead"
                .format(join_order_search, planner.join_order_search))
        self.planner = planner
        self.cache = PlanCache(cache_size)
        #: ``None`` lets the planner pick the adaptive batch size per plan
        self.batch_size = batch_size
        self.use_indexes = use_indexes
        self.vectorize = vectorize

    @property
    def cache_hits(self) -> int:
        """Plan-cache hits since this executor was created."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Plan-cache misses (each one planned an expression from scratch)."""
        return self.cache.misses

    def cache_info(self) -> Dict[str, int]:
        """The plan-cache counters as a plain dict (rendered by explain output)."""
        return {"hits": self.cache.hits, "misses": self.cache.misses,
                "size": len(self.cache), "max_size": self.cache.max_size}

    def evict_plans_after(self, statistics_version: int,
                          feedback_version: int) -> int:
        """Drop plans cached under versions newer than the given ones.

        Called by transaction rollback before it winds the statistics and
        feedback version counters back: versions bumped inside the rolled-back
        transaction will be handed out again for *different* future states, so
        any plan cached under them must not survive to alias those states.
        """
        def too_new(key) -> bool:
            cached_statistics, cached_feedback = key[6], key[7]
            return ((isinstance(cached_statistics, int)
                     and cached_statistics > statistics_version)
                    or (isinstance(cached_feedback, int)
                        and cached_feedback > feedback_version))

        return self.cache.evict(too_new)

    def plan(self, expression: Expression,
             vectorize: Optional[bool] = None,
             batch_size: Optional[int] = None) -> PhysicalPlan:
        """The (possibly cached) physical plan for ``expression``.

        ``vectorize`` overrides the executor's default execution mode for this
        plan; ``batch_size`` the executor's default batch size (``None`` lets
        the planner size batches adaptively).  The cache key includes the
        *effective* batch-size request, so a plan built (and sized) for one
        batch size is never reused when the caller asks for another.
        """
        effective = self.vectorize if vectorize is None else vectorize
        requested = self.batch_size if batch_size is None else batch_size
        key = (expression_key(expression), effective, requested,
               getattr(self.planner, "join_order_search", None),
               getattr(self.planner, "batch_forms", "all"),
               _catalog_version(self.source), _statistics_version(self.source),
               _feedback_version(self.source))
        tracer = tracer_of(self.source)
        plan = self.cache.get(key)
        if plan is None:
            if tracer is not None:
                tracer.event("plan-cache-miss", hits=self.cache.hits,
                             misses=self.cache.misses)
            plan = self.planner.plan(expression, vectorize=effective,
                                     batch_size=requested)
            self.cache.put(key, plan)
        elif tracer is not None:
            tracer.event("plan-cache-hit", hits=self.cache.hits,
                         misses=self.cache.misses)
        return plan

    def execute(self, expression: Expression,
                stats: Optional[ExecutionStats] = None,
                vectorize: Optional[bool] = None,
                batch_size: Optional[int] = None,
                governor=None) -> PhysicalResult:
        """Plan (or fetch from cache) and run ``expression``.

        The plan carries its batch-size decision (adaptive or requested), so no
        separate size is passed at execution time.  ``governor`` bounds the
        execution (see :mod:`repro.governor`).
        """
        plan = self.plan(expression, vectorize=vectorize, batch_size=batch_size)
        return plan.execute(self.source, stats=stats,
                            use_indexes=self.use_indexes, governor=governor)

    def __repr__(self) -> str:
        return "PhysicalExecutor({!r})".format(self.cache)
