"""One-time compilation of selection predicates and type guards to batch closures.

The row engine re-interprets a :class:`~repro.algebra.predicates.Predicate` tree
for every tuple: each evaluation re-resolves attribute names, re-looks-up the
comparison operator and re-dispatches through the predicate class hierarchy.
This module performs that structural work **once per plan node** and produces a
closure that runs over the column arrays of a :class:`~repro.model.batches.TupleBatch`:

* :class:`CompiledPredicate` — ``select(batch, indices)`` returns the indices of
  the rows satisfying the predicate, narrowing an optional candidate list
  (``None`` means "all rows").  Conjunctions compile into a chain of narrowing
  passes over a selection vector; ``TRUE``/``FALSE`` operands are constant-folded
  away at compile time; comparisons run as tight loops over one column with the
  ``operator``-module function resolved ahead of time.
* :class:`CompiledGuard` — the type guard ``TG[X]`` as a bitmap test: AND the
  presence bitmaps of the guarded attributes, then enumerate the set bits.

Semantics are identical to interpreted evaluation (the differential parity suite
enforces it): a comparison over a ``MISSING`` value is false, a ``TypeError``
from an incomparable pair is false, any other exception propagates.  The
comparison loops optimistically run without a per-row ``try`` and redo the batch
carefully only when a ``TypeError`` actually occurs — mixed-type columns are the
exception, not the rule.

Predicate classes this module does not know (user-defined subclasses) degrade to
calling ``predicate.evaluate(row)`` per row, so compilation never changes what a
plan can express.
"""

from __future__ import annotations

from math import fsum
from typing import Callable, List, Optional, Sequence

from repro.algebra.analytic import _check_numeric, group_values, value_order_key
from repro.algebra.predicates import (
    _OPERATORS,
    And,
    AttributeComparison,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    PresencePredicate,
    TruePredicate,
)
from repro.errors import TupleError
from repro.model.attributes import attrset
from repro.model.batches import MISSING, TupleBatch, mask_indices

#: a narrowing pass: (batch, candidate indices or None) -> surviving indices
Narrower = Callable[[TupleBatch, Optional[Sequence[int]]], List[int]]


def _candidates(batch: TupleBatch, indices: Optional[Sequence[int]]):
    return range(len(batch)) if indices is None else indices


# -- per-row closures (the general path, used under OR / NOT) ---------------------------


def _bind_rowfn(predicate: Predicate, batch: TupleBatch) -> Callable[[int], bool]:
    """A per-row boolean closure over ``batch`` for one predicate node."""
    if isinstance(predicate, TruePredicate):
        return lambda i: True
    if isinstance(predicate, FalsePredicate):
        return lambda i: False
    if isinstance(predicate, Comparison):
        name = next(iter(predicate.attribute)).name
        op = _OPERATORS[predicate.op]
        constant = predicate.value
        values = batch.column(name)

        def compare(i: int) -> bool:
            value = values[i]
            if value is MISSING:
                return False
            try:
                return bool(op(value, constant))
            except TypeError:
                return False

        return compare
    if isinstance(predicate, AttributeComparison):
        left_name = next(iter(predicate.left)).name
        right_name = next(iter(predicate.right)).name
        op = _OPERATORS[predicate.op]
        left_values = batch.column(left_name)
        right_values = batch.column(right_name)

        def compare_attrs(i: int) -> bool:
            left, right = left_values[i], right_values[i]
            if left is MISSING or right is MISSING:
                return False
            try:
                return bool(op(left, right))
            except TypeError:
                return False

        return compare_attrs
    if isinstance(predicate, PresencePredicate):
        mask = batch.presence_mask([a.name for a in predicate.attributes])
        return lambda i: bool((mask >> i) & 1)
    if isinstance(predicate, And):
        bound = [_bind_rowfn(operand, batch) for operand in predicate.operands]
        return lambda i: all(fn(i) for fn in bound)
    if isinstance(predicate, Or):
        bound = [_bind_rowfn(operand, batch) for operand in predicate.operands]
        return lambda i: any(fn(i) for fn in bound)
    if isinstance(predicate, Not):
        inner = _bind_rowfn(predicate.operand, batch)
        return lambda i: not inner(i)
    # Unknown predicate subclass: interpret against the row objects.
    rows = batch.rows
    return lambda i: bool(predicate.evaluate(rows[i]))


# -- narrowing passes (the vectorized path) ---------------------------------------------


def _compile_comparison(predicate: Comparison) -> Narrower:
    name = next(iter(predicate.attribute)).name
    op = _OPERATORS[predicate.op]
    constant = predicate.value

    def narrow(batch: TupleBatch, indices: Optional[Sequence[int]]) -> List[int]:
        values = batch.column(name)
        try:
            if indices is None:
                return [i for i, value in enumerate(values)
                        if value is not MISSING and op(value, constant)]
            return [i for i in indices
                    if values[i] is not MISSING and op(values[i], constant)]
        except TypeError:
            candidates = _candidates(batch, indices)
            # A mixed-type column hit an incomparable pair: redo this batch with
            # the per-row guard (that row is simply false, as in the row engine).
            survivors: List[int] = []
            append = survivors.append
            for i in candidates:
                value = values[i]
                if value is MISSING:
                    continue
                try:
                    if op(value, constant):
                        append(i)
                except TypeError:
                    pass
            return survivors

    return narrow


def _compile_presence(names: List[str]) -> Narrower:
    def narrow(batch: TupleBatch, indices: Optional[Sequence[int]]) -> List[int]:
        if len(names) == 1:
            values = batch.column(names[0])
            if indices is None:
                return [i for i, value in enumerate(values) if value is not MISSING]
            return [i for i in indices if values[i] is not MISSING]
        mask = batch.presence_mask(names)
        if indices is None:
            if mask == batch.full_mask:
                return list(range(len(batch)))
            return mask_indices(mask)
        return [i for i in indices if (mask >> i) & 1]

    return narrow


def _compile_rowwise(predicate: Predicate) -> Narrower:
    def narrow(batch: TupleBatch, indices: Optional[Sequence[int]]) -> List[int]:
        rowfn = _bind_rowfn(predicate, batch)
        return [i for i in _candidates(batch, indices) if rowfn(i)]

    return narrow


def _compile(predicate: Predicate) -> List[Narrower]:
    """Compile a predicate into a chain of narrowing passes (constant-folded)."""
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        passes: List[Narrower] = []
        for operand in predicate.operands:
            if isinstance(operand, FalsePredicate):
                return [lambda batch, indices: []]
            passes.extend(_compile(operand))
        return passes
    if isinstance(predicate, FalsePredicate):
        return [lambda batch, indices: []]
    if isinstance(predicate, Comparison):
        return [_compile_comparison(predicate)]
    if isinstance(predicate, PresencePredicate):
        return [_compile_presence([a.name for a in predicate.attributes])]
    return [_compile_rowwise(predicate)]


class CompiledPredicate:
    """A predicate compiled once into narrowing passes over batch columns."""

    __slots__ = ("predicate", "_passes")

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self._passes = _compile(predicate)

    def select(self, batch: TupleBatch,
               indices: Optional[Sequence[int]] = None) -> List[int]:
        """Indices of the rows (among ``indices``, or all) satisfying the predicate."""
        for narrow in self._passes:
            indices = narrow(batch, indices)
            if not indices:
                return indices if isinstance(indices, list) else list(indices)
        if indices is None:
            return list(range(len(batch)))
        return indices if isinstance(indices, list) else list(indices)

    def __repr__(self) -> str:
        return "CompiledPredicate({!r}, passes={})".format(self.predicate, len(self._passes))


class CompiledExtension:
    """The ε operator compiled to a whole-batch value-dict transform.

    One presence-bitmap test per batch replaces the per-tuple "attribute already
    present" check of :meth:`FlexTuple.extend` (the error semantics are
    identical — the row engine raises on the first offending tuple of a batch,
    this raises on the batch containing it), and the output is a list of
    extended value dicts ready for a lazy batch — no tuples are built.
    """

    __slots__ = ("attribute", "value")

    def __init__(self, attribute: str, value):
        self.attribute = attribute
        self.value = value

    def transform(self, batch: TupleBatch) -> List[dict]:
        """Extended value dicts for every row of ``batch``."""
        name = self.attribute
        if batch.column_mask(name):
            raise TupleError("attribute {!r} already present".format(name))
        # An unhashable tag value can never form a FlexTuple; fail on the first
        # batch, exactly where the row engine's eager construction would.
        hash(self.value)
        value = self.value
        out = []
        append = out.append
        for values in batch.values_list():
            extended = dict(values)
            extended[name] = value
            append(extended)
        return out

    def __repr__(self) -> str:
        return "CompiledExtension({}:{!r})".format(self.attribute, self.value)


class CompiledRename:
    """The ρ operator compiled to a per-row value-dict transform.

    The mapping is resolved once; each row becomes a new value dict with the
    renamed keys, built in sorted attribute order — the same iteration order as
    :meth:`FlexTuple.items`, so a mapping collapsing two attributes onto one
    target keeps the row engine's last-writer-wins semantics.
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping):
        self.mapping = dict(mapping)

    def transform_row(self, values: dict) -> dict:
        mapping = self.mapping
        renamed = {mapping.get(name, name): value for name, value in values.items()}
        if len(renamed) == len(values):
            return renamed
        # Colliding targets: rebuild in sorted order for last-writer-wins.
        return {mapping.get(name, name): values[name] for name in sorted(values)}

    def __repr__(self) -> str:
        return "CompiledRename({})".format(self.mapping)


class _CountStarColumns:
    """count() — answered entirely by the shared per-group row counts."""

    __slots__ = ()

    def grow(self) -> None:
        pass

    def update(self, gids, batch) -> None:
        pass

    def finalize(self, gid: int, sizes):
        return sizes[gid]


class _CountAttrColumns:
    """count(a) — present and non-NULL rows per group, one column pass."""

    __slots__ = ("attribute", "counts")

    def __init__(self, attribute: str):
        self.attribute = attribute
        self.counts: List[int] = []

    def grow(self) -> None:
        self.counts.append(0)

    def update(self, gids, batch) -> None:
        counts = self.counts
        for gid, value in zip(gids, batch.column(self.attribute)):
            if value is not MISSING and value is not None:
                counts[gid] += 1

    def finalize(self, gid: int, sizes):
        return self.counts[gid]


class _SumColumns:
    """sum/avg — exact integer totals plus collected floats per group.

    Floats are summed once at finalize time with :func:`math.fsum`, so the
    result does not depend on the order rows arrived in — the property that
    keeps the three engines bit-identical on float columns.
    """

    __slots__ = ("func", "attribute", "totals", "floats", "non_null", "seen")

    def __init__(self, func: str, attribute: str):
        self.func = func
        self.attribute = attribute
        self.totals: List[int] = []
        self.floats: List[List[float]] = []
        self.non_null: List[int] = []
        self.seen: List[bool] = []

    def grow(self) -> None:
        self.totals.append(0)
        self.floats.append([])
        self.non_null.append(0)
        self.seen.append(False)

    def update(self, gids, batch) -> None:
        totals, floats = self.totals, self.floats
        non_null, seen = self.non_null, self.seen
        for gid, value in zip(gids, batch.column(self.attribute)):
            if value is MISSING:
                continue
            seen[gid] = True
            if value is None:
                continue
            cls = value.__class__
            if cls is int:
                totals[gid] += value
            elif cls is float:
                floats[gid].append(value)
            else:
                _check_numeric(self.func, self.attribute, value)
                if isinstance(value, float):
                    floats[gid].append(value)
                else:
                    totals[gid] += value
            non_null[gid] += 1

    def finalize(self, gid: int, sizes):
        if not self.seen[gid]:
            return MISSING
        count = self.non_null[gid]
        if not count:
            return None
        total = self.totals[gid]
        parts = self.floats[gid]
        if parts:
            total = total + fsum(parts)
        return total / count if self.func == "avg" else total


class _MinMaxColumns:
    """min/max — best value per group under the cross-type total order."""

    __slots__ = ("attribute", "minimum", "best", "best_keys", "seen")

    def __init__(self, func: str, attribute: str):
        self.attribute = attribute
        self.minimum = func == "min"
        self.best: List[object] = []
        self.best_keys: List[object] = []
        self.seen: List[bool] = []

    def grow(self) -> None:
        self.best.append(None)
        self.best_keys.append(None)
        self.seen.append(False)

    def update(self, gids, batch) -> None:
        best, best_keys, seen = self.best, self.best_keys, self.seen
        minimum = self.minimum
        for gid, value in zip(gids, batch.column(self.attribute)):
            if value is MISSING:
                continue
            seen[gid] = True
            if value is None:
                continue
            order = value_order_key(value)
            current = best_keys[gid]
            if current is None or (order < current if minimum else order > current):
                best[gid] = value
                best_keys[gid] = order
        return

    def finalize(self, gid: int, sizes):
        if not self.seen[gid]:
            return MISSING
        if self.best_keys[gid] is None:
            return None
        return self.best[gid]


class CompiledAggregates:
    """γ compiled to batch column-wise accumulation.

    Per input batch: one pass assigns every row a dense group id (single-key
    groups probe the raw column, multi-key groups a zipped key tuple — absent
    stays the ``MISSING`` sentinel, which *is* the ⊥ routing), then each
    aggregate spec runs one tight loop over ``(group ids × its column)`` into
    parallel per-group state arrays.  Semantics are exactly those of
    :class:`~repro.algebra.analytic.AggregateAccumulator`; only the bookkeeping
    is column-at-a-time.
    """

    __slots__ = ("group_names", "specs", "key_to_gid", "sizes", "_columns")

    def __init__(self, group_by, specs):
        self.group_names = list(group_by)
        self.specs = list(specs)
        self.key_to_gid: dict = {}
        #: rows per group — the shared denominator count() reads
        self.sizes: List[int] = []
        self._columns = [self._compile_spec(spec) for spec in self.specs]

    @staticmethod
    def _compile_spec(spec):
        if spec.func == "count":
            if spec.attribute is None:
                return _CountStarColumns()
            return _CountAttrColumns(spec.attribute)
        if spec.func in ("sum", "avg"):
            return _SumColumns(spec.func, spec.attribute)
        return _MinMaxColumns(spec.func, spec.attribute)

    def _grow(self, key) -> int:
        gid = len(self.sizes)
        self.key_to_gid[key] = gid
        self.sizes.append(0)
        for column in self._columns:
            column.grow()
        return gid

    def update(self, batch: TupleBatch) -> None:
        count = len(batch)
        if not count:
            return
        names = self.group_names
        sizes = self.sizes
        if not names:
            if not sizes:
                self._grow(())
            sizes[0] += count
            gids: Sequence[int] = [0] * count
        else:
            if len(names) == 1:
                keys = batch.column(names[0])
            else:
                keys = list(zip(*(batch.column(name) for name in names)))
            get = self.key_to_gid.get
            gids = []
            append = gids.append
            for key in keys:
                gid = get(key)
                if gid is None:
                    gid = self._grow(key)
                sizes[gid] += 1
                append(gid)
        for column in self._columns:
            column.update(gids, batch)

    def results(self) -> List[dict]:
        """One output value dict per group (⊥ keys and absent outputs omitted,
        empty dicts dropped) — ready for a :class:`LazyBatch`."""
        names = self.group_names
        sizes = self.sizes
        if not sizes and not names:
            row = {spec.output: 0 for spec in self.specs if spec.func == "count"}
            return [row] if row else []
        pairs = list(zip(self.specs, self._columns))
        out = []
        for key, gid in self.key_to_gid.items():
            row = group_values(key, names)
            for spec, column in pairs:
                value = column.finalize(gid, sizes)
                if value is not MISSING:
                    row[spec.output] = value
            if row:
                out.append(row)
        return out

    def __repr__(self) -> str:
        return "CompiledAggregates(group={}, specs={})".format(
            self.group_names, self.specs)


class CompiledGuard:
    """A type guard compiled to a presence test over batch columns
    (single-attribute guards scan one value array, wider guards AND bitmaps)."""

    __slots__ = ("names", "_narrow")

    def __init__(self, attributes):
        self.names = [a.name for a in attrset(attributes)]
        self._narrow = _compile_presence(self.names)

    def mask(self, batch: TupleBatch) -> int:
        """Bitmap of the rows satisfying the guard."""
        return batch.presence_mask(self.names)

    def select(self, batch: TupleBatch,
               indices: Optional[Sequence[int]] = None) -> List[int]:
        return self._narrow(batch, indices)

    def __repr__(self) -> str:
        return "CompiledGuard({})".format(self.names)
