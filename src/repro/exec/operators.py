"""Physical operators: the volcano/batch execution layer.

Every operator pulls *batches* (lists) of :class:`~repro.model.tuples.FlexTuple`
from its children and yields batches downstream, so large intermediate results are
never forced into a single Python collection unless an algorithm genuinely needs
materialization (hash-join build sides, difference right sides, shared-attribute
discovery for natural joins over heterogeneous inputs).

Operator semantics mirror the naive set evaluator in
:mod:`repro.algebra.evaluator` exactly — the differential tests in
``tests/test_exec_parity.py`` enforce tuple-level equality — but the algorithms
differ:

* :class:`Scan` applies pushed-down selections and type guards while reading, and
  can answer equality predicates from the engine's hash indexes instead of reading
  the whole relation;
* :class:`HashJoin` replaces the evaluator's nested loop with build/probe on the
  natural-join attributes, with *guard-aware partitioning*: variant records that
  lack a join attribute are partitioned out up front (they can never join) and
  counted as guard checks rather than join pairs;
* :class:`MergeUnion` / :class:`DifferenceOp` stream one side against a
  materialized other side.

Work counters are written into the shared
:class:`~repro.algebra.evaluator.ExecutionStats` with the same meaning the
evaluator gives them (see its docstring for the counter semantics), so naive and
physical costs are directly comparable.  Each operator additionally records
rows-in/rows-out in the :class:`~repro.exec.context.OperatorStats` it registers
with the :class:`~repro.exec.context.ExecutionContext`.

Every operator's output batch stream contains each distinct tuple exactly once
(set semantics per operator, as in the evaluator); operators therefore never need
to re-deduplicate their inputs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.algebra.analytic import (
    AggregateAccumulator,
    AggregateSpec,
    SortKey,
    group_key,
    group_values,
    row_order_key,
    top_k_rows,
)
from repro.algebra.evaluator import _resolve_relation
from repro.algebra.predicates import Predicate
from repro.errors import AlgebraError
from repro.exec.context import ExecutionContext, OperatorStats, sampled_size
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple

Batch = List[FlexTuple]


class PhysicalOperator:
    """Base class of every physical plan node."""

    #: operator name used in explain output
    name: str = "physical-op"

    #: True on the batch (vectorized) operator forms of :mod:`repro.exec.vectorized`
    vectorized: bool = False

    #: cost-model annotations, set by the physical planner (None on hand-built plans)
    estimated_rows: Optional[float] = None
    estimated_cost: Optional[float] = None

    #: cardinality-feedback identity, set by the physical planner (None on
    #: hand-built plans): the structural key of the logical subexpression this
    #: operator was lowered from, and the base tables that subexpression reads
    #: (so feedback entries can be invalidated on DML)
    fingerprint: Optional[tuple] = None
    feedback_tables: Optional[frozenset] = None

    @property
    def children(self) -> Tuple["PhysicalOperator", ...]:
        return ()

    def label(self) -> str:
        """One-line description used in explain output and operator stats."""
        return self.name

    def run(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Start execution: register stats (preorder) and return the batch stream.

        With ``ctx.timing`` (the default) the operator's *inclusive* wall time
        is accumulated into its :class:`OperatorStats`: the ``_generate`` call
        itself is timed — operators with eager setup (hash-join build sides,
        multiway-join drains, difference/product materialization) do real work
        there — and each batch pulled from the returned stream adds the time
        it took to produce.  Two clock reads per batch, nothing per tuple.
        """
        ctx.stats.record_operator(self.name)
        op_stats = ctx.register_operator(self.label())
        child_streams = tuple(child.run(ctx) for child in self.children)
        if not ctx.timing:
            stream = self._generate(ctx, op_stats, *child_streams)
        else:
            started = perf_counter()
            stream = self._generate(ctx, op_stats, *child_streams)
            op_stats.wall_seconds += perf_counter() - started
            stream = self._timed_stream(op_stats, stream)
        if ctx.governor is not None:
            stream = self._governed_stream(ctx.governor, stream)
        return stream

    @staticmethod
    def _timed_stream(op: OperatorStats, stream: Iterator[Batch]) -> Iterator[Batch]:
        """Per-batch wall-clock accounting around an operator's output stream."""
        while True:
            started = perf_counter()
            try:
                batch = next(stream)
            except StopIteration:
                op.wall_seconds += perf_counter() - started
                return
            op.wall_seconds += perf_counter() - started
            yield batch

    @staticmethod
    def _governed_stream(governor, stream: Iterator[Batch]) -> Iterator[Batch]:
        """Cooperative cancellation around an operator's output stream.

        One ``governor.check()`` before any work starts (the stream's eager
        setup — hash builds, sorts — happens on the first ``next()``) and one
        before every batch is handed downstream; a cancel or expired deadline
        therefore unwinds the whole plan within one operator boundary.  The
        wrapper sits *outside* the timed stream so boundary checks are counted
        identically with timing on or off.
        """
        governor.check()
        for batch in stream:
            governor.check()
            yield batch

    def _generate(self, ctx: ExecutionContext, op: OperatorStats, *children) -> Iterator[Batch]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the physical plan.

        Planner-produced plans carry cost-model annotations which are rendered
        as ``est_rows`` / ``est_cost`` columns per node.
        """
        line = "  " * indent + self.label()
        if self.vectorized:
            line += "  [batch]"
        if self.estimated_rows is not None:
            line += "  [est_rows={:.1f}".format(self.estimated_rows)
            if self.estimated_cost is not None:
                line += " est_cost={:.1f}".format(self.estimated_cost)
            line += "]"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.label()

    # -- helpers shared by the concrete operators --------------------------------------

    @staticmethod
    def _rebatch(ctx: ExecutionContext, op: OperatorStats,
                 tuples: Iterable[FlexTuple]) -> Iterator[Batch]:
        """Pack a tuple stream into batches of ``ctx.batch_size``."""
        batch: Batch = []
        for tup in tuples:
            batch.append(tup)
            if len(batch) >= ctx.batch_size:
                op.rows_out += len(batch)
                op.batches_out += 1
                yield batch
                batch = []
        if batch:
            op.rows_out += len(batch)
            op.batches_out += 1
            yield batch

    @staticmethod
    def _materialize(ctx: ExecutionContext, op: OperatorStats,
                     stream: Iterator[Batch]) -> Set[FlexTuple]:
        """Drain a child's batch stream into a set.

        A materialization is a build boundary: the drained set is the
        operator's held state, so its sampled size feeds the ``peak_bytes``
        memory accounting (one :func:`sampled_size` call per drain, never per
        tuple).  Under a memory budget the size is additionally checked per
        batch, so an oversized build fails fast mid-drain instead of after
        the damage is done; materializations without a spill algorithm always
        fail fast (``MemoryBudgetExceeded``), spilling or not.
        """
        result: Set[FlexTuple] = set()
        governed = (ctx.governor is not None
                    and ctx.governor.memory_budget is not None)
        for batch in stream:
            op.rows_in += len(batch)
            result.update(batch)
            if governed:
                ctx.enforce_memory(op, sampled_size(result))
        op.note_memory(sampled_size(result))
        return result


class EmptyOp(PhysicalOperator):
    """Produces no tuples (the physical form of the optimizer's ∅ leaf)."""

    name = "empty"

    def _generate(self, ctx, op):
        op.invocations += 1
        return
        yield  # pragma: no cover — makes this a generator


class Scan(PhysicalOperator):
    """Read a base relation, applying pushed-down guards and selections inline.

    ``equalities`` are the attribute→value bindings implied by the pushed
    predicate; when the relation source exposes a hash index covering a subset of
    them (``index_for``), the scan reads only the matching bucket instead of the
    whole relation.  The full predicate is still applied to every tuple read, so
    an index never changes the result — only how many tuples are touched.
    """

    name = "scan"

    def __init__(self, relation: str, predicate: Optional[Predicate] = None,
                 guard: Optional[AttributeSet] = None,
                 equalities: Optional[Dict[str, object]] = None):
        self.relation = relation
        self.predicate = predicate
        self.guard = attrset(guard) if guard is not None and len(attrset(guard)) else None
        if equalities is None and predicate is not None:
            equalities = predicate.implied_equalities()
        self.equalities = dict(equalities or {})

    def label(self) -> str:
        parts = [self.relation]
        if self.predicate is not None:
            parts.append("σ[{!r}]".format(self.predicate))
        if self.guard is not None:
            parts.append("guard[{}]".format(self.guard))
        return "scan[{}]".format(", ".join(parts))

    def _pick_index(self, ctx: ExecutionContext):
        """The (index, probe) pair answering the pushed equalities, if any."""
        if not (ctx.use_indexes and self.equalities):
            return None
        if not hasattr(ctx.source, "relation"):
            return None
        try:
            table = ctx.source.relation(self.relation)
        except Exception:
            return None
        index_for = getattr(table, "index_for", None)
        if index_for is None:
            return None
        index = index_for(self.equalities.keys())
        if index is None:
            return None
        probe = {a.name: self.equalities[a.name] for a in index.attributes}
        try:
            hash(tuple(probe.values()))
        except TypeError:
            # Unhashable comparison constant (e.g. a list): no bucket can hold it,
            # but the predicate may still be satisfiable elsewhere — full scan.
            return None
        return index, probe

    def _generate(self, ctx, op):
        op.invocations += 1
        picked = self._pick_index(ctx)
        if picked is not None:
            index, probe = picked
            tuples: Iterable[FlexTuple] = index.lookup(probe)
        else:
            tuples = _resolve_relation(ctx.source, self.relation)

        def emit() -> Iterator[FlexTuple]:
            for tup in tuples:
                ctx.stats.tuples_scanned += 1
                op.rows_in += 1
                if self.guard is not None:
                    ctx.stats.guard_checks += 1
                    if not tup.is_defined_on(self.guard):
                        continue
                if self.predicate is not None:
                    ctx.stats.predicate_evaluations += 1
                    if not self.predicate.evaluate(tup):
                        continue
                yield tup

        return self._rebatch(ctx, op, emit())

    # -- pushdown helpers used by the physical planner ----------------------------------

    def with_predicate(self, predicate: Predicate) -> "Scan":
        """A copy (of the same scan class, row or batch) with ``predicate``
        conjoined to the already-pushed predicate."""
        from repro.algebra.predicates import And

        combined = predicate if self.predicate is None else And(self.predicate, predicate)
        return type(self)(self.relation, predicate=combined, guard=self.guard)

    def with_guard(self, attributes) -> "Scan":
        """A copy (of the same scan class) with ``attributes`` added to the guard."""
        guard = attrset(attributes) if self.guard is None else self.guard | attrset(attributes)
        return type(self)(self.relation, predicate=self.predicate, guard=guard,
                          equalities=self.equalities)


class FilterOp(PhysicalOperator):
    """σ — keep the tuples satisfying the predicate (when pushdown was impossible)."""

    name = "filter"

    def __init__(self, child: PhysicalOperator, predicate: Predicate):
        self.child = child
        self.predicate = predicate

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "filter[{!r}]".format(self.predicate)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def emit():
            for batch in child:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.predicate_evaluations += 1
                    if self.predicate.evaluate(tup):
                        yield tup

        return self._rebatch(ctx, op, emit())


class GuardOp(PhysicalOperator):
    """An explicit type guard: keep tuples defined on the guarded attributes."""

    name = "guard"

    def __init__(self, child: PhysicalOperator, attributes):
        self.child = child
        self.attributes = attrset(attributes)

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "guard[{}]".format(self.attributes)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def emit():
            for batch in child:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.guard_checks += 1
                    if tup.is_defined_on(self.attributes):
                        yield tup

        return self._rebatch(ctx, op, emit())


class ProjectOp(PhysicalOperator):
    """π — restrict tuples to the attributes they possess, deduplicating on the fly."""

    name = "project"

    def __init__(self, child: PhysicalOperator, attributes):
        self.child = child
        self.attributes = attrset(attributes)

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "project[{}]".format(self.attributes)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def emit():
            seen: Set[FlexTuple] = set()
            for batch in child:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.tuples_scanned += 1
                    projected = tup.project_existing(self.attributes)
                    if len(projected) and projected not in seen:
                        seen.add(projected)
                        yield projected

        return self._rebatch(ctx, op, emit())


class ExtendOp(PhysicalOperator):
    """ε — extend every tuple by a constant tag attribute."""

    name = "extend"

    def __init__(self, child: PhysicalOperator, attribute: str, value):
        self.child = child
        self.attribute = attribute
        self.value = value

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "extend[{}:{!r}]".format(self.attribute, self.value)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def emit():
            for batch in child:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.tuples_scanned += 1
                    yield tup.extend(**{self.attribute: self.value})

        return self._rebatch(ctx, op, emit())


class RenameOp(PhysicalOperator):
    """ρ — rename attributes (deduplicates, since renames can collapse tuples)."""

    name = "rename"

    def __init__(self, child: PhysicalOperator, mapping: Dict[str, str]):
        self.child = child
        self.mapping = dict(mapping)

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "rename[{}]".format(self.mapping)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def emit():
            seen: Set[FlexTuple] = set()
            for batch in child:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.tuples_scanned += 1
                    renamed = FlexTuple({self.mapping.get(name, name): value
                                         for name, value in tup.items()})
                    if renamed not in seen:
                        seen.add(renamed)
                        yield renamed

        return self._rebatch(ctx, op, emit())


class ProductOp(PhysicalOperator):
    """× — cartesian product; materializes the right side, streams the left."""

    name = "product"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def _generate(self, ctx, op, left, right):
        op.invocations += 1
        build = self._materialize(ctx, op, right)

        def emit():
            seen: Set[FlexTuple] = set()
            for batch in left:
                op.rows_in += len(batch)
                for left_tuple in batch:
                    for right_tuple in build:
                        ctx.stats.join_pairs_considered += 1
                        merged = left_tuple.merge(right_tuple)
                        if merged not in seen:
                            seen.add(merged)
                            yield merged

        return self._rebatch(ctx, op, emit())


def _shared_attributes(left: Set[FlexTuple], right: Set[FlexTuple]) -> AttributeSet:
    """The natural-join attributes: attrs appearing on both sides of the data."""
    left_attrs = AttributeSet()
    for tup in left:
        left_attrs = left_attrs | tup.attributes
    right_attrs = AttributeSet()
    for tup in right:
        right_attrs = right_attrs | tup.attributes
    return left_attrs & right_attrs


class NestedLoopJoin(PhysicalOperator):
    """⋈ by nested loops — every pair of input tuples is examined.

    Used by the planner only for small inputs, where the hash-table setup of
    :class:`HashJoin` costs more than it saves.
    """

    name = "nested-loop-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, on=None):
        self.left = left
        self.right = right
        self.on = attrset(on) if on is not None else None

    @property
    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return "nested-loop-join[on={}]".format(self.on if self.on is not None else "shared")

    def _generate(self, ctx, op, left, right):
        op.invocations += 1
        left_set = self._materialize(ctx, op, left)
        right_set = self._materialize(ctx, op, right)
        shared = self.on if self.on is not None else _shared_attributes(left_set, right_set)

        def emit():
            seen: Set[FlexTuple] = set()
            for left_tuple in left_set:
                for right_tuple in right_set:
                    ctx.stats.join_pairs_considered += 1
                    if not (left_tuple.is_defined_on(shared) and right_tuple.is_defined_on(shared)):
                        continue
                    if all(left_tuple[a] == right_tuple[a] for a in shared):
                        merged = left_tuple.merge(right_tuple)
                        if merged not in seen:
                            seen.add(merged)
                            yield merged

        return self._rebatch(ctx, op, emit())


class HashJoin(PhysicalOperator):
    """⋈ by build/probe on the natural-join attribute intersection.

    The right input is the build side (the planner puts the smaller estimated
    input there).  Partitioning is *guard-aware*: variant records not defined on
    every join attribute are set aside during build/probe — they cannot join, so
    they cost one guard check each instead of a join pair per combination.  Only
    pairs that share a hash bucket count as ``join_pairs_considered``, which is
    exactly the work the algorithm performs.
    """

    name = "hash-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, on=None):
        self.left = left
        self.right = right
        self.on = attrset(on) if on is not None else None

    @property
    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return "hash-join[on={}]".format(self.on if self.on is not None else "shared")

    def _generate(self, ctx, op, left, right):
        op.invocations += 1
        if self.on is not None and ctx.spill_budget() is not None:
            # Static join attributes + a budget with spilling allowed: the
            # grace variant below keeps the build bounded.  Data-dependent
            # (shared-attribute) joins have no spill form — both sides must be
            # materialized to even know the key — so they stay on the fail-fast
            # path through _materialize.
            return self._generate_grace(ctx, op, left, right,
                                        ctx.spill_budget())
        right_set = self._materialize(ctx, op, right)
        if self.on is not None:
            # Join attributes known statically: stream the probe side batch by
            # batch, keeping only the build side in memory.
            shared = self.on
            probe_tuples = (tup for batch in left
                            for tup in self._count_batch(op, batch))
        else:
            # Natural join: the shared attributes depend on the data, so the
            # probe side must be materialized to discover them.
            left_set = self._materialize(ctx, op, left)
            shared = _shared_attributes(left_set, right_set)
            probe_tuples = iter(left_set)

        buckets: Dict[tuple, List[FlexTuple]] = {}
        for tup in right_set:
            ctx.stats.guard_checks += 1
            if tup.is_defined_on(shared):
                buckets.setdefault(tuple(tup[a] for a in shared), []).append(tup)
        ctx.enforce_memory(op, sampled_size(buckets))

        def emit():
            seen: Set[FlexTuple] = set()
            for left_tuple in probe_tuples:
                ctx.stats.guard_checks += 1
                if not left_tuple.is_defined_on(shared):
                    continue
                partners = buckets.get(tuple(left_tuple[a] for a in shared), ())
                ctx.stats.join_pairs_considered += len(partners)
                for partner in partners:
                    merged = left_tuple.merge(partner)
                    if merged not in seen:
                        seen.add(merged)
                        yield merged

        return self._rebatch(ctx, op, emit())

    def _generate_grace(self, ctx, op, left, right, budget):
        """Grace hash join: both sides hash-partitioned to disk, one
        partition's build buckets in memory at a time.

        The build side is held in memory until the budget trips — a join that
        fits never touches disk and emits exactly what the in-memory path
        emits.  Matching keys land in the same partition on both sides, and a
        merged output tuple determines its join key, so the per-partition
        ``seen`` sets partition the global duplicate space: the union of the
        per-partition outputs is exactly the deduplicated join.  All counters
        (guard checks per input row, pairs per shared bucket) match the
        in-memory algorithm total for total.
        """
        from repro.governor.spill import GracePartitioner

        shared = self.on
        attrs = tuple(shared)
        manager = ctx.governor.spill_manager()

        held: List[FlexTuple] = []
        build_part: Optional[GracePartitioner] = None

        def route_build(tup):
            ctx.stats.guard_checks += 1
            if tup.is_defined_on(shared):
                build_part.add(tuple(tup[a] for a in attrs),
                               (tup._values, hash(tup)))

        for batch in right:
            op.rows_in += len(batch)
            if build_part is None:
                held.extend(batch)
                size = sampled_size(held)
                op.note_memory(size)
                if size > budget:
                    build_part = GracePartitioner(manager, "join-build")
                    for tup in held:
                        route_build(tup)
                    held = []
            else:
                for tup in batch:
                    route_build(tup)

        if build_part is None:
            # Never crossed the budget: plain in-memory build over the drain.
            buckets: Dict[tuple, List[FlexTuple]] = {}
            for tup in held:
                ctx.stats.guard_checks += 1
                if tup.is_defined_on(shared):
                    buckets.setdefault(tuple(tup[a] for a in attrs), []).append(tup)
            op.note_memory(sampled_size(buckets))

            def emit_memory():
                seen: Set[FlexTuple] = set()
                for batch in left:
                    op.rows_in += len(batch)
                    for left_tuple in batch:
                        ctx.stats.guard_checks += 1
                        if not left_tuple.is_defined_on(shared):
                            continue
                        partners = buckets.get(
                            tuple(left_tuple[a] for a in attrs), ())
                        ctx.stats.join_pairs_considered += len(partners)
                        for partner in partners:
                            merged = left_tuple.merge(partner)
                            if merged not in seen:
                                seen.add(merged)
                                yield merged

            return self._rebatch(ctx, op, emit_memory())

        probe_part = GracePartitioner(manager, "join-probe")
        for batch in left:
            op.rows_in += len(batch)
            for tup in batch:
                ctx.stats.guard_checks += 1
                if tup.is_defined_on(shared):
                    probe_part.add(tuple(tup[a] for a in attrs),
                                   (tup._values, hash(tup)))
        build_part.finish()
        probe_part.finish()

        def emit_partitions():
            for index in range(build_part.partitions):
                buckets: Dict[tuple, List[FlexTuple]] = {}
                for key, (values, hash_) in build_part.segment(index):
                    buckets.setdefault(key, []).append(
                        FlexTuple.from_parts(values, hash_))
                # accounting only: grace bounds held state at ~budget + one
                # partition's buckets, it does not re-enforce per partition
                op.note_memory(sampled_size(buckets))
                seen: Set[FlexTuple] = set()
                for key, (values, hash_) in probe_part.segment(index):
                    partners = buckets.get(key, ())
                    ctx.stats.join_pairs_considered += len(partners)
                    if not partners:
                        continue
                    left_tuple = FlexTuple.from_parts(values, hash_)
                    for partner in partners:
                        merged = left_tuple.merge(partner)
                        if merged not in seen:
                            seen.add(merged)
                            yield merged

        return self._rebatch(ctx, op, emit_partitions())

    @staticmethod
    def _count_batch(op: OperatorStats, batch: Batch) -> Batch:
        op.rows_in += len(batch)
        return batch


class IndexLookupJoin(PhysicalOperator):
    """⋈ by probing a maintained hash index of a base relation per outer tuple.

    The statistics-informed planner chooses this operator when the join
    attributes are known statically, the inner side is a base relation whose
    engine-maintained hash index covers (a subset of) them, and the *estimated*
    outer cardinality is small against the inner relation: the inner side is
    then never scanned at all — only the index buckets matching outer tuples are
    read, which is the plan-level payoff of knowing that a rare variant tag
    leaves few outer tuples.  Each bucket partner counts one
    ``join_pairs_considered``; outer tuples lacking a join attribute cost one
    guard check (they can never join).

    Without a usable index at execution time (``use_indexes=False``, or the
    index disappeared), the operator degrades to building the buckets by
    scanning the inner relation once — hash-join behaviour, identical results.
    """

    name = "index-lookup-join"

    def __init__(self, outer: PhysicalOperator, relation: str, on):
        self.outer = outer
        self.relation = relation
        self.on = attrset(on)
        if not self.on:
            raise AlgebraError("an index lookup join needs join attributes")

    @property
    def children(self):
        return (self.outer,)

    def label(self) -> str:
        return "index-lookup-join[{}, on={}]".format(self.relation, self.on)

    def _maintained_index(self, ctx: ExecutionContext):
        """The inner relation's hash index covered by the join attributes, if usable."""
        if not ctx.use_indexes or not hasattr(ctx.source, "relation"):
            return None
        try:
            table = ctx.source.relation(self.relation)
        except Exception:
            return None
        index_for = getattr(table, "index_for", None)
        if index_for is None:
            return None
        return index_for(self.on)

    def _generate(self, ctx, op, outer):
        op.invocations += 1
        index = self._maintained_index(ctx)
        if index is not None:
            probe_attributes = index.attributes
            lookup = index.lookup
        else:
            # Degraded mode: one scan of the inner relation builds the buckets.
            probe_attributes = self.on
            buckets: Dict[tuple, List[FlexTuple]] = {}
            for tup in _resolve_relation(ctx.source, self.relation):
                ctx.stats.tuples_scanned += 1
                ctx.stats.guard_checks += 1
                if tup.is_defined_on(self.on):
                    buckets.setdefault(tuple(tup[a] for a in self.on), []).append(tup)
            ctx.enforce_memory(op, sampled_size(buckets))
            lookup = lambda probe: buckets.get(probe, ())  # noqa: E731

        remaining = self.on - probe_attributes

        def emit():
            seen: Set[FlexTuple] = set()
            for batch in outer:
                op.rows_in += len(batch)
                for outer_tuple in batch:
                    ctx.stats.guard_checks += 1
                    if not outer_tuple.is_defined_on(self.on):
                        continue
                    probe = tuple(outer_tuple[a] for a in probe_attributes)
                    partners = lookup(probe)
                    ctx.stats.join_pairs_considered += len(partners)
                    for partner in partners:
                        if not partner.is_defined_on(remaining):
                            continue
                        if any(partner[a] != outer_tuple[a] for a in remaining):
                            continue
                        merged = outer_tuple.merge(partner)
                        if merged not in seen:
                            seen.add(merged)
                            yield merged

        return self._rebatch(ctx, op, emit())


class MergeUnion(PhysicalOperator):
    """∪ — stream both inputs, emitting each distinct tuple once."""

    name = "merge-union"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def _generate(self, ctx, op, left, right):
        op.invocations += 1

        def emit():
            seen: Set[FlexTuple] = set()
            for stream in (left, right):
                for batch in stream:
                    op.rows_in += len(batch)
                    for tup in batch:
                        ctx.stats.tuples_scanned += 1
                        if tup not in seen:
                            seen.add(tup)
                            yield tup

        return self._rebatch(ctx, op, emit())


class OuterUnionOp(MergeUnion):
    """The outer union restoring horizontal decompositions.

    Identical to :class:`MergeUnion` on flexible relations (tuples of different
    shapes coexist without padding); kept as its own node so plans document the
    restoration step, mirroring the logical algebra.
    """

    name = "outer-union"


class DifferenceOp(PhysicalOperator):
    """− — materialize the right side, stream the left side past it."""

    name = "difference"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def _generate(self, ctx, op, left, right):
        op.invocations += 1
        exclude = self._materialize(ctx, op, right)

        def emit():
            for batch in left:
                op.rows_in += len(batch)
                for tup in batch:
                    ctx.stats.tuples_scanned += 1
                    if tup not in exclude:
                        yield tup

        return self._rebatch(ctx, op, emit())


class MultiwayJoinOp(PhysicalOperator):
    """The multiway join restoring vertical decompositions, hash-based.

    The first input is the master fragment; each further input is merged into the
    master's tuples on the ``on`` attributes via a hash index.  Master tuples
    without a partner pass through unchanged (variants contribute nothing) — the
    same semantics as the logical operator.
    """

    name = "multiway-join"

    def __init__(self, inputs: Sequence[PhysicalOperator], on):
        inputs = tuple(inputs)
        if len(inputs) < 2:
            raise AlgebraError("a multiway join needs at least two inputs")
        self.inputs = inputs
        self.on = attrset(on)

    @property
    def children(self):
        return self.inputs

    def label(self) -> str:
        return "multiway-join[on={}]".format(self.on)

    def _generate(self, ctx, op, master, *fragments):
        op.invocations += 1
        current = self._materialize(ctx, op, master)
        for stream in fragments:
            fragment = self._materialize(ctx, op, stream)
            buckets: Dict[tuple, List[FlexTuple]] = {}
            for tup in fragment:
                if tup.is_defined_on(self.on):
                    buckets.setdefault(tuple(tup[a] for a in self.on), []).append(tup)
            ctx.enforce_memory(op, sampled_size(buckets))
            merged: Set[FlexTuple] = set()
            for tup in current:
                if not tup.is_defined_on(self.on):
                    merged.add(tup)
                    continue
                partners = buckets.get(tuple(tup[a] for a in self.on), ())
                ctx.stats.join_pairs_considered += len(partners)
                if not partners:
                    merged.add(tup)
                    continue
                for partner in partners:
                    merged.add(tup.merge(partner))
            current = merged
            ctx.enforce_memory(op, sampled_size(current))
        return self._rebatch(ctx, op, iter(current))


def _analytic_label(name: str, parts: Sequence[str]) -> str:
    return "{}[{}]".format(name, ", ".join(parts))


class HashAggregateOp(PhysicalOperator):
    """γ — streaming hash aggregation with variant-aware ⊥-group routing.

    Consumes its input batch by batch, keeping only one accumulator state per
    group (the held state, not the input, is what ``peak_bytes`` accounts).
    Grouping keys, the NULL-vs-absent aggregate matrix and the output shape are
    the shared semantics of :mod:`repro.algebra.analytic` — identical to the
    naive evaluator by construction.  Group outputs are pairwise distinct, so
    no output-side deduplication is needed.
    """

    name = "hash-aggregate"

    def __init__(self, child: PhysicalOperator, group_by: Sequence[str],
                 specs: Sequence[AggregateSpec]):
        self.child = child
        self.group_by = tuple(group_by)
        self.specs = tuple(specs)

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        parts = []
        if self.group_by:
            parts.append("group=[{}]".format(", ".join(self.group_by)))
        parts.extend(repr(spec) for spec in self.specs)
        return _analytic_label(self.name, parts)

    def _generate(self, ctx, op, child):
        op.invocations += 1
        accumulator = AggregateAccumulator(self.specs)
        names = self.group_by
        spill_budget = ctx.spill_budget()
        if spill_budget is not None:
            # Partition-and-merge under a budget: the group dict flushes to
            # hash-partitioned segments whenever it outgrows the budget and
            # partitions merge (AggregateAccumulator.merge_states) at
            # finalize time — same outputs, bounded held state.
            from repro.governor.spill import SpillingAggregator

            spiller = SpillingAggregator(
                ctx.governor.spill_manager(), accumulator, names,
                spill_budget, op.note_memory)
            for batch in child:
                count = len(batch)
                op.rows_in += count
                ctx.stats.tuples_scanned += count
                for tup in batch:
                    spiller.add(tup._values)
                spiller.maybe_spill()
            return self._rebatch(
                ctx, op, (FlexTuple(out) for out in spiller.results()))
        governed = (ctx.governor is not None
                    and ctx.governor.memory_budget is not None)
        groups: Dict[object, List] = {}
        for batch in child:
            count = len(batch)
            op.rows_in += count
            ctx.stats.tuples_scanned += count
            for tup in batch:
                values = tup._values
                key = group_key(values, names)
                states = groups.get(key)
                if states is None:
                    states = groups[key] = accumulator.new_state()
                accumulator.update(states, values)
            if governed:
                # spilling disabled: fail fast at the batch boundary instead
                # of discovering the blown budget after the whole build
                ctx.enforce_memory(op, sampled_size(groups))
        op.note_memory(sampled_size(groups))
        return self._rebatch(ctx, op, self._finalize(accumulator, groups))

    def _finalize(self, accumulator: AggregateAccumulator,
                  groups: Dict[object, List]) -> Iterator[FlexTuple]:
        if not groups and not self.group_by:
            out = accumulator.empty_result()
            if out:
                yield FlexTuple(out)
            return
        for key, states in groups.items():
            out = group_values(key, self.group_by)
            out.update(accumulator.finalize(states))
            if out:
                yield FlexTuple(out)


class SortOp(PhysicalOperator):
    """τ — full sort with bounded-materialization accounting.

    The input is a set, so the sort itself is result-identity; the operator
    exists as the full-materialization form of ``limit`` lowering (``limit``
    set) and as the physical counterpart of an order annotation.  It holds the
    *entire* input (``note_memory`` of the materialized list — the contrast to
    :class:`TopKOp`'s bounded heap that E18 asserts on ``peak_bytes``).
    """

    name = "sort"

    def __init__(self, child: PhysicalOperator, keys: Sequence[SortKey] = (),
                 limit: Optional[int] = None):
        self.child = child
        self.keys = tuple(keys)
        self.limit = limit

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        parts = [repr(key) for key in self.keys]
        if self.limit is not None:
            parts.append("limit={}".format(self.limit))
        return _analytic_label(self.name, parts)

    def _generate(self, ctx, op, child):
        op.invocations += 1
        keys = self.keys
        spill_budget = ctx.spill_budget()
        if spill_budget is not None:
            # External merge sort: sorted runs flushed to disk when the held
            # rows outgrow the budget, k-way merged on emit.  Tuples travel
            # as (values, hash) pairs — plain picklable data — and are
            # rebuilt with FlexTuple.from_parts on the way back; row_order_key
            # is a total order, so the merged stream is deterministic.
            from itertools import islice

            from repro.governor.spill import ExternalSorter

            sorter = ExternalSorter(
                ctx.governor.spill_manager(),
                key=lambda pair: row_order_key(pair[0], keys),
                budget=spill_budget, note=op.note_memory)
            for batch in child:
                count = len(batch)
                op.rows_in += count
                ctx.stats.tuples_scanned += count
                sorter.extend((tup._values, hash(tup)) for tup in batch)
                sorter.maybe_spill()
            merged = (FlexTuple.from_parts(values, hash_)
                      for values, hash_ in sorter.merged())
            if self.limit is not None:
                merged = islice(merged, self.limit)
            return self._rebatch(ctx, op, merged)
        governed = (ctx.governor is not None
                    and ctx.governor.memory_budget is not None)
        rows: List[FlexTuple] = []
        for batch in child:
            count = len(batch)
            op.rows_in += count
            ctx.stats.tuples_scanned += count
            rows.extend(batch)
            if governed:
                ctx.enforce_memory(op, sampled_size(rows))
        op.note_memory(sampled_size(rows))
        rows.sort(key=lambda tup: row_order_key(tup._values, keys))
        if self.limit is not None:
            rows = rows[:self.limit]
        return self._rebatch(ctx, op, iter(rows))


class TopKOp(PhysicalOperator):
    """λ∘τ — heap-based top-k: the ``count`` smallest rows under ``keys``.

    The fused physical form of ``Limit(Sort(E))`` (and of a bare ``Limit``,
    with empty keys meaning the canonical tuple order).  The input streams
    through ``heapq.nsmallest`` — at most ``count`` rows are ever held, which
    is the bounded-memory contrast to :class:`SortOp` that ``peak_bytes``
    records.
    """

    name = "top-k"

    def __init__(self, child: PhysicalOperator, keys: Sequence[SortKey],
                 count: int):
        self.child = child
        self.keys = tuple(keys)
        self.count = count

    @property
    def children(self):
        return (self.child,)

    def label(self) -> str:
        parts = [repr(key) for key in self.keys]
        parts.append("k={}".format(self.count))
        return _analytic_label(self.name, parts)

    def _generate(self, ctx, op, child):
        op.invocations += 1

        def rows() -> Iterator[FlexTuple]:
            for batch in child:
                count = len(batch)
                op.rows_in += count
                ctx.stats.tuples_scanned += count
                for tup in batch:
                    yield tup

        best = top_k_rows(rows(), self.count, self.keys,
                          key_of=lambda tup: tup._values)
        ctx.enforce_memory(op, sampled_size(best))
        return self._rebatch(ctx, op, iter(best))


#: sentinel for "the scalar subquery produced no row — extend nothing"
_NO_VALUE = object()


class SubqueryExtendOp(PhysicalOperator):
    """ε — extend every tuple by the scalar result of a subquery plan.

    The child is drained completely *before* the subquery runs and its arity
    is checked, so the order in which errors surface (child errors, then
    subquery errors, then the scalar arity check, then per-tuple extension
    conflicts) matches the naive evaluator exactly — the property the
    differential fuzz harness leans on.  ``run`` is custom for the same
    reason: the base implementation would start both children before any
    stream is drained.
    """

    name = "subquery-extend"

    def __init__(self, child: PhysicalOperator, attribute: str,
                 subquery: PhysicalOperator):
        self.child = child
        self.attribute = attribute
        self.subquery = subquery

    @property
    def children(self):
        return (self.child, self.subquery)

    def label(self) -> str:
        return "{}[{}]".format(self.name, self.attribute)

    def run(self, ctx: ExecutionContext) -> Iterator[Batch]:
        ctx.stats.record_operator(self.name)
        op_stats = ctx.register_operator(self.label())
        if not ctx.timing:
            stream = self._start(ctx, op_stats)
        else:
            started = perf_counter()
            stream = self._start(ctx, op_stats)
            op_stats.wall_seconds += perf_counter() - started
            stream = self._timed_stream(op_stats, stream)
        if ctx.governor is not None:
            stream = self._governed_stream(ctx.governor, stream)
        return stream

    def _start(self, ctx, op):
        op.invocations += 1
        batches = []
        for batch in self.child.run(ctx):
            op.rows_in += len(batch)
            batches.append(batch)
        ctx.enforce_memory(op, sampled_size(batches))
        value = self._scalar_value(ctx, op)
        return self._emit(ctx, op, batches, value)

    def _scalar_value(self, ctx, op):
        result = self._materialize(ctx, op, self.subquery.run(ctx))
        if not result:
            return _NO_VALUE
        if len(result) > 1:
            raise AlgebraError(
                "scalar subquery for {!r} produced {} tuples".format(
                    self.attribute, len(result)))
        (row,) = result
        if len(row) != 1:
            raise AlgebraError(
                "scalar subquery for {!r} produced a tuple with {} attributes".format(
                    self.attribute, len(row)))
        (value,) = row._values.values()
        return value

    def _emit(self, ctx, op, batches, value):
        def emit():
            for batch in batches:
                for tup in batch:
                    ctx.stats.tuples_scanned += 1
                    if value is _NO_VALUE:
                        yield tup
                    else:
                        yield tup.extend(**{self.attribute: value})

        return self._rebatch(ctx, op, emit())
