"""Physical execution engine for the flexible-relation algebra.

The logical layer (:mod:`repro.algebra`) defines *what* a query means; this
package decides *how* to run it:

* :mod:`repro.exec.operators` — volcano/batch physical operators: index-aware
  :class:`Scan` with pushed-down selections and type guards, :class:`HashJoin`
  with guard-aware partitioning for variant records, streaming unions and
  difference, and physical forms of every remaining algebra operator;
* :mod:`repro.exec.vectorized` + :mod:`repro.exec.compiled` — the vectorized
  execution path: batch forms of **every** operator streaming column-oriented
  :class:`~repro.model.batches.TupleBatch` chunks, selections/type guards
  compiled once per plan node into closures over column arrays, lazy
  column-merged join output (:class:`~repro.model.batches.LazyBatch`) and
  adaptive, statistics-driven batch sizing;
* :mod:`repro.exec.planner`  — the :class:`PhysicalPlanner` lowering (rewritten)
  logical expression trees into :class:`PhysicalPlan` objects, choosing join
  algorithms from the cost model;
* :mod:`repro.exec.executor` — the :class:`PhysicalExecutor` with its LRU
  :class:`PlanCache` keyed on (expression structure, catalog version);
* :mod:`repro.exec.context`  — the :class:`ExecutionContext` carrying the
  evaluator-compatible global work counters plus a per-operator breakdown.

The naive set evaluator in :mod:`repro.algebra.evaluator` remains the reference
implementation; ``tests/test_exec_parity.py`` differentially checks that both
produce identical results.
"""

from repro.exec.compiled import (
    CompiledAggregates,
    CompiledExtension,
    CompiledGuard,
    CompiledPredicate,
    CompiledRename,
)
from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    MAX_BATCH_SIZE,
    MIN_BATCH_SIZE,
    TARGET_BATCH_CELLS,
    VECTOR_BATCH_SIZE,
    ExecutionContext,
    OperatorStats,
    adaptive_batch_size,
)
from repro.exec.executor import PhysicalExecutor, PlanCache
from repro.exec.vectorized import (
    BatchDifference,
    BatchEmptyOp,
    BatchExtension,
    BatchFilter,
    BatchGuard,
    BatchHashAggregate,
    BatchHashJoin,
    BatchIndexLookupJoin,
    BatchMergeUnion,
    BatchMultiwayJoin,
    BatchOuterUnion,
    BatchProduct,
    BatchProject,
    BatchRename,
    BatchScan,
    BatchSort,
    BatchSubqueryExtend,
    BatchTopK,
)
from repro.exec.operators import (
    DifferenceOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    GuardOp,
    HashAggregateOp,
    HashJoin,
    IndexLookupJoin,
    MergeUnion,
    MultiwayJoinOp,
    NestedLoopJoin,
    OuterUnionOp,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RenameOp,
    Scan,
    SortOp,
    SubqueryExtendOp,
    TopKOp,
)
from repro.exec.planner import (
    PhysicalPlan,
    PhysicalPlanner,
    PhysicalResult,
    expression_key,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MAX_BATCH_SIZE",
    "MIN_BATCH_SIZE",
    "TARGET_BATCH_CELLS",
    "VECTOR_BATCH_SIZE",
    "adaptive_batch_size",
    "BatchDifference",
    "BatchEmptyOp",
    "BatchExtension",
    "BatchFilter",
    "BatchGuard",
    "BatchHashAggregate",
    "BatchHashJoin",
    "BatchIndexLookupJoin",
    "BatchMergeUnion",
    "BatchMultiwayJoin",
    "BatchOuterUnion",
    "BatchProduct",
    "BatchProject",
    "BatchRename",
    "BatchScan",
    "BatchSort",
    "BatchSubqueryExtend",
    "BatchTopK",
    "CompiledAggregates",
    "CompiledExtension",
    "CompiledGuard",
    "CompiledPredicate",
    "CompiledRename",
    "ExecutionContext",
    "OperatorStats",
    "PhysicalExecutor",
    "PlanCache",
    "PhysicalOperator",
    "Scan",
    "EmptyOp",
    "FilterOp",
    "GuardOp",
    "ProjectOp",
    "ExtendOp",
    "RenameOp",
    "ProductOp",
    "NestedLoopJoin",
    "HashJoin",
    "IndexLookupJoin",
    "MergeUnion",
    "OuterUnionOp",
    "DifferenceOp",
    "MultiwayJoinOp",
    "HashAggregateOp",
    "SortOp",
    "TopKOp",
    "SubqueryExtendOp",
    "PhysicalPlan",
    "PhysicalPlanner",
    "PhysicalResult",
    "expression_key",
]
