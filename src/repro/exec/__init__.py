"""Physical execution engine for the flexible-relation algebra.

The logical layer (:mod:`repro.algebra`) defines *what* a query means; this
package decides *how* to run it:

* :mod:`repro.exec.operators` — volcano/batch physical operators: index-aware
  :class:`Scan` with pushed-down selections and type guards, :class:`HashJoin`
  with guard-aware partitioning for variant records, streaming unions and
  difference, and physical forms of every remaining algebra operator;
* :mod:`repro.exec.vectorized` + :mod:`repro.exec.compiled` — the vectorized
  execution path: batch forms of the hot operators streaming column-oriented
  :class:`~repro.model.batches.TupleBatch` chunks, with selections and type
  guards compiled once per plan node into closures over column arrays;
* :mod:`repro.exec.planner`  — the :class:`PhysicalPlanner` lowering (rewritten)
  logical expression trees into :class:`PhysicalPlan` objects, choosing join
  algorithms from the cost model;
* :mod:`repro.exec.executor` — the :class:`PhysicalExecutor` with its LRU
  :class:`PlanCache` keyed on (expression structure, catalog version);
* :mod:`repro.exec.context`  — the :class:`ExecutionContext` carrying the
  evaluator-compatible global work counters plus a per-operator breakdown.

The naive set evaluator in :mod:`repro.algebra.evaluator` remains the reference
implementation; ``tests/test_exec_parity.py`` differentially checks that both
produce identical results.
"""

from repro.exec.compiled import CompiledGuard, CompiledPredicate
from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    VECTOR_BATCH_SIZE,
    ExecutionContext,
    OperatorStats,
)
from repro.exec.executor import PhysicalExecutor, PlanCache
from repro.exec.vectorized import (
    BatchFilter,
    BatchGuard,
    BatchHashJoin,
    BatchIndexLookupJoin,
    BatchProject,
    BatchScan,
)
from repro.exec.operators import (
    DifferenceOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    GuardOp,
    HashJoin,
    IndexLookupJoin,
    MergeUnion,
    MultiwayJoinOp,
    NestedLoopJoin,
    OuterUnionOp,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RenameOp,
    Scan,
)
from repro.exec.planner import (
    PhysicalPlan,
    PhysicalPlanner,
    PhysicalResult,
    expression_key,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "VECTOR_BATCH_SIZE",
    "BatchFilter",
    "BatchGuard",
    "BatchHashJoin",
    "BatchIndexLookupJoin",
    "BatchProject",
    "BatchScan",
    "CompiledGuard",
    "CompiledPredicate",
    "ExecutionContext",
    "OperatorStats",
    "PhysicalExecutor",
    "PlanCache",
    "PhysicalOperator",
    "Scan",
    "EmptyOp",
    "FilterOp",
    "GuardOp",
    "ProjectOp",
    "ExtendOp",
    "RenameOp",
    "ProductOp",
    "NestedLoopJoin",
    "HashJoin",
    "IndexLookupJoin",
    "MergeUnion",
    "OuterUnionOp",
    "DifferenceOp",
    "MultiwayJoinOp",
    "PhysicalPlan",
    "PhysicalPlanner",
    "PhysicalResult",
    "expression_key",
]
