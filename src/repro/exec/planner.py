"""Lowering logical algebra expressions into physical plans.

The :class:`PhysicalPlanner` turns a (typically already AD-rewritten) logical
:class:`~repro.algebra.expressions.Expression` tree into a tree of physical
operators from :mod:`repro.exec.operators`:

* chains of selections and type guards over a base relation collapse into a
  single :class:`~repro.exec.operators.Scan` with the predicate and guard pushed
  down (and the predicate's implied equalities exposed for index lookup);
* every :class:`~repro.algebra.expressions.NaturalJoin` is lowered to either a
  :class:`~repro.exec.operators.HashJoin` or a
  :class:`~repro.exec.operators.NestedLoopJoin`, decided by the cardinality
  estimates of :func:`repro.optimizer.cost.estimate_cost`; the smaller estimated
  input becomes the hash-join build side;
* all remaining operators map one-to-one onto their physical counterparts.

:func:`expression_key` derives a stable structural cache key from an expression,
which — combined with the engine's catalog version — keys the plan cache in
:mod:`repro.exec.executor`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.evaluator import EvaluationResult, ExecutionStats
from repro.algebra.expressions import (
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.errors import OptimizerError
from repro.exec.context import DEFAULT_BATCH_SIZE, ExecutionContext
from repro.exec.operators import (
    DifferenceOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    GuardOp,
    HashJoin,
    MergeUnion,
    MultiwayJoinOp,
    NestedLoopJoin,
    OuterUnionOp,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RenameOp,
    Scan,
)
from repro.optimizer.cost import estimate_cost

#: below this many estimated probe×build pairs a nested loop beats the hash setup
DEFAULT_HASH_JOIN_PAIR_THRESHOLD = 64


class PhysicalResult(EvaluationResult):
    """An :class:`EvaluationResult` that also carries the execution context.

    ``result.context.operator_report()`` yields the per-operator breakdown; the
    global counters in ``result.stats`` keep the evaluator-compatible meaning.
    """

    def __init__(self, tuples, stats: ExecutionStats, context: ExecutionContext):
        super().__init__(tuples, stats)
        self.context = context

    def operator_report(self):
        return self.context.operator_report()


class PhysicalPlan:
    """An executable tree of physical operators (the output of the planner)."""

    def __init__(self, root: PhysicalOperator, expression: Optional[Expression] = None):
        self.root = root
        self.expression = expression

    def execute(self, source, stats: Optional[ExecutionStats] = None,
                batch_size: int = DEFAULT_BATCH_SIZE,
                use_indexes: bool = True) -> PhysicalResult:
        """Run the plan against ``source`` and collect the result set."""
        ctx = ExecutionContext(source, stats=stats, batch_size=batch_size,
                               use_indexes=use_indexes)
        tuples = set()
        for batch in self.root.run(ctx):
            tuples.update(batch)
        ctx.stats.tuples_produced = len(tuples)
        return PhysicalResult(tuples, ctx.stats, ctx)

    def explain(self) -> str:
        """Readable multi-line rendering of the plan."""
        return self.root.explain()

    def __repr__(self) -> str:
        return "PhysicalPlan({})".format(self.root.label())


class PhysicalPlanner:
    """Lowers logical expressions to physical plans.

    ``source`` (a database or mapping) supplies base-relation cardinalities for
    the hash-vs-nested-loop decision; without it, joins default to hash (which
    degrades gracefully, whereas a nested loop on large inputs does not).
    """

    def __init__(self, source=None,
                 hash_join_pair_threshold: int = DEFAULT_HASH_JOIN_PAIR_THRESHOLD):
        self.source = source
        self.hash_join_pair_threshold = hash_join_pair_threshold

    def plan(self, expression: Expression) -> PhysicalPlan:
        """Lower ``expression`` into an executable :class:`PhysicalPlan`."""
        return PhysicalPlan(self._lower(expression), expression)

    # -- lowering ------------------------------------------------------------------------

    def _lower(self, expression: Expression) -> PhysicalOperator:
        if isinstance(expression, EmptyRelation):
            return EmptyOp()
        if isinstance(expression, RelationRef):
            return Scan(expression.name)
        if isinstance(expression, Selection):
            child = self._lower(expression.child)
            if isinstance(child, Scan):
                return child.with_predicate(expression.predicate)
            return FilterOp(child, expression.predicate)
        if isinstance(expression, TypeGuardNode):
            child = self._lower(expression.child)
            if isinstance(child, Scan):
                return child.with_guard(expression.attributes)
            return GuardOp(child, expression.attributes)
        if isinstance(expression, Projection):
            return ProjectOp(self._lower(expression.child), expression.attributes)
        if isinstance(expression, Extension):
            return ExtendOp(self._lower(expression.child), expression.attribute,
                            expression.value)
        if isinstance(expression, Rename):
            return RenameOp(self._lower(expression.child), expression.mapping)
        if isinstance(expression, Product):
            return ProductOp(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, OuterUnion):
            return OuterUnionOp(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, Union):
            return MergeUnion(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, Difference):
            return DifferenceOp(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, MultiwayJoin):
            return MultiwayJoinOp([self._lower(child) for child in expression.inputs],
                                  expression.on)
        if isinstance(expression, NaturalJoin):
            return self._lower_join(expression)
        raise OptimizerError("cannot lower expression node {!r}".format(expression))

    def _lower_join(self, expression: NaturalJoin) -> PhysicalOperator:
        left = self._lower(expression.left)
        right = self._lower(expression.right)
        left_cardinality = estimate_cost(expression.left, self.source).cardinality
        right_cardinality = estimate_cost(expression.right, self.source).cardinality
        pairs = left_cardinality * right_cardinality
        known = left_cardinality > 0 and right_cardinality > 0
        if known and pairs <= self.hash_join_pair_threshold:
            return NestedLoopJoin(left, right, on=expression.on)
        # Build on the smaller estimated input (the right child of HashJoin).
        if known and left_cardinality < right_cardinality:
            left, right = right, left
        return HashJoin(left, right, on=expression.on)


def expression_key(expression: Expression) -> Tuple:
    """A hashable structural key identifying an expression tree.

    Two expressions with the same key produce the same physical plan, so the key
    (together with the catalog version) is safe to use as a plan-cache key.
    Predicates contribute their ``repr``, which is deterministic for the whole
    predicate language.
    """
    if isinstance(expression, RelationRef):
        return ("relation", expression.name)
    if isinstance(expression, EmptyRelation):
        return ("empty",)
    if isinstance(expression, Selection):
        return ("select", repr(expression.predicate), expression_key(expression.child))
    if isinstance(expression, TypeGuardNode):
        return ("guard", str(expression.attributes), expression_key(expression.child))
    if isinstance(expression, Projection):
        return ("project", str(expression.attributes), expression_key(expression.child))
    if isinstance(expression, Extension):
        return ("extend", expression.attribute, repr(expression.value),
                expression_key(expression.child))
    if isinstance(expression, Rename):
        return ("rename", tuple(sorted(expression.mapping.items())),
                expression_key(expression.child))
    if isinstance(expression, NaturalJoin):
        return ("join", str(expression.on) if expression.on is not None else None,
                expression_key(expression.left), expression_key(expression.right))
    if isinstance(expression, MultiwayJoin):
        return ("multiway-join", str(expression.on),
                tuple(expression_key(child) for child in expression.inputs))
    # Product / Union / OuterUnion / Difference carry no payload beyond their
    # operator name and children; unknown nodes degrade to the same shape.
    return ((expression.operator,)
            + tuple(expression_key(child) for child in expression.children))
