"""Lowering logical algebra expressions into physical plans.

The :class:`PhysicalPlanner` turns a (typically already AD-rewritten) logical
:class:`~repro.algebra.expressions.Expression` tree into a tree of physical
operators from :mod:`repro.exec.operators`:

* chains of selections and type guards over a base relation collapse into a
  single :class:`~repro.exec.operators.Scan` with the predicate and guard pushed
  down (and the predicate's implied equalities exposed for index lookup);
* nested :class:`~repro.algebra.expressions.NaturalJoin` trees of three or more
  relations first go through the **cost-based join-order search** of
  :mod:`repro.optimizer.joinorder` (``join_order_search="dp"`` by default:
  Selinger-style dynamic programming over connected atom subsets producing
  bushy trees, with a greedy fallback above ``join_dp_threshold`` relations;
  ``"greedy"``, ``"smallest"`` and ``"none"`` select the other strategies).
  The search re-associates the joins into the cheapest estimated order, seeds
  the planner's estimate memo with its per-subset cardinalities — this is what
  keeps the ``est_rows`` / ``est_cost`` annotations honest for composed joins,
  which the plain cost model cannot price — and records a
  :class:`~repro.optimizer.joinorder.JoinSearchReport` (mode, subsets
  enumerated, candidate plans pruned, the chosen order) that
  ``plan.explain()`` renders.  Trees the search deems unsafe to reorder
  (narrowed ``on`` sets, data-dependent joins, unresolvable schemes) keep
  their written order;
* every :class:`~repro.algebra.expressions.NaturalJoin` is then lowered to an
  :class:`~repro.exec.operators.IndexLookupJoin` (when the join attributes are
  static, the inner side is a base relation with a covering hash index, and the
  estimated outer cardinality makes probing cheaper than scanning), a
  :class:`~repro.exec.operators.HashJoin` or a
  :class:`~repro.exec.operators.NestedLoopJoin`, decided by the cardinality
  estimates of the :class:`~repro.optimizer.cost.CostModel`; the smaller
  estimated input becomes the hash-join build side;
* the dependent fragments of a :class:`~repro.algebra.expressions.MultiwayJoin`
  are merged smallest-estimated-first (the order is semantically free);
* all remaining operators map one-to-one onto their physical counterparts.

With ``vectorize=True`` (the default) **every** operator is lowered to its
batch form from :mod:`repro.exec.vectorized` (predicates and guards compiled
once per node, lazy column-merged join output), so whole plans run
``mode == "batch"``; the only row fallbacks are data-dependent natural joins
(``on=None``) and the nested-loop joins chosen for provably tiny inputs.
``batch_forms="core"`` restricts vectorization to the original hot set
(scans/filters/guards/projections/joins, eager join output) for A/B
benchmarking.  ``PhysicalPlan.mode`` reports ``"batch"`` / ``"mixed"`` /
``"row"``; vectorized plans additionally carry an **adaptive batch size**
picked from the cost model's tuple-width estimate and the largest base-table
cardinality (tiny inputs get one batch, wide variant tuples smaller batches),
overridable per plan request and per execution.

When the source database carries fresh statistics (``Database.analyze()``), the
cost model estimates from histograms and variant-tag frequencies, so all of the
above decisions — and the ``est_rows`` / ``est_cost`` annotations rendered by
``plan.explain()`` — are grounded in the data instead of default constants.

:func:`expression_key` derives a stable structural cache key from an expression,
which — combined with the engine's catalog version — keys the plan cache in
:mod:`repro.exec.executor`.
"""

from __future__ import annotations

from math import log2
from time import perf_counter
from typing import Optional, Tuple

from repro.algebra.evaluator import EvaluationResult, ExecutionStats
from repro.algebra.expressions import (
    Aggregate,
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.errors import OptimizerError
from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    VECTOR_BATCH_SIZE,
    ExecutionContext,
    adaptive_batch_size,
)
from repro.exec.operators import (
    DifferenceOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    GuardOp,
    HashAggregateOp,
    HashJoin,
    IndexLookupJoin,
    MergeUnion,
    MultiwayJoinOp,
    NestedLoopJoin,
    OuterUnionOp,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RenameOp,
    Scan,
    SortOp,
    SubqueryExtendOp,
    TopKOp,
)
from repro.exec.vectorized import (
    BatchDifference,
    BatchEmptyOp,
    BatchExtension,
    BatchFilter,
    BatchGuard,
    BatchHashAggregate,
    BatchHashJoin,
    BatchIndexLookupJoin,
    BatchMergeUnion,
    BatchMultiwayJoin,
    BatchOuterUnion,
    BatchProduct,
    BatchProject,
    BatchRename,
    BatchScan,
    BatchSort,
    BatchSubqueryExtend,
    BatchTopK,
)
from repro.obs.feedback import expression_key, referenced_tables
from repro.obs.trace import NOOP_SPAN, tracer_of
from repro.optimizer.cost import CostEstimate, CostModel
from repro.optimizer.joinorder import (
    DEFAULT_DP_THRESHOLD,
    DEFAULT_JOIN_SEARCH,
    SEARCH_MODES,
    JoinSearchReport,
    order_joins,
)

#: below this many estimated probe×build pairs a nested loop beats the hash setup
DEFAULT_HASH_JOIN_PAIR_THRESHOLD = 64

#: the valid ``batch_forms`` settings: ``"all"`` lowers every operator with a
#: batch form (whole-plan vectorization); ``"core"`` reproduces the earlier
#: scan/filter/guard/project/join-only lowering and is kept for A/B
#: benchmarking of the full-batch engine (E14)
BATCH_FORMS = ("all", "core")

#: estimated cost of one index probe relative to reading one tuple in a scan
INDEX_PROBE_COST_FACTOR = 2.0

#: comparisons per input row of the top-k heap relative to a full sort's merge
#: pass — a heap sift pays ~2 comparisons per level where the sort pays one,
#: so the heap wins only while k² ≲ n (the classical nsmallest crossover)
TOPK_HEAP_FACTOR = 2.0


class PhysicalResult(EvaluationResult):
    """An :class:`EvaluationResult` that also carries the execution context.

    ``result.context.operator_report()`` yields the per-operator breakdown; the
    global counters in ``result.stats`` keep the evaluator-compatible meaning.
    """

    def __init__(self, tuples, stats: ExecutionStats, context: ExecutionContext,
                 wall_seconds: float = 0.0):
        super().__init__(tuples, stats)
        self.context = context
        #: end-to-end wall-clock of the plan execution (root drain included)
        self.wall_seconds = wall_seconds

    def operator_report(self):
        return self.context.operator_report()


class PhysicalPlan:
    """An executable tree of physical operators (the output of the planner).

    ``join_search`` carries one :class:`~repro.optimizer.joinorder.JoinSearchReport`
    per n-way join tree the planner reordered; ``explain()`` renders them above
    the operator tree.
    """

    def __init__(self, root: PhysicalOperator, expression: Optional[Expression] = None,
                 join_search: Tuple[JoinSearchReport, ...] = (),
                 batch_size: Optional[int] = None):
        self.root = root
        self.expression = expression
        self.join_search = tuple(join_search)
        #: the planner's (adaptive or requested) batch-size decision; ``None``
        #: falls back to the mode default at execution time
        self.batch_size = batch_size
        self._mode: Optional[str] = None

    @property
    def mode(self) -> str:
        """The plan's execution mode: ``"batch"`` when every operator runs
        vectorized, ``"row"`` when none does, ``"mixed"`` otherwise."""
        if self._mode is None:
            flags = []
            pending = [self.root]
            while pending:
                node = pending.pop()
                flags.append(node.vectorized)
                pending.extend(node.children)
            if all(flags):
                self._mode = "batch"
            elif any(flags):
                self._mode = "mixed"
            else:
                self._mode = "row"
        return self._mode

    def execute(self, source, stats: Optional[ExecutionStats] = None,
                batch_size: Optional[int] = None,
                use_indexes: bool = True,
                timing: bool = True, governor=None) -> PhysicalResult:
        """Run the plan against ``source`` and collect the result set.

        ``batch_size=None`` uses the plan's own sizing decision (the planner's
        adaptive choice, or the size the plan was requested under), falling
        back to the mode default: ~1024 tuples per batch for vectorized plans,
        256 for row plans.  ``timing=False`` turns off the per-operator
        wall-clock accounting (see :class:`~repro.exec.context.OperatorStats`);
        the result's own ``wall_seconds`` is always measured.  ``governor``
        bounds the execution (deadline, cancellation, memory budget — see
        :mod:`repro.governor`); ``None`` runs ungoverned.
        """
        if batch_size is None:
            batch_size = self.batch_size
        if batch_size is None:
            batch_size = DEFAULT_BATCH_SIZE if self.mode == "row" else VECTOR_BATCH_SIZE
        ctx = ExecutionContext(source, stats=stats, batch_size=batch_size,
                               use_indexes=use_indexes, timing=timing,
                               governor=governor)
        started = perf_counter()
        tuples = set()
        for batch in self.root.run(ctx):
            tuples.update(batch)
        wall = perf_counter() - started
        ctx.stats.tuples_produced = len(tuples)
        return PhysicalResult(tuples, ctx.stats, ctx, wall_seconds=wall)

    def explain(self) -> str:
        """Readable multi-line rendering of the plan.

        When the planner ran a join-order search, its one-line reports (mode,
        DP statistics, the chosen order) precede the operator tree.
        """
        lines = [report.describe() for report in self.join_search]
        lines.append(self.root.explain())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "PhysicalPlan({})".format(self.root.label())


class PhysicalPlanner:
    """Lowers logical expressions to physical plans.

    ``source`` (a database or mapping) supplies base-relation cardinalities for
    the join-algorithm decisions; without it, joins default to hash (which
    degrades gracefully, whereas a nested loop on large inputs does not).
    ``statistics`` overrides the statistics catalog consulted by the cost model
    (by default the source's own, see :class:`~repro.optimizer.cost.CostModel`).
    ``join_order_search`` selects the n-way join-order strategy of
    :mod:`repro.optimizer.joinorder` (``"dp"`` / ``"greedy"`` / ``"smallest"`` /
    ``"none"``); ``join_dp_threshold`` is the relation count above which DP
    falls back to greedy.
    """

    def __init__(self, source=None,
                 hash_join_pair_threshold: int = DEFAULT_HASH_JOIN_PAIR_THRESHOLD,
                 statistics=None,
                 index_probe_cost_factor: float = INDEX_PROBE_COST_FACTOR,
                 vectorize: bool = True,
                 join_order_search: str = DEFAULT_JOIN_SEARCH,
                 join_dp_threshold: int = DEFAULT_DP_THRESHOLD,
                 batch_forms: str = "all"):
        self.source = source
        self.hash_join_pair_threshold = hash_join_pair_threshold
        self.cost_model = CostModel(source, statistics=statistics,
                                    vectorized=vectorize)
        self.index_probe_cost_factor = index_probe_cost_factor
        #: default execution mode: lower hot operators to their batch forms
        self.vectorize = vectorize
        if batch_forms not in BATCH_FORMS:
            raise OptimizerError(
                "unknown batch_forms setting {!r}; use one of {}".format(
                    batch_forms, "/".join(BATCH_FORMS)))
        #: which operators get batch forms under vectorization ("all" / "core")
        self.batch_forms = batch_forms
        if join_order_search not in SEARCH_MODES:
            raise OptimizerError(
                "unknown join_order_search mode {!r}; use one of {}".format(
                    join_order_search, "/".join(SEARCH_MODES)))
        #: join-order strategy for n-way NaturalJoin trees (plan-cache key part)
        self.join_order_search = join_order_search
        self.join_dp_threshold = join_dp_threshold
        self._estimates: dict = {}
        self._vectorize = vectorize
        #: ids of NaturalJoin nodes produced by the search (skip re-searching)
        self._ordered_joins: set = set()
        #: search results of the current plan() call (also keeps the rebuilt
        #: trees alive so the id-keyed memos above cannot alias freed nodes)
        self._search_results: list = []
        #: the source's tracer for the duration of one plan() call
        self._tracer = None

    def plan(self, expression: Expression,
             vectorize: Optional[bool] = None,
             batch_size: Optional[int] = None) -> PhysicalPlan:
        """Lower ``expression`` into an executable :class:`PhysicalPlan`.

        ``vectorize`` overrides the planner default for this one plan: ``True``
        lowers every operator with a batch form to it (with
        ``batch_forms="all"``, that is all of them — whole plans run
        ``mode == "batch"`` except for row fallbacks documented in
        :mod:`repro.exec.vectorized`), ``False`` produces a pure row plan.

        ``batch_size`` pins the plan's batch size; when omitted, vectorized
        plans receive the **adaptive** size — picked from the cost model's
        tuple-width estimate and the largest base-table cardinality (tiny
        inputs get one batch, wide variant tuples get smaller batches) — and
        row plans keep the row default.  Either way the decision is baked into
        the returned plan (and the plan cache is keyed on it).
        """
        self._estimates = {}
        self._ordered_joins = set()
        self._search_results = []
        self._vectorize = self.vectorize if vectorize is None else vectorize
        self.cost_model.set_vectorized(self._vectorize)
        self._tracer = tracer_of(self.source)
        span = (self._tracer.span("physical-plan", vectorize=self._vectorize,
                                  join_order_search=self.join_order_search,
                                  batch_forms=self.batch_forms)
                if self._tracer is not None else NOOP_SPAN)
        try:
            with span:
                self._trace_statistics_lookup()
                root = self._lower(expression)
                reports = tuple(result.report for result in self._search_results)
                if batch_size is None and self._vectorize:
                    batch_size = self._adaptive_batch_size(expression)
                span.set(mode="batch" if self._vectorize else "row",
                         batch_size=batch_size)
            return PhysicalPlan(root, expression, join_search=reports,
                                batch_size=batch_size)
        finally:
            self._estimates = {}
            self._ordered_joins = set()
            self._search_results = []
            self._vectorize = self.vectorize
            self.cost_model.set_vectorized(self.vectorize)
            self._tracer = None

    def _trace_statistics_lookup(self) -> None:
        """Record which tables contribute fresh statistics to this plan."""
        if self._tracer is None:
            return
        catalog = getattr(self.source, "statistics", None)
        if catalog is None:
            self._tracer.event("statistics-lookup", fresh=[], version=None)
            return
        self._tracer.event("statistics-lookup", fresh=catalog.fresh_names(),
                           version=catalog.version)

    # -- lowering ------------------------------------------------------------------------

    def _estimate(self, expression: Expression) -> CostEstimate:
        """Cost-model estimate for a node, memoized per ``plan()`` invocation."""
        return self.cost_model.estimate(expression, _memo=self._estimates)

    def _adaptive_batch_size(self, expression: Expression) -> int:
        """The plan's batch size from estimated tuple width and input size."""
        width = self.cost_model.estimate_width(expression)
        largest = None
        pending = [expression]
        while pending:
            node = pending.pop()
            if isinstance(node, RelationRef):
                cardinality = self._estimate(node).cardinality
                if largest is None or cardinality > largest:
                    largest = cardinality
            else:
                pending.extend(node.children)
        return adaptive_batch_size(width, largest)

    def _lower(self, expression: Expression) -> PhysicalOperator:
        operator = self._lower_node(expression)
        # Annotate the produced operator with this node's estimate; a Scan that
        # absorbed a selection/guard chain receives the estimate of the chain's
        # top node, which is exactly what it computes.
        estimate = self._estimate(expression)
        operator.estimated_rows = estimate.cardinality
        operator.estimated_cost = estimate.work
        # The feedback identity: what this operator computes (structurally)
        # and which base tables that computation reads.  ``_observe_query``
        # folds the operator's actual rows_out under this key.
        operator.fingerprint = expression_key(expression)
        operator.feedback_tables = referenced_tables(expression)
        return operator

    def _lower_node(self, expression: Expression) -> PhysicalOperator:
        # ``batch_forms="core"`` restricts vectorization to the original hot
        # set (scan/filter/guard/project/joins) — kept for A/B benchmarks.
        full = self._vectorize and self.batch_forms == "all"
        if isinstance(expression, EmptyRelation):
            return BatchEmptyOp() if full else EmptyOp()
        if isinstance(expression, RelationRef):
            return BatchScan(expression.name) if self._vectorize else Scan(expression.name)
        if isinstance(expression, Selection):
            child = self._lower(expression.child)
            if isinstance(child, Scan):
                return child.with_predicate(expression.predicate)
            if self._vectorize:
                return BatchFilter(child, expression.predicate)
            return FilterOp(child, expression.predicate)
        if isinstance(expression, TypeGuardNode):
            child = self._lower(expression.child)
            if isinstance(child, Scan):
                return child.with_guard(expression.attributes)
            if self._vectorize:
                return BatchGuard(child, expression.attributes)
            return GuardOp(child, expression.attributes)
        if isinstance(expression, Projection):
            project = BatchProject if self._vectorize else ProjectOp
            return project(self._lower(expression.child), expression.attributes)
        if isinstance(expression, Extension):
            extend = BatchExtension if full else ExtendOp
            return extend(self._lower(expression.child), expression.attribute,
                          expression.value)
        if isinstance(expression, Rename):
            rename = BatchRename if full else RenameOp
            return rename(self._lower(expression.child), expression.mapping)
        if isinstance(expression, Product):
            product = BatchProduct if full else ProductOp
            return product(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, OuterUnion):
            union = BatchOuterUnion if full else OuterUnionOp
            return union(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, Union):
            union = BatchMergeUnion if full else MergeUnion
            return union(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, Difference):
            difference = BatchDifference if full else DifferenceOp
            return difference(self._lower(expression.left), self._lower(expression.right))
        if isinstance(expression, MultiwayJoin):
            master, fragments = expression.inputs[0], list(expression.inputs[1:])
            # Merge the smallest estimated fragments into the master first (the
            # dependent fragments commute, so this only changes intermediate
            # sizes, never the result).
            fragments.sort(key=lambda child: self._estimate(child).cardinality)
            multiway = BatchMultiwayJoin if full else MultiwayJoinOp
            return multiway([self._lower(child) for child in [master] + fragments],
                            expression.on)
        if isinstance(expression, Aggregate):
            aggregate = BatchHashAggregate if full else HashAggregateOp
            return aggregate(self._lower(expression.child), expression.group_by,
                             expression.specs)
        if isinstance(expression, Sort):
            sort = BatchSort if full else SortOp
            return sort(self._lower(expression.child), expression.keys)
        if isinstance(expression, Limit):
            return self._lower_limit(expression, full)
        if isinstance(expression, SubqueryExtension):
            extend = BatchSubqueryExtend if full else SubqueryExtendOp
            return extend(self._lower(expression.child), expression.attribute,
                          self._lower(expression.subquery))
        if isinstance(expression, NaturalJoin):
            ordered = self._search_join_order(expression)
            return self._lower_join(expression if ordered is None else ordered)
        raise OptimizerError("cannot lower expression node {!r}".format(expression))

    def _lower_limit(self, expression: Limit, full: bool) -> PhysicalOperator:
        """λ, fused with a child τ when present: heap vs full-sort pricing.

        ``Limit(Sort(E), k)`` lowers to a single physical operator over ``E``
        (a bare ``Limit`` is the same with the canonical tuple order).  The
        heap holds ``k`` rows and pays ``~2·n·log2(k)`` comparisons (sift
        cost); the sort materializes everything for ``n·log2(n)`` — the
        estimated input cardinality decides, so a ``k`` beyond ``√n`` falls
        back to the sort-with-cutoff form and a small ``k`` gets the
        bounded-memory heap.
        """
        child_expr = expression.child
        if isinstance(child_expr, Sort):
            keys = child_expr.keys
            input_expr = child_expr.child
        else:
            keys = ()
            input_expr = child_expr
        k = expression.count
        n = max(self._estimate(input_expr).cardinality, 1.0)
        heap_cost = n * log2(max(k, 2)) * TOPK_HEAP_FACTOR
        sort_cost = n * log2(max(n, 2))
        child = self._lower(input_expr)
        if heap_cost <= sort_cost:
            top_k = BatchTopK if full else TopKOp
            return top_k(child, keys, k)
        sort = BatchSort if full else SortOp
        return sort(child, keys, limit=k)

    def _search_join_order(self, expression: NaturalJoin) -> Optional[NaturalJoin]:
        """Run the join-order search on an n-way NaturalJoin tree, if enabled.

        Returns the reordered tree (whose estimate memo entries and report are
        absorbed into the current plan), or ``None`` to keep the written order.
        Trees the search itself produced are never re-searched.
        """
        if self.join_order_search == "none" or id(expression) in self._ordered_joins:
            return None
        result = order_joins(expression, self.cost_model,
                             mode=self.join_order_search,
                             dp_threshold=self.join_dp_threshold,
                             memo=self._estimates,
                             index_probe_cost_factor=self.index_probe_cost_factor,
                             tracer=self._tracer)
        if result is None:
            return None
        self._search_results.append(result)
        self._estimates.update(result.estimates)
        self._ordered_joins.update(id(node) for node in result.join_nodes)
        return result.expression

    def _lower_join(self, expression: NaturalJoin) -> PhysicalOperator:
        left_estimate = self._estimate(expression.left)
        right_estimate = self._estimate(expression.right)
        left_cardinality = left_estimate.cardinality
        right_cardinality = right_estimate.cardinality
        index_join = self._index_lookup_join(expression, left_cardinality, right_cardinality)
        if index_join is not None:
            return index_join
        left = self._lower(expression.left)
        right = self._lower(expression.right)
        # The nested loop examines |L|×|R| pairs, which is catastrophic when an
        # estimate is too low — so the decision uses the hard cardinality upper
        # bounds, not the estimates: a nested loop only for provably tiny inputs.
        pairs = left_estimate.bound * right_estimate.bound
        known = left_cardinality > 0 and right_cardinality > 0
        if known and pairs <= self.hash_join_pair_threshold:
            return NestedLoopJoin(left, right, on=expression.on)
        # Build on the smaller estimated input (the right child of HashJoin).
        if known and left_cardinality < right_cardinality:
            left, right = right, left
        if self._vectorize and expression.on is not None and len(expression.on):
            # The batch hash join needs statically known join attributes; the
            # data-dependent natural join keeps the row implementation.
            return BatchHashJoin(left, right, on=expression.on,
                                 lazy=self.batch_forms == "all")
        return HashJoin(left, right, on=expression.on)

    def _index_lookup_join(self, expression: NaturalJoin,
                           left_cardinality: float,
                           right_cardinality: float) -> Optional[IndexLookupJoin]:
        """An :class:`IndexLookupJoin` when probing beats scanning, else ``None``.

        Requires statically known join attributes and a base-relation inner side
        whose maintained hash index covers (a subset of) them.  The decision
        compares the estimated probe cost — outer cardinality × (probe factor +
        the index's average bucket size, i.e. the partners each probe examines)
        — against the scan the hash join would pay on the inner side.  This is
        where an accurate outer estimate (e.g. a 1% variant tag from the
        statistics) flips the plan: the default constants overestimate the
        outer side and keep the full scan.  A low-NDV index (huge buckets)
        prices itself out via the fan-out term.
        """
        if expression.on is None or self.source is None:
            return None
        if not hasattr(self.source, "relation"):
            return None
        best = None
        candidates = (
            (expression.left, expression.right, left_cardinality),
            (expression.right, expression.left, right_cardinality),
        )
        for outer_expr, inner_expr, outer_cardinality in candidates:
            if not isinstance(inner_expr, RelationRef) or outer_cardinality <= 0:
                continue
            try:
                table = self.source.relation(inner_expr.name)
            except Exception:
                continue
            index_for = getattr(table, "index_for", None)
            index = index_for(expression.on) if index_for is not None else None
            if index is None:
                continue
            try:
                inner_cardinality = len(table)
            except TypeError:
                continue
            fan_out = 1.0
            bucket_size = getattr(index, "average_bucket_size", None)
            if bucket_size is not None:
                fan_out = max(1.0, bucket_size())
            probe_cost = outer_cardinality * (self.index_probe_cost_factor + fan_out)
            if probe_cost > inner_cardinality:
                continue
            gain = inner_cardinality - probe_cost
            if best is None or gain > best[0]:
                best = (gain, outer_expr, inner_expr.name)
        if best is None:
            return None
        _gain, outer_expr, inner_name = best
        if self._vectorize:
            return BatchIndexLookupJoin(self._lower(outer_expr), inner_name,
                                        expression.on,
                                        lazy=self.batch_forms == "all")
        return IndexLookupJoin(self._lower(outer_expr), inner_name, expression.on)


# ``expression_key`` moved to :mod:`repro.obs.feedback` (the cost model needs
# it too, and importing the planner from the optimizer would cycle); it is
# re-imported above and re-exported here for compatibility.
