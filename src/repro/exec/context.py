"""Execution context and per-operator statistics for the physical engine.

The physical operators of :mod:`repro.exec.operators` do not talk to the database
directly; everything they need at run time — the relation source, the global
:class:`~repro.algebra.evaluator.ExecutionStats` counters, and a per-operator
breakdown — travels in an :class:`ExecutionContext`.

The global counters are *the same object* the naive evaluator uses, so costs
reported by the physical engine are directly comparable with the evaluator's
(``total_work`` means the same thing in both).  On top of that the context keeps
one :class:`OperatorStats` per plan node, which is what ``EXPLAIN ANALYZE``-style
reporting and the benchmarks consume.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.algebra.evaluator import ExecutionStats

#: default number of tuples per batch handed between operators (row mode)
DEFAULT_BATCH_SIZE = 256

#: default batch size for vectorized plans — larger batches amortize the
#: per-batch column extraction and counter updates across more tuples
VECTOR_BATCH_SIZE = 1024

#: target number of *values* (tuple width × batch size) per vectorized batch;
#: wide variant tuples get proportionally smaller batches so column extraction
#: and presence bitmaps stay cache-friendly
TARGET_BATCH_CELLS = 8192

#: bounds of the adaptive batch-size decision
MIN_BATCH_SIZE = 64
MAX_BATCH_SIZE = 4096


#: how many elements of a materialized container the size estimate inspects
MEMORY_SAMPLE = 8


def _element_size(value) -> int:
    """One element's approximate byte size, descending a single level into
    containers (a hash bucket's tuple list, a tuple's value dict)."""
    size = sys.getsizeof(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        if value:
            size += sys.getsizeof(next(iter(value))) * len(value)
    elif isinstance(value, dict):
        if value:
            key, val = next(iter(value.items()))
            size += (sys.getsizeof(key) + sys.getsizeof(val)) * len(value)
    return size


def sampled_size(container, sample: int = MEMORY_SAMPLE) -> int:
    """Approximate byte size of an operator's materialized state.

    ``sys.getsizeof`` on the container plus the sizes of the first ``sample``
    elements scaled to the element count — a handful of calls at a build
    boundary, never per tuple, so memory accounting stays inside the E15
    overhead gate.  The answer is an estimate (shared substructure is counted
    per reference, element variance beyond the sample is extrapolated); its
    job is ranking operators by footprint, not exact accounting.
    """
    size = sys.getsizeof(container)
    try:
        length = len(container)
    except TypeError:
        return size
    if not length:
        return size
    if isinstance(container, dict):
        iterator = iter(container.items())
        total = 0
        count = min(sample, length)
        for _ in range(count):
            key, value = next(iterator)
            total += sys.getsizeof(key) + _element_size(value)
        return size + (total * length) // count
    iterator = iter(container)
    total = 0
    count = min(sample, length)
    for _ in range(count):
        total += _element_size(next(iterator))
    return size + (total * length) // count


def adaptive_batch_size(width: float, base_rows: Optional[float] = None) -> int:
    """The planner's batch-size heuristic for vectorized plans.

    ``width`` is the estimated average tuple width (attributes per tuple, from
    the statistics when fresh); ``base_rows`` the largest base-relation
    cardinality feeding the plan.  The size targets
    :data:`TARGET_BATCH_CELLS` values per batch, clamped to
    [:data:`MIN_BATCH_SIZE`, :data:`MAX_BATCH_SIZE`] — and a tiny input is
    widened to a single batch, since splitting a few hundred tuples only pays
    per-batch overhead without amortizing anything.
    """
    size = int(TARGET_BATCH_CELLS // max(1.0, float(width)))
    size = max(MIN_BATCH_SIZE, min(MAX_BATCH_SIZE, size))
    if base_rows is not None and 0 < base_rows <= MAX_BATCH_SIZE:
        size = max(size, int(base_rows))
    return size


class OperatorStats:
    """Counters for one physical operator instance.

    ``wall_seconds`` is the operator's *inclusive* wall-clock time (its own
    work plus its children's, as in PostgreSQL's EXPLAIN ANALYZE): the run
    loop times the eager setup in ``_generate`` plus every batch pulled from
    the operator, and pulling one batch from a parent drives the whole
    subtree below it.  The clock ticks per batch, never per tuple, so the
    overhead stays inside the E15 benchmark's ≤5% gate.
    """

    def __init__(self, label: str):
        self.label = label
        self.rows_in = 0
        self.rows_out = 0
        self.batches_out = 0
        self.invocations = 0
        self.wall_seconds = 0.0
        #: sampled peak bytes held by the operator's materialized state (hash
        #: builds, multiway drains, batch materializations); 0 for streaming
        #: operators that never hold more than one batch
        self.peak_bytes = 0

    def note_memory(self, size_bytes: int) -> None:
        """Fold one sampled state-size measurement into the peak."""
        if size_bytes > self.peak_bytes:
            self.peak_bytes = size_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "operator": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches_out": self.batches_out,
            "invocations": self.invocations,
            "wall_seconds": self.wall_seconds,
            "peak_bytes": self.peak_bytes,
        }

    def __repr__(self) -> str:
        return "OperatorStats({}: in={}, out={})".format(self.label, self.rows_in, self.rows_out)


class ExecutionContext:
    """Run-time state shared by every operator of one plan execution.

    Parameters
    ----------
    source:
        The relation source — a :class:`repro.engine.Database`, a mapping
        ``{name: relation}``, or anything the naive evaluator accepts.
    stats:
        The global work counters; a fresh :class:`ExecutionStats` when omitted.
    batch_size:
        How many tuples an operator accumulates before handing a batch downstream.
    use_indexes:
        Whether :class:`~repro.exec.operators.Scan` may answer pushed-down equality
        predicates from the engine's hash indexes.
    timing:
        Whether operators maintain :attr:`OperatorStats.wall_seconds` (two
        ``perf_counter`` reads per batch per operator).  On by default; the
        E15 overhead benchmark runs with ``timing=False`` as its baseline.
    governor:
        The :class:`~repro.governor.governor.QueryGovernor` bounding this
        execution (deadline, cancellation, memory budget), or ``None`` for
        ungoverned runs — the common case, kept zero-overhead: operators
        test ``ctx.governor is not None`` once per stream/build, never per
        tuple.
    """

    def __init__(self, source, stats: Optional[ExecutionStats] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE, use_indexes: bool = True,
                 timing: bool = True, governor=None):
        self.source = source
        self.stats = stats if stats is not None else ExecutionStats()
        self.batch_size = max(1, int(batch_size))
        self.use_indexes = use_indexes
        self.timing = timing
        self.governor = governor
        self._operator_stats: List[OperatorStats] = []

    def enforce_memory(self, op_stats: OperatorStats, size_bytes: int) -> None:
        """Record a sampled state size and enforce the memory budget, if any.

        Non-spillable operators call this instead of ``note_memory`` at their
        materialization points: the measurement always lands in
        ``peak_bytes``, and a governed run over budget unwinds with
        ``MemoryBudgetExceeded``.
        """
        op_stats.note_memory(size_bytes)
        governor = self.governor
        if governor is not None:
            governor.enforce(op_stats.label, size_bytes)

    def spill_budget(self) -> Optional[int]:
        """The byte budget spill-capable operators run under, or ``None``
        when this execution is unbudgeted (or spilling is disabled — then
        ``enforce_memory`` fails fast instead)."""
        governor = self.governor
        if governor is None:
            return None
        return governor.spill_budget

    def register_operator(self, label: str) -> OperatorStats:
        """Create (and remember) the per-operator counters for one plan node."""
        op_stats = OperatorStats(label)
        self._operator_stats.append(op_stats)
        return op_stats

    @property
    def operator_stats(self) -> List[OperatorStats]:
        """Per-operator counters in registration (plan) order."""
        return list(self._operator_stats)

    def operator_report(self) -> List[Dict[str, object]]:
        """The per-operator breakdown as a list of plain dicts (JSON-friendly)."""
        return [s.as_dict() for s in self._operator_stats]

    def __repr__(self) -> str:
        return "ExecutionContext(batch_size={}, operators={})".format(
            self.batch_size, len(self._operator_stats)
        )
