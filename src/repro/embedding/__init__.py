"""Programming-language embedding of flexible relations (Sections 3.3 and 4.2).

A flexible scheme whose existential attribute relationships are all accompanied by
attribute dependencies can be translated into a programming-language type — the
paper's example is PASCAL's variant record.  Two practical obstacles are handled
here exactly as the paper suggests:

* PASCAL allows only a *single* attribute as the determinant of a variant record;
  a dependency ``X --attr--> Y`` with ``|X| > 1`` is replaced by an artificial
  attribute ``A``, the AD ``A --attr--> Y`` and the FD ``X --func--> A``.  The
  validity of the replacement is justified by the combined transitivity rule (AF2)
  and is re-derived (with a proof trace) by the translator.
* An existential relationship without any AD gets an artificial AD with an
  artificial determining attribute.
"""

from repro.embedding.variant_records import VariantCase, VariantRecordType
from repro.embedding.translator import (
    ArtificialDeterminant,
    TranslationResult,
    translate_scheme,
)

__all__ = [
    "VariantCase",
    "VariantRecordType",
    "ArtificialDeterminant",
    "TranslationResult",
    "translate_scheme",
]
