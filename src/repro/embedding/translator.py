"""Translation of flexible schemes + dependencies into variant-record types.

The translator takes the unconditioned attributes of a flexible scheme as the fixed
part and turns one explicit attribute dependency into the tagged variant part:

* a single-attribute determinant becomes the tag field directly;
* a multi-attribute determinant ``X`` triggers the paper's work-around (Section
  4.2): an artificial attribute ``A`` is introduced, the dependency is replaced by
  ``A --attr--> Y`` and the constraint set is extended by ``X --func--> A``.  The
  translator re-derives the original ``X --attr--> Y`` from the replacement with the
  combined system Å* and attaches the proof trace, demonstrating the validity of the
  replacement.

Schemes with optional structure but *no* covering dependency get an artificial AD
whose artificial determinant enumerates the admitted variants (Section 3.3), so that
every existential relationship ends up tag-discriminated, as PASCAL requires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.axioms import AXIOM_SYSTEM_COMBINED, DerivationTrace, derive
from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
)
from repro.embedding.variant_records import VariantCase, VariantRecordType
from repro.errors import EmbeddingError
from repro.model.attributes import AttributeSet, attrset
from repro.model.scheme import FlexibleScheme


class ArtificialDeterminant:
    """Record of an artificial attribute introduced during translation."""

    def __init__(self, attribute: str, replaces: AttributeSet,
                 functional_dependency: FunctionalDependency,
                 attribute_dependency: AttributeDependency,
                 justification: Optional[DerivationTrace]):
        self.attribute = attribute
        self.replaces = replaces
        self.functional_dependency = functional_dependency
        self.attribute_dependency = attribute_dependency
        #: proof (in Å*) that the replaced dependency is still implied
        self.justification = justification

    def __repr__(self) -> str:
        return "ArtificialDeterminant({!r} for {})".format(self.attribute, self.replaces)


class TranslationResult:
    """The variant-record type plus everything introduced to make it expressible."""

    def __init__(self, record_type: VariantRecordType,
                 artificial: List[ArtificialDeterminant],
                 added_dependencies: List[Dependency]):
        self.record_type = record_type
        self.artificial = list(artificial)
        self.added_dependencies = list(added_dependencies)

    def __repr__(self) -> str:
        return "TranslationResult({!r}, artificial={})".format(
            self.record_type.name, [a.attribute for a in self.artificial]
        )


def _unconditioned_attributes(scheme: FlexibleScheme) -> AttributeSet:
    """Attributes present in every combination admitted by the scheme."""
    combos = scheme.dnf()
    if not combos:
        return AttributeSet()
    iterator = iter(combos)
    common = next(iterator)
    for combo in iterator:
        common = common & combo
    return common


def translate_scheme(
    scheme: FlexibleScheme,
    dependency: Optional[ExplicitAttributeDependency] = None,
    type_name: str = "flexible_record",
    artificial_attribute: str = "variant_tag",
) -> TranslationResult:
    """Translate a flexible scheme (plus its explicit AD, if any) into a variant record."""
    fixed = _unconditioned_attributes(scheme)
    variable = scheme.attributes - fixed
    artificial: List[ArtificialDeterminant] = []
    added: List[Dependency] = []

    if dependency is None:
        if not variable:
            record = VariantRecordType(type_name, fixed, None, ())
            return TranslationResult(record, [], [])
        # Section 3.3: no AD covers the existential relationship — introduce an
        # artificial one whose determinant enumerates the admitted variants.
        combos = sorted(scheme.dnf(), key=lambda c: c.names)
        variants = []
        cases = []
        for index, combo in enumerate(combos, start=1):
            tag_value = "variant-{}".format(index)
            local = combo - fixed
            variants.append(Variant([{artificial_attribute: tag_value}], local, name=tag_value))
            cases.append(VariantCase(tag_value, [tag_value], local))
        artificial_dependency = ExplicitAttributeDependency(
            attrset(artificial_attribute), variable, variants
        )
        added.append(artificial_dependency)
        record = VariantRecordType(type_name, fixed, artificial_attribute, cases)
        return TranslationResult(record, [], added)

    if not dependency.rhs.issubset(scheme.attributes):
        raise EmbeddingError(
            "dependency {!r} mentions attributes outside the scheme".format(dependency)
        )

    determinant = dependency.lhs
    if len(determinant) == 1:
        tag_field = next(iter(determinant)).name
        cases = _cases_from_dependency(dependency, tag_field)
        fixed_part = (fixed - dependency.rhs) - determinant
        record = VariantRecordType(type_name, fixed_part, tag_field, cases)
        return TranslationResult(record, [], [])

    # Multi-attribute determinant: the PASCAL work-around of Section 4.2.
    tag_field = artificial_attribute
    tag_values: Dict[Tuple, str] = {}
    cases: List[VariantCase] = []
    variant_values: List[Variant] = []
    for index, variant in enumerate(dependency.variants, start=1):
        label = variant.name or "case-{}".format(index)
        for value in variant.values:
            tag_values[tuple(value[a] for a in determinant)] = label
        cases.append(VariantCase(label, [label], variant.attributes))
        variant_values.append(Variant([{tag_field: label}], variant.attributes, name=label))

    replacement_ad = ExplicitAttributeDependency(attrset(tag_field), dependency.rhs, variant_values)
    functional = FunctionalDependency(determinant, attrset(tag_field))
    justification = derive(
        [functional, replacement_ad.to_ad()],
        dependency.to_ad(),
        system=AXIOM_SYSTEM_COMBINED,
    )
    if justification is None:
        raise EmbeddingError(
            "internal error: the artificial-determinant replacement is not derivable"
        )
    artificial.append(
        ArtificialDeterminant(tag_field, determinant, functional, replacement_ad.to_ad(), justification)
    )
    added.extend([functional, replacement_ad])
    fixed_part = (fixed - dependency.rhs) | determinant
    record = VariantRecordType(type_name, fixed_part, tag_field, cases)
    return TranslationResult(record, artificial, added)


def _cases_from_dependency(dependency: ExplicitAttributeDependency, tag_field: str) -> List[VariantCase]:
    cases = []
    for index, variant in enumerate(dependency.variants, start=1):
        label = variant.name or "case-{}".format(index)
        values = [value[tag_field] for value in variant.values]
        cases.append(VariantCase(label, values, variant.attributes))
    return cases
