"""Variant-record types (the PASCAL-style target of the embedding).

A :class:`VariantRecordType` has

* *fixed fields* — always present (the unconditioned attributes of the scheme),
* a single *tag field* — the determinant of the variant part,
* *cases* — one per tag value (or tag value set), each listing the fields present
  for that case.

The class can check heterogeneous tuples against the type, enumerate the attribute
combinations it admits, and render itself as PASCAL-like or Python ``dataclass``-like
source text (useful to eyeball the embedding and in the documentation examples).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import EmbeddingError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


class VariantCase:
    """One case of the variant part: the tag values selecting it and its fields."""

    def __init__(self, name: str, tag_values: Sequence, fields):
        if not name:
            raise EmbeddingError("a variant case needs a name")
        self.name = name
        self.tag_values = tuple(tag_values)
        if not self.tag_values:
            raise EmbeddingError("variant case {!r} needs at least one tag value".format(name))
        self.fields = attrset(fields)

    def __repr__(self) -> str:
        return "VariantCase({!r}, tags={}, fields={})".format(self.name, list(self.tag_values), self.fields)


class VariantRecordType:
    """A record type with a fixed part and a tagged variant part."""

    def __init__(self, name: str, fixed_fields, tag_field: Optional[str],
                 cases: Sequence[VariantCase] = ()):
        self.name = name
        self.fixed_fields = attrset(fixed_fields)
        self.tag_field = tag_field
        self.cases = list(cases)
        if self.cases and not tag_field:
            raise EmbeddingError("a variant part needs a tag field")
        seen = set()
        for case in self.cases:
            for value in case.tag_values:
                if value in seen:
                    raise EmbeddingError(
                        "tag value {!r} selects more than one case".format(value)
                    )
                seen.add(value)

    # -- conformance ---------------------------------------------------------------------------

    def case_for(self, tag_value) -> Optional[VariantCase]:
        """The case selected by a tag value, or ``None``."""
        for case in self.cases:
            if tag_value in case.tag_values:
                return case
        return None

    def accepts(self, tup: FlexTuple) -> bool:
        """``True`` when the tuple matches the fixed part plus exactly one case."""
        required = self.fixed_fields
        if self.tag_field is not None:
            required = required | attrset(self.tag_field)
        if not tup.is_defined_on(required):
            return False
        variant_fields = AttributeSet()
        if self.tag_field is not None and self.cases:
            case = self.case_for(tup[self.tag_field])
            if case is not None:
                variant_fields = case.fields
        expected = required | variant_fields
        return tup.attributes == expected

    def admitted_combinations(self) -> Set[AttributeSet]:
        """Attribute combinations the type admits (one per case, or just the fixed part)."""
        base = self.fixed_fields
        if self.tag_field is not None:
            base = base | attrset(self.tag_field)
        if not self.cases:
            return {base}
        return {base | case.fields for case in self.cases}

    # -- rendering -------------------------------------------------------------------------------

    def to_pascal(self) -> str:
        """PASCAL-like source text for the type."""
        lines = ["type {} = record".format(self.name)]
        for field in self.fixed_fields:
            lines.append("  {}: <domain>;".format(field.name))
        if self.tag_field is not None and self.cases:
            lines.append("  case {}: <domain> of".format(self.tag_field))
            for case in self.cases:
                tags = ", ".join(repr(v) for v in case.tag_values)
                fields = "; ".join("{}: <domain>".format(f.name) for f in case.fields)
                lines.append("    {}: ({});".format(tags, fields))
        lines.append("end;")
        return "\n".join(lines)

    def to_python(self) -> str:
        """Python dataclass-like source text for the type (one class per case)."""
        lines = ["@dataclass", "class {}:".format(_camel(self.name))]
        for field in self.fixed_fields:
            lines.append("    {}: object".format(field.name))
        if self.tag_field is not None:
            lines.append("    {}: object".format(self.tag_field))
        for case in self.cases:
            lines.append("")
            lines.append("@dataclass")
            lines.append("class {}({}):".format(_camel(case.name), _camel(self.name)))
            if not case.fields:
                lines.append("    pass")
            for field in case.fields:
                lines.append("    {}: object".format(field.name))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "VariantRecordType({!r}, fixed={}, tag={!r}, cases={})".format(
            self.name, self.fixed_fields, self.tag_field, [c.name for c in self.cases]
        )


def _camel(name: str) -> str:
    parts = [part for part in name.replace("-", "_").split("_") if part]
    return "".join(part.capitalize() for part in parts) or "Record"
