"""Evaluation of algebra expressions over flexible relations.

The :class:`Evaluator` walks an expression tree bottom-up and produces the resulting
set of tuples together with :class:`ExecutionStats` — operator-level counters
(tuples scanned, predicate evaluations, guard checks, join pairs considered) that
the optimizer benchmarks use as a machine-independent cost measure.

Base relations are resolved against a *source*: either a mapping
``{name: FlexibleRelation}`` or any object exposing ``relation(name)`` (such as
:class:`repro.engine.Database`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.algebra.analytic import (
    AggregateAccumulator,
    group_key,
    group_values,
    top_k_rows,
)
from repro.algebra.expressions import (
    Aggregate,
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.errors import AlgebraError
from repro.model.attributes import AttributeSet, attrset
from repro.model.relation import FlexibleRelation
from repro.model.tuples import FlexTuple


class ExecutionStats:
    """Counters accumulated while evaluating an expression tree.

    The counters are shared between the naive evaluator and the physical engine
    (:mod:`repro.exec`), with the following semantics:

    ``tuples_scanned``
        Tuples read from a base relation plus tuples passed through a per-tuple
        reshaping operator (projection, extension, rename, union, difference).
        The analytic operators follow the same convention: aggregation, sort,
        limit and subquery extension each add their *input* cardinality (a
        fused physical top-k therefore counts its input once, while the
        logical ``Limit(Sort(E))`` pair counts it once per node).
    ``predicate_evaluations``
        Selection predicates evaluated against a tuple (one per tuple per σ).
    ``guard_checks``
        Type-guard membership tests (``attrs ⊆ attr(t)``), including the
        guard-aware partitioning checks of hash-based joins.
    ``join_pairs_considered``
        Pairs of input tuples whose combination the join operator actually
        *examined*.  Nested-loop operators (cartesian product, the naive
        ``NaturalJoin``) examine every pair, contributing ``|L| × |R|`` per
        stage — a chain of naive natural joins therefore sums ``|L| × |R|``
        over its stages.  Hash-based operators (``MultiwayJoin``, the physical
        ``HashJoin``) only examine pairs that share a hash bucket, so they
        contribute the sum of per-probe bucket sizes.  Probes that miss every
        bucket (or tuples partitioned out by a guard) contribute zero — the
        counter measures pairwise work performed, not probes attempted.
    ``operators_executed`` / ``operator_counts``
        One increment per operator node (logical or physical) that ran.

    The vectorized operators of :mod:`repro.exec.vectorized` maintain the same
    counters in bulk (``+= len(batch)`` instead of ``+= 1`` per tuple), so row
    and batch execution of one plan shape report identical totals — only the
    bookkeeping is amortized.  Plan *reuse* is not counted here: the physical
    executor's plan-cache hits and misses live on
    :attr:`repro.exec.PhysicalExecutor.cache_hits` /
    :attr:`~repro.exec.PhysicalExecutor.cache_misses` (rendered by
    ``Database.explain``), because a cache hit saves planning work, not
    execution work.
    """

    def __init__(self):
        self.tuples_scanned = 0
        self.tuples_produced = 0
        self.predicate_evaluations = 0
        self.guard_checks = 0
        self.join_pairs_considered = 0
        self.operators_executed = 0
        self.operator_counts: Dict[str, int] = {}

    def record_operator(self, name: str) -> None:
        self.operators_executed += 1
        self.operator_counts[name] = self.operator_counts.get(name, 0) + 1

    @property
    def total_work(self) -> int:
        """A single scalar summarizing the work performed (used as the cost measure)."""
        return (
            self.tuples_scanned
            + self.predicate_evaluations
            + self.guard_checks
            + self.join_pairs_considered
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "tuples_scanned": self.tuples_scanned,
            "tuples_produced": self.tuples_produced,
            "predicate_evaluations": self.predicate_evaluations,
            "guard_checks": self.guard_checks,
            "join_pairs_considered": self.join_pairs_considered,
            "operators_executed": self.operators_executed,
            "total_work": self.total_work,
        }

    def __repr__(self) -> str:
        return "ExecutionStats({})".format(self.as_dict())


class EvaluationResult:
    """The tuples produced by an expression plus the execution statistics."""

    def __init__(self, tuples: Set[FlexTuple], stats: ExecutionStats):
        self.tuples = set(tuples)
        self.stats = stats

    def __iter__(self):
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, item) -> bool:
        tup = item if isinstance(item, FlexTuple) else FlexTuple(item)
        return tup in self.tuples

    def attribute_combinations(self) -> Set[AttributeSet]:
        return {t.attributes for t in self.tuples}

    def __repr__(self) -> str:
        return "EvaluationResult({} tuples, work={})".format(len(self.tuples), self.stats.total_work)


def _resolve_relation(source, name: str) -> Iterable[FlexTuple]:
    if source is None:
        raise AlgebraError("no relation source given; cannot resolve {!r}".format(name))
    if hasattr(source, "relation"):
        relation = source.relation(name)
    elif isinstance(source, dict):
        try:
            relation = source[name]
        except KeyError:
            raise AlgebraError("unknown relation {!r}".format(name)) from None
    else:
        raise AlgebraError("unsupported relation source {!r}".format(source))
    if isinstance(relation, FlexibleRelation):
        return relation.tuples
    if hasattr(relation, "tuples"):
        tuples = relation.tuples
        return tuples() if callable(tuples) else tuples
    return {t if isinstance(t, FlexTuple) else FlexTuple(t) for t in relation}


class Evaluator:
    """Executes algebra expressions against a source of base relations."""

    def __init__(self, source):
        self.source = source

    def evaluate(self, expression: Expression, stats: Optional[ExecutionStats] = None) -> EvaluationResult:
        """Evaluate ``expression`` and return tuples plus execution statistics."""
        stats = stats if stats is not None else ExecutionStats()
        tuples = self._evaluate(expression, stats)
        stats.tuples_produced = len(tuples)
        return EvaluationResult(tuples, stats)

    # -- dispatch ------------------------------------------------------------------------

    def _evaluate(self, expression: Expression, stats: ExecutionStats) -> Set[FlexTuple]:
        stats.record_operator(expression.operator)
        if isinstance(expression, EmptyRelation):
            return set()
        if isinstance(expression, RelationRef):
            return self._eval_relation(expression, stats)
        if isinstance(expression, Selection):
            return self._eval_selection(expression, stats)
        if isinstance(expression, TypeGuardNode):
            return self._eval_guard(expression, stats)
        if isinstance(expression, Projection):
            return self._eval_projection(expression, stats)
        if isinstance(expression, Product):
            return self._eval_product(expression, stats)
        if isinstance(expression, (OuterUnion, Union)):
            return self._eval_union(expression, stats)
        if isinstance(expression, Difference):
            return self._eval_difference(expression, stats)
        if isinstance(expression, Extension):
            return self._eval_extension(expression, stats)
        if isinstance(expression, Rename):
            return self._eval_rename(expression, stats)
        if isinstance(expression, MultiwayJoin):
            return self._eval_multiway_join(expression, stats)
        if isinstance(expression, NaturalJoin):
            return self._eval_natural_join(expression, stats)
        if isinstance(expression, Aggregate):
            return self._eval_aggregate(expression, stats)
        if isinstance(expression, Sort):
            return self._eval_sort(expression, stats)
        if isinstance(expression, Limit):
            return self._eval_limit(expression, stats)
        if isinstance(expression, SubqueryExtension):
            return self._eval_subquery_extension(expression, stats)
        raise AlgebraError("cannot evaluate expression node {!r}".format(expression))

    # -- operator implementations ------------------------------------------------------------

    def _eval_relation(self, node: RelationRef, stats: ExecutionStats) -> Set[FlexTuple]:
        tuples = set(_resolve_relation(self.source, node.name))
        stats.tuples_scanned += len(tuples)
        return tuples

    def _eval_selection(self, node: Selection, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        result = set()
        for tup in child:
            stats.predicate_evaluations += 1
            if node.predicate.evaluate(tup):
                result.add(tup)
        return result

    def _eval_guard(self, node: TypeGuardNode, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        result = set()
        for tup in child:
            stats.guard_checks += 1
            if tup.is_defined_on(node.attributes):
                result.add(tup)
        return result

    def _eval_projection(self, node: Projection, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        result = set()
        for tup in child:
            stats.tuples_scanned += 1
            projected = tup.project_existing(node.attributes)
            if len(projected):
                result.add(projected)
        return result

    def _eval_product(self, node: Product, stats: ExecutionStats) -> Set[FlexTuple]:
        left = self._evaluate(node.left, stats)
        right = self._evaluate(node.right, stats)
        result = set()
        for left_tuple in left:
            for right_tuple in right:
                stats.join_pairs_considered += 1
                result.add(left_tuple.merge(right_tuple))
        return result

    def _eval_union(self, node: Union, stats: ExecutionStats) -> Set[FlexTuple]:
        left = self._evaluate(node.left, stats)
        right = self._evaluate(node.right, stats)
        stats.tuples_scanned += len(left) + len(right)
        return left | right

    def _eval_difference(self, node: Difference, stats: ExecutionStats) -> Set[FlexTuple]:
        left = self._evaluate(node.left, stats)
        right = self._evaluate(node.right, stats)
        stats.tuples_scanned += len(left)
        return left - right

    def _eval_extension(self, node: Extension, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        result = set()
        for tup in child:
            stats.tuples_scanned += 1
            result.add(tup.extend(**{node.attribute: node.value}))
        return result

    def _eval_rename(self, node: Rename, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        result = set()
        for tup in child:
            stats.tuples_scanned += 1
            renamed = {node.mapping.get(name, name): value for name, value in tup.items()}
            result.add(FlexTuple(renamed))
        return result

    def _eval_natural_join(self, node: NaturalJoin, stats: ExecutionStats) -> Set[FlexTuple]:
        left = self._evaluate(node.left, stats)
        right = self._evaluate(node.right, stats)
        if node.on is not None:
            shared = node.on
        else:
            left_attrs = AttributeSet()
            for tup in left:
                left_attrs = left_attrs | tup.attributes
            right_attrs = AttributeSet()
            for tup in right:
                right_attrs = right_attrs | tup.attributes
            shared = left_attrs & right_attrs
        result = set()
        for left_tuple in left:
            for right_tuple in right:
                stats.join_pairs_considered += 1
                if not (left_tuple.is_defined_on(shared) and right_tuple.is_defined_on(shared)):
                    continue
                if all(left_tuple[a] == right_tuple[a] for a in shared):
                    result.add(left_tuple.merge(right_tuple))
        return result

    def _eval_aggregate(self, node: Aggregate, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        stats.tuples_scanned += len(child)
        accumulator = AggregateAccumulator(node.specs)
        groups: Dict[object, List] = {}
        names = node.group_by
        for tup in child:
            values = tup._values
            key = group_key(values, names)
            states = groups.get(key)
            if states is None:
                states = groups[key] = accumulator.new_state()
            accumulator.update(states, values)
        if not groups and not names:
            # Global aggregation over empty input: one row of empty aggregates.
            out = accumulator.empty_result()
            return {FlexTuple(out)} if out else set()
        result = set()
        for key, states in groups.items():
            out = group_values(key, names)
            out.update(accumulator.finalize(states))
            if out:
                result.add(FlexTuple(out))
        return result

    def _eval_sort(self, node: Sort, stats: ExecutionStats) -> Set[FlexTuple]:
        # Results are sets, so an order annotation is the identity here; its keys
        # take effect under a Limit (see _eval_limit).
        child = self._evaluate(node.child, stats)
        stats.tuples_scanned += len(child)
        return child

    def _eval_limit(self, node: Limit, stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        stats.tuples_scanned += len(child)
        keys = node.child.keys if isinstance(node.child, Sort) else ()
        return set(top_k_rows(child, node.count, keys,
                              key_of=lambda tup: tup._values))

    def _eval_subquery_extension(self, node: SubqueryExtension,
                                 stats: ExecutionStats) -> Set[FlexTuple]:
        child = self._evaluate(node.child, stats)
        scalar = self._evaluate(node.subquery, stats)
        stats.tuples_scanned += len(child)
        if not scalar:
            return set(child)  # empty subquery: the attribute stays absent
        if len(scalar) > 1:
            raise AlgebraError(
                "scalar subquery for {!r} produced {} tuples".format(
                    node.attribute, len(scalar)))
        (row,) = scalar
        if len(row) != 1:
            raise AlgebraError(
                "scalar subquery for {!r} produced a tuple with {} attributes".format(
                    node.attribute, len(row)))
        (value,) = row._values.values()
        return {tup.extend(**{node.attribute: value}) for tup in child}

    def _eval_multiway_join(self, node: MultiwayJoin, stats: ExecutionStats) -> Set[FlexTuple]:
        current = self._evaluate(node.inputs[0], stats)
        for child in node.inputs[1:]:
            fragment = self._evaluate(child, stats)
            index: Dict[tuple, List[FlexTuple]] = {}
            for tup in fragment:
                if tup.is_defined_on(node.on):
                    index.setdefault(tuple(tup[a] for a in node.on), []).append(tup)
            merged = set()
            for tup in current:
                if not tup.is_defined_on(node.on):
                    merged.add(tup)
                    continue
                partners = index.get(tuple(tup[a] for a in node.on), [])
                # Count the pairs actually examined (the bucket size), matching the
                # hash-join semantics documented on ExecutionStats; probes that miss
                # contribute nothing, unlike a nested-loop chain which would count
                # |current| × |fragment| here.
                stats.join_pairs_considered += len(partners)
                if not partners:
                    merged.add(tup)
                    continue
                for partner in partners:
                    merged.add(tup.merge(partner))
            current = merged
        return current
