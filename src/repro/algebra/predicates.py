"""Selection predicates.

Predicates evaluate against single tuples.  Because tuples are heterogeneous, value
access is guarded: a comparison over an attribute the tuple does not possess is
*false* (it does not raise) — exactly the behaviour the paper requires when it says
"the access of values must be preceded by a type guard when structural variants are
allowed" (Section 4.2).  A comparison therefore acts as an implicit type guard on
the attributes it mentions.

For the optimizer the interesting question is what a predicate *implies*:

* :meth:`Predicate.implied_equalities` extracts the attribute→value bindings that
  every satisfying tuple must exhibit (conjunctions of equality comparisons — the
  shape used in Example 4's ``salary > 5000 AND jobtype = 'secretary'``);
* :meth:`Predicate.required_attributes` lists the attributes whose presence is
  forced by the predicate.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import PredicateError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple

_OPERATORS: Dict[str, Callable] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, collection: value in collection,
}


class Predicate:
    """Base class of all selection predicates."""

    def evaluate(self, tup: FlexTuple) -> bool:
        """``True`` when the tuple satisfies the predicate."""
        raise NotImplementedError

    def __call__(self, tup: FlexTuple) -> bool:
        return self.evaluate(tup)

    @property
    def attributes(self) -> AttributeSet:
        """Every attribute mentioned by the predicate."""
        raise NotImplementedError

    def required_attributes(self) -> AttributeSet:
        """Attributes whose presence is necessary for the predicate to hold.

        Conservative: predicates under negation or disjunction contribute nothing.
        """
        return AttributeSet()

    def implied_equalities(self) -> Dict[str, object]:
        """Attribute→value bindings every satisfying tuple must exhibit."""
        return {}

    # -- combinators ----------------------------------------------------------------

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class TruePredicate(Predicate):
    """The predicate satisfied by every tuple."""

    def evaluate(self, tup: FlexTuple) -> bool:
        return True

    @property
    def attributes(self) -> AttributeSet:
        return AttributeSet()

    def __repr__(self) -> str:
        return "TRUE"


class FalsePredicate(Predicate):
    """The predicate satisfied by no tuple (used to mark contradictory selections)."""

    def evaluate(self, tup: FlexTuple) -> bool:
        return False

    @property
    def attributes(self) -> AttributeSet:
        return AttributeSet()

    def __repr__(self) -> str:
        return "FALSE"


class Comparison(Predicate):
    """``attribute <op> constant`` with guarded attribute access."""

    def __init__(self, attribute, op: str, value):
        if op not in _OPERATORS:
            raise PredicateError("unknown comparison operator {!r}".format(op))
        self.attribute = attrset(attribute)
        if len(self.attribute) != 1:
            raise PredicateError("a comparison refers to exactly one attribute")
        self.op = op
        self.value = value

    @property
    def _name(self) -> str:
        return next(iter(self.attribute)).name

    def evaluate(self, tup: FlexTuple) -> bool:
        if self._name not in tup:
            return False
        try:
            return bool(_OPERATORS[self.op](tup[self._name], self.value))
        except TypeError:
            return False

    @property
    def attributes(self) -> AttributeSet:
        return self.attribute

    def required_attributes(self) -> AttributeSet:
        return self.attribute

    def implied_equalities(self) -> Dict[str, object]:
        if self.op in ("=", "=="):
            return {self._name: self.value}
        return {}

    def __repr__(self) -> str:
        return "{} {} {!r}".format(self._name, self.op, self.value)


class AttributeComparison(Predicate):
    """``attribute <op> attribute`` (e.g. join conditions inside a selection)."""

    def __init__(self, left, op: str, right):
        if op not in _OPERATORS:
            raise PredicateError("unknown comparison operator {!r}".format(op))
        self.left = attrset(left)
        self.right = attrset(right)
        if len(self.left) != 1 or len(self.right) != 1:
            raise PredicateError("an attribute comparison refers to exactly two attributes")
        self.op = op

    def evaluate(self, tup: FlexTuple) -> bool:
        left = next(iter(self.left)).name
        right = next(iter(self.right)).name
        if left not in tup or right not in tup:
            return False
        try:
            return bool(_OPERATORS[self.op](tup[left], tup[right]))
        except TypeError:
            return False

    @property
    def attributes(self) -> AttributeSet:
        return self.left | self.right

    def required_attributes(self) -> AttributeSet:
        return self.left | self.right

    def __repr__(self) -> str:
        return "{} {} {}".format(
            next(iter(self.left)).name, self.op, next(iter(self.right)).name
        )


class PresencePredicate(Predicate):
    """An explicit type guard inside a predicate: ``attributes ⊆ attr(t)``."""

    def __init__(self, attributes):
        self._attributes = attrset(attributes)

    def evaluate(self, tup: FlexTuple) -> bool:
        return tup.is_defined_on(self._attributes)

    @property
    def attributes(self) -> AttributeSet:
        return self._attributes

    def required_attributes(self) -> AttributeSet:
        return self._attributes

    def __repr__(self) -> str:
        return "HAS {}".format(self._attributes)


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *operands: Predicate):
        if not operands:
            raise PredicateError("AND needs at least one operand")
        flattened = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[Predicate, ...] = tuple(flattened)

    def evaluate(self, tup: FlexTuple) -> bool:
        return all(operand.evaluate(tup) for operand in self.operands)

    @property
    def attributes(self) -> AttributeSet:
        result = AttributeSet()
        for operand in self.operands:
            result = result | operand.attributes
        return result

    def required_attributes(self) -> AttributeSet:
        result = AttributeSet()
        for operand in self.operands:
            result = result | operand.required_attributes()
        return result

    def implied_equalities(self) -> Dict[str, object]:
        result: Dict[str, object] = {}
        for operand in self.operands:
            result.update(operand.implied_equalities())
        return result

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(operand) for operand in self.operands) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *operands: Predicate):
        if not operands:
            raise PredicateError("OR needs at least one operand")
        flattened = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[Predicate, ...] = tuple(flattened)

    def evaluate(self, tup: FlexTuple) -> bool:
        return any(operand.evaluate(tup) for operand in self.operands)

    @property
    def attributes(self) -> AttributeSet:
        result = AttributeSet()
        for operand in self.operands:
            result = result | operand.attributes
        return result

    def implied_equalities(self) -> Dict[str, object]:
        # An equality is implied by a disjunction only when every branch implies it.
        branches = [operand.implied_equalities() for operand in self.operands]
        if not branches:
            return {}
        common = dict(branches[0])
        for branch in branches[1:]:
            for key in list(common):
                if key not in branch or branch[key] != common[key]:
                    del common[key]
        return common

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(operand) for operand in self.operands) + ")"


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, operand: Predicate):
        self.operand = operand

    def evaluate(self, tup: FlexTuple) -> bool:
        return not self.operand.evaluate(tup)

    @property
    def attributes(self) -> AttributeSet:
        return self.operand.attributes

    def __repr__(self) -> str:
        return "NOT ({!r})".format(self.operand)


def attribute_equals(attribute, value) -> Comparison:
    """Shorthand for the ubiquitous equality comparison."""
    return Comparison(attribute, "=", value)
