"""Query algebra for flexible relations.

Section 4.3 of the paper discusses how attribute dependencies behave under the
"well-known algebraic operators, providing the intuitive meaning in our model".
This package supplies those operators for flexible relations:

* a predicate language for selections (:mod:`repro.algebra.predicates`),
* an expression AST with one node per operator — selection, projection, cartesian
  product, union, outer union, difference, extension (tagging), renaming, natural
  and multiway join, explicit type guards, and the analytic surface: grouping
  with variant-aware aggregates, order annotations, top-k limits and scalar
  subquery extensions (:mod:`repro.algebra.expressions`),
* the shared analytic semantics — NULL-vs-absent aggregate matrix, ⊥-group
  routing and the cross-engine total order (:mod:`repro.algebra.analytic`),
* an evaluator that executes expression trees against a catalog of flexible
  relations and records execution statistics (:mod:`repro.algebra.evaluator`).

Every expression node can also report the attribute dependencies that are known to
hold in its result (via the propagation rules of Theorem 4.3), which is the
information the optimizer consumes.
"""

from repro.algebra.predicates import (
    And,
    AttributeComparison,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    PresencePredicate,
    TruePredicate,
    attribute_equals,
)
from repro.algebra.analytic import AggregateSpec, SortKey, aggregate_spec, sort_key
from repro.algebra.expressions import (
    Aggregate,
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.algebra.evaluator import EvaluationResult, Evaluator, ExecutionStats

__all__ = [
    "Predicate",
    "Comparison",
    "AttributeComparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "PresencePredicate",
    "attribute_equals",
    "Expression",
    "RelationRef",
    "EmptyRelation",
    "Selection",
    "Projection",
    "Product",
    "Union",
    "OuterUnion",
    "Difference",
    "Extension",
    "Rename",
    "NaturalJoin",
    "MultiwayJoin",
    "TypeGuardNode",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "SortKey",
    "Limit",
    "SubqueryExtension",
    "aggregate_spec",
    "sort_key",
    "Evaluator",
    "EvaluationResult",
    "ExecutionStats",
]
