"""Algebra expression trees.

Each operator of the flexible-relation algebra is a node class.  Nodes are
immutable; rewrites build new trees via :meth:`Expression.with_children`.  Besides
structure, every node knows

* which attribute dependencies hold in its result
  (:meth:`Expression.known_dependencies`, following Theorem 4.3 and keeping explicit
  ADs in explicit form whenever the propagation rule allows it), and
* which attributes are guaranteed to be present in every result tuple
  (:meth:`Expression.guaranteed_attributes`, fed by selection predicates and type
  guards) — the two ingredients of the optimizer's redundancy reasoning.

The dependency information is resolved against a *catalog*: any object with a
``dependencies(name)`` method (such as :class:`repro.engine.Database`) or a plain
mapping ``{name: iterable of dependencies}``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algebra.analytic import (
    AggregateSpec,
    SortKey,
    aggregate_spec,
    sort_key,
)
from repro.algebra.predicates import Predicate, TruePredicate
from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
)
from repro.core.propagation import (
    propagate_product,
    propagate_projection,
    propagate_selection,
    propagate_tagged_union,
    propagate_union,
)
from repro.errors import AlgebraError
from repro.model.attributes import AttributeSet, attrset


def _catalog_dependencies(catalog, name: str) -> List[Dependency]:
    """Fetch the declared dependencies of a base relation from a catalog-like object."""
    if catalog is None:
        return []
    if hasattr(catalog, "dependencies"):
        return list(catalog.dependencies(name))
    if isinstance(catalog, dict):
        entry = catalog.get(name)
        if entry is None:
            return []
        if hasattr(entry, "dependencies"):
            return list(entry.dependencies)
        if isinstance(entry, (list, tuple, set, frozenset)):
            return list(entry)
        return []
    return []


class Expression:
    """Base class of every algebra expression node."""

    #: operator name used in plans and reprs
    operator: str = "expression"

    @property
    def children(self) -> Tuple["Expression", ...]:
        """The child expressions (empty for leaves)."""
        return ()

    def with_children(self, children: Sequence["Expression"]) -> "Expression":
        """Rebuild this node with new children (same arity required)."""
        if children:
            raise AlgebraError("{} has no children to replace".format(self.operator))
        return self

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        """Dependencies guaranteed to hold in this expression's result (Theorem 4.3)."""
        raise NotImplementedError

    def known_ads(self, catalog=None) -> Set[AttributeDependency]:
        """The abbreviated-AD view of :meth:`known_dependencies`."""
        result: Set[AttributeDependency] = set()
        for dependency in self.known_dependencies(catalog):
            if isinstance(dependency, ExplicitAttributeDependency):
                result.add(dependency.to_ad())
            elif isinstance(dependency, FunctionalDependency):
                result.add(dependency.to_ad())
            else:
                result.add(dependency)
        return result

    def guaranteed_attributes(self) -> AttributeSet:
        """Attributes every tuple of the result is guaranteed to possess.

        Contributed by selection predicates (guarded value access forces presence)
        and by explicit type-guard nodes; destroyed by projection when the attribute
        is projected away.
        """
        return AttributeSet()

    def established_equalities(self) -> Dict[str, object]:
        """Attribute→value bindings every result tuple is known to satisfy."""
        return {}

    # -- fluent construction helpers ----------------------------------------------------

    def select(self, predicate: Predicate) -> "Selection":
        return Selection(self, predicate)

    def project(self, attributes) -> "Projection":
        return Projection(self, attributes)

    def guard(self, attributes) -> "TypeGuardNode":
        return TypeGuardNode(self, attributes)

    def product(self, other: "Expression") -> "Product":
        return Product(self, other)

    def union(self, other: "Expression") -> "Union":
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)

    def extend(self, attribute, value) -> "Extension":
        return Extension(self, attribute, value)

    def extend_scalar(self, attribute, subquery: "Expression") -> "SubqueryExtension":
        return SubqueryExtension(self, attribute, subquery)

    def aggregate(self, group_by=(), specs=()) -> "Aggregate":
        return Aggregate(self, group_by, specs)

    def sort(self, *keys) -> "Sort":
        return Sort(self, keys)

    def limit(self, count: int) -> "Limit":
        return Limit(self, count)

    def pretty(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the expression tree."""
        pad = "  " * indent
        header = pad + self._label()
        lines = [header]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return self.operator

    def __repr__(self) -> str:
        return self._label()


class RelationRef(Expression):
    """A leaf referring to a base relation by name."""

    operator = "relation"

    def __init__(self, name: str):
        if not name:
            raise AlgebraError("relation reference needs a non-empty name")
        self.name = name

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        return set(_catalog_dependencies(catalog, self.name))

    def _label(self) -> str:
        return self.name


class EmptyRelation(Expression):
    """A leaf producing no tuples at all.

    The optimizer substitutes it for sub-expressions that are statically known to be
    empty (a guard on an attribute the dependencies exclude, a selection whose
    qualification contradicts every fragment).  Unlike a selection with a false
    predicate, an empty leaf lets the evaluator skip the input entirely.
    """

    operator = "empty"

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Every dependency holds vacuously in the empty instance; reporting the empty
        # set keeps downstream reasoning conservative.
        return set()

    def _label(self) -> str:
        return "∅"


class Selection(Expression):
    """``σ_F(E)`` — keep the tuples satisfying the predicate."""

    operator = "select"

    def __init__(self, child: Expression, predicate: Predicate):
        self.child = child
        self.predicate = predicate if predicate is not None else TruePredicate()

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Selection":
        (child,) = children
        return Selection(child, self.predicate)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Rule (3): selections preserve every dependency, in explicit form too.
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes() | self.predicate.required_attributes()

    def established_equalities(self) -> Dict[str, object]:
        result = dict(self.child.established_equalities())
        result.update(self.predicate.implied_equalities())
        return result

    def _label(self) -> str:
        return "select[{!r}]".format(self.predicate)


class TypeGuardNode(Expression):
    """An explicit type guard: keep tuples defined on the guarded attributes."""

    operator = "guard"

    def __init__(self, child: Expression, attributes):
        self.child = child
        self.attributes = attrset(attributes)

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "TypeGuardNode":
        (child,) = children
        return TypeGuardNode(child, self.attributes)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes() | self.attributes

    def established_equalities(self) -> Dict[str, object]:
        return self.child.established_equalities()

    def _label(self) -> str:
        return "guard[{}]".format(self.attributes)


class Projection(Expression):
    """``π_X(E)`` — restrict every tuple to the attributes of ``X`` it possesses."""

    operator = "project"

    def __init__(self, child: Expression, attributes):
        self.child = child
        self.attributes = attrset(attributes)
        if not self.attributes:
            raise AlgebraError("projection needs at least one attribute")

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Projection":
        (child,) = children
        return Projection(child, self.attributes)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Rule (2): dependencies survive only when their determinant is retained.
        result: Set[Dependency] = set()
        for dependency in self.child.known_dependencies(catalog):
            if not dependency.lhs.issubset(self.attributes):
                continue
            if isinstance(dependency, ExplicitAttributeDependency):
                result.add(dependency.project_rhs(self.attributes))
            elif isinstance(dependency, FunctionalDependency):
                if dependency.rhs.issubset(self.attributes):
                    result.add(dependency)
                else:
                    result.add(FunctionalDependency(dependency.lhs,
                                                    dependency.rhs & self.attributes))
            else:
                result.add(AttributeDependency(dependency.lhs,
                                               dependency.rhs & self.attributes))
        return result

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes() & self.attributes

    def established_equalities(self) -> Dict[str, object]:
        child = self.child.established_equalities()
        return {name: value for name, value in child.items() if name in self.attributes}

    def _label(self) -> str:
        return "project[{}]".format(self.attributes)


class Product(Expression):
    """``E1 × E2`` — cartesian product of relations with disjoint attribute sets."""

    operator = "product"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Product":
        left, right = children
        return Product(left, right)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Rule (1): the product keeps the dependencies of both inputs.
        return set(self.left.known_dependencies(catalog)) | set(self.right.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.left.guaranteed_attributes() | self.right.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        result = dict(self.left.established_equalities())
        result.update(self.right.established_equalities())
        return result


class Union(Expression):
    """``E1 ∪ E2`` — set union of the two instances (no padding needed in this model)."""

    operator = "union"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Union":
        left, right = children
        return Union(left, right)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Rule (4): nothing survives an untagged union ... unless both inputs are
        # extensions by the same tag attribute with distinct constants, in which case
        # rule (6) applies and the tagged dependencies survive.
        tag = self._tagging_attribute()
        if tag is not None:
            return set(
                propagate_tagged_union(
                    self.left.known_ads(catalog), self.right.known_ads(catalog), tag
                )
            )
        return set(propagate_union(self.left.known_ads(catalog), self.right.known_ads(catalog)))

    def _tagging_attribute(self) -> Optional[str]:
        left, right = self.left, self.right
        if isinstance(left, Extension) and isinstance(right, Extension):
            if left.attribute == right.attribute and left.value != right.value:
                return left.attribute
        return None

    def guaranteed_attributes(self) -> AttributeSet:
        return self.left.guaranteed_attributes() & self.right.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        left = self.left.established_equalities()
        right = self.right.established_equalities()
        return {name: value for name, value in left.items()
                if name in right and right[name] == value}


class OuterUnion(Union):
    """The outer union used to restore horizontal decompositions (Section 3.1.1).

    Operationally identical to :class:`Union` on flexible relations — tuples of
    different shapes coexist without null padding — but kept as its own node so that
    plans document the restoration step.
    """

    operator = "outer-union"


class Difference(Expression):
    """``E1 − E2`` — tuples of the left input not present in the right input."""

    operator = "difference"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Rule (5): the difference keeps the dependencies of its left input.
        return set(self.left.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.left.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        return self.left.established_equalities()


class Extension(Expression):
    """``ε_{A:a}(E)`` — extend every tuple by attribute ``A`` with constant ``a``."""

    operator = "extend"

    def __init__(self, child: Expression, attribute, value):
        self.child = child
        attribute_set = attrset(attribute)
        if len(attribute_set) != 1:
            raise AlgebraError("the extension operator adds exactly one attribute")
        self.attribute = next(iter(attribute_set)).name
        self.value = value

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Extension":
        (child,) = children
        return Extension(child, self.attribute, self.value)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Extension enlarges every tuple: existing dependencies keep holding.
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes() | attrset(self.attribute)

    def established_equalities(self) -> Dict[str, object]:
        result = dict(self.child.established_equalities())
        result[self.attribute] = self.value
        return result

    def _label(self) -> str:
        return "extend[{}:{!r}]".format(self.attribute, self.value)


class Rename(Expression):
    """``ρ(E)`` — rename attributes according to a mapping."""

    operator = "rename"

    def __init__(self, child: Expression, mapping: Dict[str, str]):
        if not mapping:
            raise AlgebraError("rename needs a non-empty mapping")
        self.child = child
        self.mapping = dict(mapping)

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def _rename_set(self, attributes: AttributeSet) -> AttributeSet:
        return attrset(self.mapping.get(a.name, a.name) for a in attributes)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        result: Set[Dependency] = set()
        for dependency in self.child.known_ads(catalog):
            result.add(AttributeDependency(self._rename_set(dependency.lhs),
                                           self._rename_set(dependency.rhs)))
        return result

    def guaranteed_attributes(self) -> AttributeSet:
        return self._rename_set(self.child.guaranteed_attributes())

    def established_equalities(self) -> Dict[str, object]:
        child = self.child.established_equalities()
        return {self.mapping.get(name, name): value for name, value in child.items()}

    def _label(self) -> str:
        return "rename[{}]".format(self.mapping)


class NaturalJoin(Expression):
    """``E1 ⋈ E2`` — join on the attributes shared by the joined tuples."""

    operator = "join"

    def __init__(self, left: Expression, right: Expression, on=None):
        self.left = left
        self.right = right
        self.on = attrset(on) if on is not None else None

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "NaturalJoin":
        left, right = children
        return NaturalJoin(left, right, on=self.on)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Joins enlarge their inputs; like the product they keep both dependency sets.
        return set(self.left.known_dependencies(catalog)) | set(self.right.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.left.guaranteed_attributes() | self.right.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        result = dict(self.left.established_equalities())
        result.update(self.right.established_equalities())
        return result

    def _label(self) -> str:
        return "join[on={}]".format(self.on if self.on is not None else "shared")


class MultiwayJoin(Expression):
    """The multiway join restoring a vertical decomposition (Section 3.1.1).

    The first input is the master fragment; every further input is merged into the
    master's tuples on the ``on`` attributes.  Master tuples without a partner in a
    dependent fragment stay as they are (variants simply contribute nothing), which
    is exactly why the restoration needs a multiway join rather than a chain of
    natural joins.
    """

    operator = "multiway-join"

    def __init__(self, inputs: Sequence[Expression], on):
        inputs = tuple(inputs)
        if len(inputs) < 2:
            raise AlgebraError("a multiway join needs at least two inputs")
        self.inputs = inputs
        self.on = attrset(on)
        if not self.on:
            raise AlgebraError("a multiway join needs join attributes")

    @property
    def children(self) -> Tuple[Expression, ...]:
        return self.inputs

    def with_children(self, children: Sequence[Expression]) -> "MultiwayJoin":
        return MultiwayJoin(tuple(children), self.on)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        result: Set[Dependency] = set()
        for child in self.inputs:
            result |= set(child.known_dependencies(catalog))
        return result

    def guaranteed_attributes(self) -> AttributeSet:
        return self.inputs[0].guaranteed_attributes() | self.on

    def established_equalities(self) -> Dict[str, object]:
        return self.inputs[0].established_equalities()

    def _label(self) -> str:
        return "multiway-join[on={}]".format(self.on)


class Aggregate(Expression):
    """``γ_{G; specs}(E)`` — group by ``G`` and aggregate, variant-aware.

    Grouping routes tuples *absent* on a group-by attribute into a distinct
    ⊥ group for that attribute (the output tuple simply omits it), so the
    operator never invents NULLs the way a padded model would.  The aggregate
    matrix (NULL vs absent per function) is pinned in
    :mod:`repro.algebra.analytic`.
    """

    operator = "aggregate"

    def __init__(self, child: Expression, group_by=(), specs=()):
        self.child = child
        if isinstance(group_by, str):
            group_by = (group_by,)
        names: List[str] = []
        for item in group_by:
            name = item.name if hasattr(item, "name") else str(item)
            if name in names:
                raise AlgebraError(
                    "duplicate group-by attribute {!r}".format(name))
            names.append(name)
        self.group_by: Tuple[str, ...] = tuple(names)
        self.specs: Tuple[AggregateSpec, ...] = tuple(
            aggregate_spec(spec) for spec in specs)
        if not self.group_by and not self.specs:
            raise AlgebraError("aggregation needs group-by attributes or aggregates")
        outputs = set(self.group_by)
        for spec in self.specs:
            if spec.output in outputs:
                raise AlgebraError(
                    "duplicate aggregate output attribute {!r}".format(spec.output))
            outputs.add(spec.output)

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.specs)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Grouping rebuilds tuples from scratch; no input dependency is known to
        # survive into (group key, aggregate) shapes — stay conservative.
        return set()

    def guaranteed_attributes(self) -> AttributeSet:
        # Only count outputs are guaranteed: any other aggregate (and any group
        # key) can come out absent for the ⊥/never-present cases.
        return attrset(spec.output for spec in self.specs if spec.func == "count")

    def _label(self) -> str:
        parts = []
        if self.group_by:
            parts.append("group=[{}]".format(", ".join(self.group_by)))
        parts.extend(repr(spec) for spec in self.specs)
        return "aggregate[{}]".format(", ".join(parts))


class Sort(Expression):
    """``τ_keys(E)`` — order annotation over a set-valued expression.

    Flexible relations are sets, so a sort on its own is the identity; its
    keys become meaningful under a :class:`Limit` (top-k) and pin the
    NULL/absent-last ordering documented in :mod:`repro.algebra.analytic`.
    """

    operator = "sort"

    def __init__(self, child: Expression, keys):
        self.child = child
        if isinstance(keys, (str, SortKey)):
            keys = (keys,)
        self.keys: Tuple[SortKey, ...] = tuple(sort_key(key) for key in keys)
        if not self.keys:
            raise AlgebraError("sort needs at least one key")

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        return self.child.established_equalities()

    def _label(self) -> str:
        return "sort[{}]".format(", ".join(repr(key) for key in self.keys))


class Limit(Expression):
    """``λ_k(E)`` — the ``k`` smallest tuples of ``E``.

    Under a :class:`Sort` child the sort's keys define "smallest"; otherwise
    the canonical whole-tuple order does, which keeps the result deterministic
    across engines.  The result is a subset of the input, so dependencies,
    guarantees and equalities all pass through.
    """

    operator = "limit"

    def __init__(self, child: Expression, count: int):
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise AlgebraError("limit needs a non-negative integer count")
        self.child = child
        self.count = count

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        return self.child.established_equalities()

    def _label(self) -> str:
        return "limit[{}]".format(self.count)


class SubqueryExtension(Expression):
    """``ε_{A:(Q)}(E)`` — extend every tuple by the scalar result of a subquery.

    ``Q`` must produce at most one tuple with exactly one attribute; its value
    (whatever the attribute is called) becomes ``A``.  An *empty* subquery
    result leaves the input untouched — ``A`` stays absent, the
    flexible-relation reading of a scalar NULL — which is why ``A`` is never a
    guaranteed attribute.  More than one tuple (or a wider tuple) is an
    :class:`~repro.errors.AlgebraError`.
    """

    operator = "subquery-extend"

    def __init__(self, child: Expression, attribute, subquery: Expression):
        self.child = child
        attribute_set = attrset(attribute)
        if len(attribute_set) != 1:
            raise AlgebraError("the subquery extension adds exactly one attribute")
        self.attribute = next(iter(attribute_set)).name
        self.subquery = subquery

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child, self.subquery)

    def with_children(self, children: Sequence[Expression]) -> "SubqueryExtension":
        child, subquery = children
        return SubqueryExtension(child, self.attribute, subquery)

    def known_dependencies(self, catalog=None) -> Set[Dependency]:
        # Like Extension: tuples only grow (uniformly), so the child's hold.
        return set(self.child.known_dependencies(catalog))

    def guaranteed_attributes(self) -> AttributeSet:
        return self.child.guaranteed_attributes()

    def established_equalities(self) -> Dict[str, object]:
        return self.child.established_equalities()

    def _label(self) -> str:
        return "subquery-extend[{}]".format(self.attribute)
