"""Shared analytic semantics: ordering keys, sort specs and aggregate accumulators.

Flexible relations force every analytic operator to distinguish two kinds of
"no value": an attribute can be *present with the explicit NULL* (``None``) or
*structurally absent* (the tuple's variant simply does not carry it).  All three
engines — the naive set evaluator, the row operators and the batch operators —
must agree bit-for-bit on how aggregation, ordering and top-k treat the two, so
the single normative implementation lives here and everything else delegates.

The pinned behaviour (mirrored in ``docs/ARCHITECTURE.md`` and exhaustively
tested by ``tests/test_aggregates.py``):

* **Grouping** — each group-by attribute contributes the tuple's value
  (``None`` included) or the ``MISSING`` sentinel to the group key, so absent
  routes to a distinct ⊥ group per attribute subset.  Output tuples omit
  ⊥-keyed attributes; a fully-empty output dict (all-⊥ key, no surviving
  aggregate outputs) yields no tuple at all.
* **Aggregates** — ``count()`` counts rows; ``count(a)`` counts rows where
  ``a`` is present *and* non-NULL; ``sum``/``min``/``max``/``avg`` skip both
  NULL and absent.  A group where ``a`` appeared but only as NULL produces
  NULL; a group where ``a`` never appeared produces an *absent* output
  attribute.  ``sum``/``avg`` over a non-numeric present value raise
  :class:`~repro.errors.AlgebraError`; sums accumulate exact integer totals
  plus :func:`math.fsum` over the float part so the result is independent of
  accumulation order (the three engines see rows in different orders).
* **Ordering** — per sort key a row ranks value < NULL < absent (NULL and
  absent sort *last* regardless of direction); values compare through
  :func:`value_order_key`, a total order across mixed types.  Every composite
  key ends with the canonical whole-tuple key as a tie-break, which makes the
  order total over distinct tuples — top-k is therefore deterministic across
  engines even though sets iterate in different orders.
"""

from __future__ import annotations

import heapq
from math import fsum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AlgebraError
from repro.model.batches import MISSING

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateSpec",
    "SortKey",
    "AggregateAccumulator",
    "aggregate_spec",
    "sort_key",
    "value_order_key",
    "canonical_order_key",
    "row_order_key",
    "top_k_rows",
    "group_key",
    "group_values",
]

#: aggregate functions the engine understands
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


class AggregateSpec:
    """One aggregate column: ``func(attribute) AS output``.

    ``attribute`` is ``None`` for ``count()`` (count rows); every other
    function requires an input attribute.  ``output`` defaults to ``count``
    for bare counts and ``{func}_{attribute}`` otherwise.
    """

    __slots__ = ("func", "attribute", "output")

    def __init__(self, func: str, attribute: Optional[str] = None,
                 output: Optional[str] = None):
        if func not in AGGREGATE_FUNCTIONS:
            raise AlgebraError(
                "unknown aggregate function {!r} (expected one of {})".format(
                    func, ", ".join(AGGREGATE_FUNCTIONS)))
        if func != "count" and attribute is None:
            raise AlgebraError(
                "aggregate {!r} requires an input attribute".format(func))
        if output is None:
            output = func if attribute is None else "{}_{}".format(func, attribute)
        self.func = func
        self.attribute = attribute
        self.output = output

    def key(self) -> Tuple[str, Optional[str], str]:
        """Structural identity for plan-cache / feedback fingerprints."""
        return (self.func, self.attribute, self.output)

    def __eq__(self, other) -> bool:
        return isinstance(other, AggregateSpec) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return "{}({})->{}".format(self.func, self.attribute or "*", self.output)


class SortKey:
    """One ``ORDER BY`` component: an attribute and a direction."""

    __slots__ = ("attribute", "descending")

    def __init__(self, attribute: str, descending: bool = False):
        self.attribute = attribute
        self.descending = bool(descending)

    def key(self) -> Tuple[str, bool]:
        return (self.attribute, self.descending)

    def __eq__(self, other) -> bool:
        return isinstance(other, SortKey) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return "{}{}".format(self.attribute, " desc" if self.descending else "")


def aggregate_spec(spec) -> AggregateSpec:
    """Coerce ``AggregateSpec`` | ``"count"`` | ``(func, attr[, output])``."""
    if isinstance(spec, AggregateSpec):
        return spec
    if isinstance(spec, str):
        return AggregateSpec(spec)
    return AggregateSpec(*spec)


def sort_key(key) -> SortKey:
    """Coerce ``SortKey`` | ``"attr"`` | ``"-attr"`` (descending) | ``(attr, desc)``."""
    if isinstance(key, SortKey):
        return key
    if isinstance(key, str):
        if key.startswith("-"):
            return SortKey(key[1:], descending=True)
        return SortKey(key)
    return SortKey(*key)


# -- ordering ------------------------------------------------------------------------


class _Reversed:
    """Comparison-inverting wrapper for descending sort components."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other) -> bool:
        return other.key < self.key

    def __gt__(self, other) -> bool:
        return other.key > self.key

    def __eq__(self, other) -> bool:
        return self.key == other.key


def value_order_key(value):
    """A total-order key over mixed-type attribute values.

    NULL sorts before everything, then numbers (bools as ints), then strings,
    then tuples (recursively), then everything else by type name and repr.
    Cross-type comparisons never raise, which ``min``/``max`` and multi-engine
    tie-breaking rely on.
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, tuple):
        return (3, tuple(value_order_key(item) for item in value))
    return (9, type(value).__name__, repr(value))


def canonical_order_key(values: Dict[str, object]):
    """The canonical whole-tuple key: attribute-sorted ``(name, value key)`` pairs.

    Injective over distinct tuples, so any composite order ending in it is
    total — the property that makes ``LIMIT`` deterministic across engines.
    """
    return tuple((name, value_order_key(values[name])) for name in sorted(values))


def row_order_key(values: Dict[str, object], keys: Sequence[SortKey]):
    """The composite sort key of one row (a value dict) under ``keys``.

    Per key the row ranks ``(0, value)`` / ``(1,)``-NULL / ``(2,)``-absent;
    NULL and absent sort last regardless of direction — only the value
    component is direction-inverted.  The canonical key is the final
    tie-break.
    """
    parts = []
    for key in keys:
        value = values.get(key.attribute, MISSING)
        if value is MISSING:
            parts.append((2, 0))
        elif value is None:
            parts.append((1, 0))
        else:
            component = value_order_key(value)
            if key.descending:
                component = _Reversed(component)
            parts.append((0, component))
    parts.append(canonical_order_key(values))
    return tuple(parts)


def top_k_rows(rows: Iterable, count: int, keys: Sequence[SortKey],
               key_of=lambda row: row):
    """The ``count`` smallest rows under ``keys`` via a bounded heap.

    ``key_of`` maps a stream element to its value dict (identity for dicts,
    ``tup._values`` for tuples, a pair-projection for batch streams).  Memory
    is O(count) — ``heapq.nsmallest`` never materializes the input.

    ``count == 0`` still drains the stream: limit-0 is not a license to skip
    evaluating the input, so errors raised while producing it surface exactly
    as they do in the naive evaluator and in the sort-with-cutoff form.
    """
    if count == 0:
        for _ in rows:
            pass
        return []
    return heapq.nsmallest(
        count, rows, key=lambda row: row_order_key(key_of(row), keys))


# -- grouping ------------------------------------------------------------------------


def group_key(values: Dict[str, object], names: Sequence[str]):
    """The group key of one row: per attribute its value or ``MISSING`` (⊥)."""
    if not names:
        return ()
    if len(names) == 1:
        return values.get(names[0], MISSING)
    return tuple(values.get(name, MISSING) for name in names)


def group_values(key, names: Sequence[str]) -> Dict[str, object]:
    """The output attributes a group key contributes (⊥ components omitted)."""
    if not names:
        return {}
    if len(names) == 1:
        return {} if key is MISSING else {names[0]: key}
    return {name: value for name, value in zip(names, key) if value is not MISSING}


def _check_numeric(func: str, attribute: str, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AlgebraError(
            "{} over non-numeric value {!r} of attribute {!r}".format(
                func, value, attribute))


class AggregateAccumulator:
    """Row-at-a-time accumulator implementing the pinned aggregate matrix.

    One instance serves a whole aggregation; per-group state is an opaque list
    created by :meth:`new_state`, fed value dicts via :meth:`update` and turned
    into the group's output attributes by :meth:`finalize` (``MISSING``-valued
    outputs mean *absent* and are omitted).
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Sequence[AggregateSpec]):
        self.specs = tuple(specs)

    def new_state(self) -> List:
        states: List = []
        for spec in self.specs:
            if spec.func == "count":
                states.append(0)
            elif spec.func in ("sum", "avg"):
                # [int total, float parts, non-NULL count, attribute seen]
                states.append([0, [], 0, False])
            else:  # min / max
                # [best value, best order key, attribute seen]
                states.append([MISSING, None, False])
        return states

    def update(self, states: List, values: Dict[str, object]) -> None:
        for index, spec in enumerate(self.specs):
            func = spec.func
            if func == "count":
                if spec.attribute is None:
                    states[index] += 1
                else:
                    value = values.get(spec.attribute, MISSING)
                    if value is not MISSING and value is not None:
                        states[index] += 1
                continue
            value = values.get(spec.attribute, MISSING)
            if value is MISSING:
                continue
            state = states[index]
            state[-1] = True  # the attribute appeared in this group
            if value is None:
                continue
            if func in ("sum", "avg"):
                _check_numeric(func, spec.attribute, value)
                if isinstance(value, float):
                    state[1].append(value)
                else:
                    state[0] += value
                state[2] += 1
            else:
                order = value_order_key(value)
                best = state[1]
                if best is None or (order < best if func == "min" else order > best):
                    state[0] = value
                    state[1] = order

    def merge_states(self, into: List, other: List) -> None:
        """Fold ``other`` into ``into`` — both per-group states of this
        accumulator, built over disjoint slices of the same group's rows.

        This is what makes partition-and-merge spilling possible: a group's
        rows may be accumulated in separate flushes, and merging the partial
        states must finalize to exactly what one uninterrupted accumulation
        would have produced (``sum``/``avg`` keep exact int arithmetic and
        their float terms separate for ``fsum``, ``min``/``max`` compare on
        the canonical order key, presence flags OR together).
        """
        for index, spec in enumerate(self.specs):
            func = spec.func
            if func == "count":
                into[index] += other[index]
                continue
            held, extra = into[index], other[index]
            if func in ("sum", "avg"):
                held[0] += extra[0]
                held[1].extend(extra[1])
                held[2] += extra[2]
                held[3] = held[3] or extra[3]
            else:
                if extra[1] is not None:
                    best = held[1]
                    order = extra[1]
                    if best is None or (order < best if func == "min"
                                        else order > best):
                        held[0] = extra[0]
                        held[1] = order
                held[2] = held[2] or extra[2]

    def finalize(self, states: List) -> Dict[str, object]:
        """The aggregate output attributes of one group (absent ones omitted)."""
        out: Dict[str, object] = {}
        for spec, state in zip(self.specs, states):
            value = self._finalize_one(spec, state)
            if value is not MISSING:
                out[spec.output] = value
        return out

    @staticmethod
    def _finalize_one(spec: AggregateSpec, state):
        func = spec.func
        if func == "count":
            return state
        if not state[-1]:
            return MISSING  # the attribute never appeared: output is absent
        if func in ("sum", "avg"):
            total, floats, non_null, _ = state
            if not non_null:
                return None  # appeared, but only as NULL
            if floats:
                total = total + fsum(floats)
            return total / non_null if func == "avg" else total
        best = state[0]
        return None if best is MISSING else best

    def empty_result(self) -> Dict[str, object]:
        """The single global-aggregation row over empty input: counts are 0,
        everything else absent."""
        return {spec.output: 0 for spec in self.specs if spec.func == "count"}
