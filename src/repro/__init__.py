"""repro — flexible relations with attribute dependencies.

A faithful, pure-Python implementation of

    Christian Kalus, Peter Dadam:
    "Record Subtyping in Flexible Relations by means of Attribute Dependencies",
    ICDE 1995, pp. 383-390.

The package is organized in layers:

* :mod:`repro.model`     — flexible schemes, heterogeneous tuples, flexible relations;
* :mod:`repro.core`      — attribute dependencies, axiom systems Å / Å*, closures,
  semantic implication, AD-derived subtyping, Theorem 4.3 propagation;
* :mod:`repro.types`     — record types, the traditional record-subtyping rule,
  type guards and type checking;
* :mod:`repro.algebra`   — the query algebra and its evaluator;
* :mod:`repro.optimizer` — AD-driven query rewrites (redundant type guards,
  excluded variants) and a statistics-aware cost model;
* :mod:`repro.stats`     — the statistics subsystem: ANALYZE, equi-depth
  histograms, NDV/min-max/presence fractions and variant-tag frequency tables,
  bundled in a versioned, mutation-invalidated catalog the planners consult;
* :mod:`repro.exec`      — the physical execution engine: volcano/batch operators
  (index-aware scans, hash joins with guard-aware partitioning, index-lookup
  joins), a physical planner lowering rewritten expressions, and a plan cache;
* :mod:`repro.engine`    — an in-memory database with catalog, keys, indexes and
  dependency enforcement on DML;
* :mod:`repro.obs`       — observability: EXPLAIN ANALYZE with per-node Q-error
  and wall time, structured lifecycle tracing, process-wide metrics and a
  slow-query log;
* :mod:`repro.er`        — enhanced-ER specializations, their mapping onto flexible
  relations, horizontal/vertical decomposition along ADs;
* :mod:`repro.embedding` — translation into variant-record types (the PASCAL
  embedding with artificial determinants);
* :mod:`repro.baselines` — NULL-padded tables, the Ahad & Basu multirelation model,
  plain record subtyping;
* :mod:`repro.workloads` — the employee and address workloads plus random generators.

The most frequently used names are re-exported here for convenience::

    from repro import FlexibleScheme, FlexTuple, Database, ad, fd, ead
"""

from repro.model import (
    Attribute,
    AttributeSet,
    FlexTuple,
    FlexibleRelation,
    FlexibleScheme,
    attrset,
)
from repro.core import (
    AttributeDependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
    ad,
    attribute_closure,
    derive,
    ead,
    fd,
    functional_closure,
    implies,
    semantically_implies,
)
from repro.engine import Database, Table, TableDefinition
from repro.exec import (
    ExecutionContext,
    PhysicalExecutor,
    PhysicalPlan,
    PhysicalPlanner,
    PlanCache,
)
from repro.obs import (
    ExplainAnalyzeReport,
    JsonTraceSink,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    q_error,
)
from repro.stats import (
    AttributeStatistics,
    EquiDepthHistogram,
    StatisticsCatalog,
    TableStatistics,
    analyze_table,
)
from repro.storage import (
    DurabilityManager,
    FaultPlan,
    RecoveryReport,
    WALError,
    WriteAheadLog,
    crash_at_every_offset,
    record_workload,
)
from repro.types import RecordType, TypeGuard, is_record_subtype

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeSet",
    "attrset",
    "FlexTuple",
    "FlexibleScheme",
    "FlexibleRelation",
    "AttributeDependency",
    "ExplicitAttributeDependency",
    "FunctionalDependency",
    "Variant",
    "ad",
    "fd",
    "ead",
    "attribute_closure",
    "functional_closure",
    "implies",
    "derive",
    "semantically_implies",
    "Database",
    "Table",
    "TableDefinition",
    "ExecutionContext",
    "PhysicalExecutor",
    "PhysicalPlan",
    "PhysicalPlanner",
    "PlanCache",
    "ExplainAnalyzeReport",
    "JsonTraceSink",
    "MetricsRegistry",
    "SlowQueryLog",
    "Tracer",
    "q_error",
    "AttributeStatistics",
    "EquiDepthHistogram",
    "StatisticsCatalog",
    "TableStatistics",
    "analyze_table",
    "DurabilityManager",
    "FaultPlan",
    "RecoveryReport",
    "WALError",
    "WriteAheadLog",
    "crash_at_every_offset",
    "record_workload",
    "RecordType",
    "TypeGuard",
    "is_record_subtype",
    "__version__",
]
