"""Static analysis of algebra expressions with attribute dependencies.

The rewrites need two facts about an expression's result:

* which attributes are *guaranteed present* in every result tuple, and
* which attributes are *guaranteed absent* from every result tuple.

Both are derived from (a) the structural information the expression itself carries
(selection predicates force the presence of the attributes they mention, explicit
type guards force their guarded attributes) and (b) the explicit attribute
dependencies known to hold at that node (Theorem 4.3 propagation): when the
established equalities bind all determining attributes of an EAD, the matching
variant dictates exactly which dependent attributes are present — and, just as
important, which ones are absent.  This is the formal content of Example 4.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algebra.expressions import Expression
from repro.core.dependencies import ExplicitAttributeDependency
from repro.model.attributes import AttributeSet
from repro.model.tuples import FlexTuple


def _matched_variant(dependency: ExplicitAttributeDependency, equalities: Dict[str, object]):
    """The variant selected by the established equalities, if they bind all of ``X``.

    Returns a pair ``(bound, variant)`` where ``bound`` says whether every
    determining attribute is bound; ``variant`` is ``None`` either when not bound or
    when the bound value matches no variant (in which case Definition 2.1 forces
    the absence of every dependent attribute).
    """
    names = [a.name for a in dependency.lhs]
    if any(name not in equalities for name in names):
        return False, None
    projection = FlexTuple({name: equalities[name] for name in names})
    for variant in dependency.variants:
        if variant.matches(projection):
            return True, variant
    return True, None


def dependency_implications(expression: Expression, catalog=None) -> Tuple[AttributeSet, AttributeSet]:
    """``(present, absent)`` attribute sets implied by the EADs at this node."""
    equalities = expression.established_equalities()
    present = AttributeSet()
    absent = AttributeSet()
    if not equalities:
        return present, absent
    for dependency in expression.known_dependencies(catalog):
        if not isinstance(dependency, ExplicitAttributeDependency):
            continue
        bound, variant = _matched_variant(dependency, equalities)
        if not bound:
            continue
        if variant is None:
            absent = absent | dependency.rhs
        else:
            present = present | variant.attributes
            absent = absent | (dependency.rhs - variant.attributes)
    return present, absent


def guaranteed_present(expression: Expression, catalog=None) -> AttributeSet:
    """Attributes present in every tuple of the expression's result."""
    structural = expression.guaranteed_attributes()
    from_dependencies, _ = dependency_implications(expression, catalog)
    return structural | from_dependencies


def guaranteed_absent(expression: Expression, catalog=None) -> AttributeSet:
    """Attributes absent from every tuple of the expression's result."""
    _, absent = dependency_implications(expression, catalog)
    # Never contradict the structural guarantee: an attribute whose presence is
    # forced by a predicate cannot be reported absent (such nodes produce no tuples
    # at all, which the contradiction rewrite handles separately).
    return absent - expression.guaranteed_attributes()
