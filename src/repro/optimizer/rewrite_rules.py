"""Rewrite rules exploiting attribute dependencies.

Three rules are implemented, each a pure function from expression tree to
(possibly) rewritten expression tree plus a :class:`RewriteReport` describing what
changed:

* :func:`eliminate_redundant_guards` — Example 4: a type guard whose attributes are
  guaranteed present at its input is removed.
* :func:`eliminate_contradictory_selections` — a selection (or guard) requiring an
  attribute that the dependencies guarantee *absent* can never produce a tuple; the
  subtree is replaced by an :class:`~repro.algebra.expressions.EmptyRelation` leaf so
  the evaluator never scans its input.
* :func:`prune_union_branches` — the extension of qualified-relation reasoning to
  structural variants: under a selection with established equalities, union /
  outer-union branches whose own established equalities contradict them are dropped
  (e.g. the "salesman" fragment of a horizontal decomposition under
  ``jobtype = 'secretary'``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.algebra.expressions import (
    EmptyRelation,
    Expression,
    OuterUnion,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import FalsePredicate
from repro.model.attributes import AttributeSet
from repro.optimizer.analysis import guaranteed_absent, guaranteed_present


class RewriteReport:
    """Human-readable record of the rewrites applied to an expression tree."""

    def __init__(self):
        self.actions: List[str] = []

    def add(self, message: str) -> None:
        self.actions.append(message)

    def merge(self, other: "RewriteReport") -> None:
        self.actions.extend(other.actions)

    @property
    def changed(self) -> bool:
        return bool(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self) -> str:
        if not self.actions:
            return "RewriteReport(no rewrites)"
        return "RewriteReport({})".format("; ".join(self.actions))


def _rewrite_bottom_up(expression: Expression,
                       visit: Callable[[Expression], Tuple[Expression, Optional[str]]],
                       report: RewriteReport) -> Expression:
    """Rebuild the tree bottom-up, applying ``visit`` to every node."""
    children = expression.children
    if children:
        new_children = [_rewrite_bottom_up(child, visit, report) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expression = expression.with_children(new_children)
    rewritten, message = visit(expression)
    if message:
        report.add(message)
    return rewritten


def eliminate_redundant_guards(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """Drop type guards whose attributes are guaranteed present at their input."""
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if isinstance(node, TypeGuardNode):
            available = guaranteed_present(node.child, catalog)
            if node.attributes.issubset(available):
                return node.child, "removed redundant type guard on {}".format(node.attributes)
        return node, None

    return _rewrite_bottom_up(expression, visit, report), report


def eliminate_contradictory_selections(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """Replace guards/selections that can never be satisfied by the empty relation.

    A guard (or a selection whose predicate requires the presence of an attribute)
    is unsatisfiable when the dependencies guarantee that attribute to be absent
    given the equalities established below the node.
    """
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if isinstance(node, TypeGuardNode):
            absent = guaranteed_absent(node.child, catalog)
            blocked = node.attributes & absent
            if blocked:
                return EmptyRelation(), (
                    "type guard on {} can never succeed (attributes {} are excluded "
                    "by the dependencies); replaced by the empty relation".format(
                        node.attributes, blocked
                    )
                )
        if isinstance(node, Selection) and not isinstance(node.predicate, FalsePredicate):
            absent = guaranteed_absent(node.child, catalog)
            required = node.predicate.required_attributes()
            blocked = required & absent
            if blocked:
                return EmptyRelation(), (
                    "selection requiring {} can never succeed (attributes {} are "
                    "excluded by the dependencies); replaced by the empty relation".format(
                        required, blocked
                    )
                )
        return node, None

    return _rewrite_bottom_up(expression, visit, report), report


def _branch_excluded(branch: Expression, equalities: Dict[str, object], catalog=None) -> bool:
    """A union branch is excluded when its established equalities contradict ours."""
    branch_equalities = branch.established_equalities()
    for name, value in equalities.items():
        if name in branch_equalities and branch_equalities[name] != value:
            return True
    return False


def prune_union_branches(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """Under a selection, drop union branches whose qualification contradicts it."""
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if not isinstance(node, Selection):
            return node, None
        equalities = node.predicate.implied_equalities()
        if not equalities:
            return node, None
        child = node.child
        if not isinstance(child, (Union, OuterUnion)):
            return node, None
        left_excluded = _branch_excluded(child.left, equalities, catalog)
        right_excluded = _branch_excluded(child.right, equalities, catalog)
        if left_excluded and right_excluded:
            return EmptyRelation(), (
                "both union branches are excluded by the selection {}; result is empty".format(equalities)
            )
        if left_excluded:
            return Selection(child.right, node.predicate), (
                "pruned the left union branch excluded by the selection {}".format(equalities)
            )
        if right_excluded:
            return Selection(child.left, node.predicate), (
                "pruned the right union branch excluded by the selection {}".format(equalities)
            )
        return node, None

    return _rewrite_bottom_up(expression, visit, report), report
